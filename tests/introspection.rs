//! Plan-introspection acceptance suite: estimate-vs-actual operator traces,
//! q-error scoring across statistics backends, Chrome-trace export, and the
//! page-attribution invariant (Σ per-operator billed pages == the query's
//! telemetry ledger total), including under injected market faults.

use std::sync::Arc;

use payless_core::{
    build_market, ChromeTraceBuilder, DataMarket, FaultInjector, FaultPlan, Mode, PayLess,
    PayLessConfig, RetryPolicy, StatsBackend,
};
use payless_json::{Json, ToJson};
use payless_workload::{Finance, FinanceConfig, QueryWorkload, RealWorkload, WhwConfig};

/// The three market-call shapes: a plain remainder fetch, an overlapping
/// fetch that exercises SQR remainders, and a join.
const QUERIES: [&str; 3] = [
    "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
     Weather.Date >= 5 AND Weather.Date <= 9",
    "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
     Weather.Date >= 5 AND Weather.Date <= 20",
    "SELECT * FROM Station, Weather WHERE Station.Country = Weather.Country = \
     'Country2' AND Station.StationID = Weather.StationID AND \
     Weather.Date >= 1 AND Weather.Date <= 10",
];

fn whw_session(cfg: PayLessConfig) -> (Arc<DataMarket>, PayLess) {
    let workload = RealWorkload::generate(&WhwConfig {
        stations: 48,
        countries: 4,
        cities_per_country: 3,
        days: 60,
        zips: 60,
        ranks: 100,
        seed: 3,
    });
    let market = Arc::new(build_market(&workload, 100));
    let mut pl = PayLess::new(market.clone(), cfg);
    for t in QueryWorkload::local_tables(&workload) {
        pl.register_local(t.clone());
    }
    pl.enable_tracing(true);
    (market, pl)
}

/// Finance session: `Watchlist` is local and `Quotes` has a mandatory-bound
/// Symbol, so the join is forced through a bind join.
fn finance_session() -> (Arc<DataMarket>, PayLess) {
    let workload = Finance::generate(&FinanceConfig::default());
    let market = Arc::new(build_market(&workload, 100));
    let mut pl = PayLess::new(market.clone(), PayLessConfig::default());
    for t in QueryWorkload::local_tables(&workload) {
        pl.register_local(t.clone());
    }
    (market, pl)
}

// ----------------------------------------------------------------------
// Acceptance: one tree mixing a bind join, an SQR-covered remainder, and
// a local table, with est + actual on every operator.
// ----------------------------------------------------------------------

#[test]
fn explain_analyze_mixes_bind_join_sqr_and_local_scan() {
    let (market, mut pl) = finance_session();
    // Prime the store so the second, wider query is partially SQR-covered.
    pl.query(
        "SELECT * FROM Watchlist, Quotes WHERE Watchlist.Symbol = Quotes.Symbol \
         AND Day >= 1 AND Day <= 5",
    )
    .unwrap();

    let before = market.bill().transactions();
    let out = pl
        .explain_analyze(
            "SELECT * FROM Watchlist, Quotes WHERE Watchlist.Symbol = Quotes.Symbol \
             AND Day >= 1 AND Day <= 8",
        )
        .unwrap();
    let delta = market.bill().transactions() - before;
    assert!(
        !pl.tracing_enabled(),
        "explain_analyze must restore the tracing flag"
    );

    let report = out.report.expect("explain analyze forces tracing");
    assert!(!report.ops.is_empty(), "no operator traces");
    // Pre-order ids, one slot per node, parents pointing backwards.
    for (i, op) in report.ops.iter().enumerate() {
        assert_eq!(op.id, i, "operator ids must be the pre-order index");
        if let Some(p) = op.parent {
            assert!(p < i, "parent must precede the child in pre-order");
        }
        assert!(
            !op.est.provenance.is_empty(),
            "operator {i} lacks provenance"
        );
    }
    let labels: Vec<&str> = report.ops.iter().map(|o| o.label.as_str()).collect();
    assert!(
        labels.iter().any(|l| l.contains("bind-join")),
        "expected a bind-join operator, got {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.contains("(local)")),
        "expected a local scan operator, got {labels:?}"
    );
    // The store primed by the first query covers part of this one.
    assert!(
        report.sqr().full_hits + report.sqr().partial_hits > 0,
        "second query should be partially SQR-covered"
    );
    // Page attribution: operators account for exactly what the meter saw.
    assert_eq!(report.operator_pages(), report.telemetry.total_pages());
    assert_eq!(report.telemetry.total_pages(), delta);
    // The executed probes fed the q-error scorer.
    assert!(
        !report.telemetry.qerrors.is_empty(),
        "bind probes must be q-error scored"
    );
    for q in &report.telemetry.qerrors {
        assert!(q.q >= 1.0 && q.q.is_finite(), "bad q-error {q:?}");
    }
}

// ----------------------------------------------------------------------
// q-error is attributed to whichever estimator produced the estimate.
// ----------------------------------------------------------------------

#[test]
fn q_errors_are_scored_for_isomer_and_independence_estimators() {
    for (backend, label) in [
        (StatsBackend::Isomer, "isomer"),
        (StatsBackend::PerDimension, "per-dim"),
        (StatsBackend::MultiDim, "multi"),
    ] {
        let cfg = PayLessConfig {
            stats_backend: backend,
            ..Default::default()
        };
        let (_, mut pl) = whw_session(cfg);
        let out = pl.query(QUERIES[0]).unwrap();
        let report = out.report.expect("tracing is on");
        assert!(
            !report.telemetry.qerrors.is_empty(),
            "{label}: no q-error records"
        );
        for q in &report.telemetry.qerrors {
            assert_eq!(q.estimator, label, "wrong estimator attribution");
            assert!(q.q >= 1.0 && q.q.is_finite());
        }
        // The per-estimator rollup groups under the same label.
        let by_est = report.q_error_by_estimator();
        assert_eq!(by_est.len(), 1);
        assert_eq!(by_est[0].0, label);
        assert!(by_est[0].1.count > 0);
    }
}

// ----------------------------------------------------------------------
// Chrome-trace export round-trips through the JSON crate.
// ----------------------------------------------------------------------

#[test]
fn chrome_trace_export_round_trips_and_is_non_empty() {
    let (_, mut pl) = whw_session(PayLessConfig::default());
    let mut builder = ChromeTraceBuilder::new();
    for sql in QUERIES {
        let out = pl.query(sql).unwrap();
        builder.add_query(sql, &out.report.expect("tracing is on").telemetry);
    }
    assert!(!builder.is_empty());
    let doc = builder.finish(Json::obj([("queries", (QUERIES.len() as i64).to_json())]));
    let text = doc.to_string_pretty();
    let parsed = payless_json::parse(&text).unwrap();
    let events = parsed
        .get_opt("traceEvents")
        .and_then(|e| e.as_arr().ok())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace export must be non-empty");
    // Every event carries the mandatory Chrome-trace keys.
    for ev in events {
        assert!(ev.get_opt("ph").is_some(), "event lacks a phase: {ev:?}");
        assert!(ev.get_opt("pid").is_some(), "event lacks a pid: {ev:?}");
    }
    assert_eq!(
        parsed
            .get_opt("otherData")
            .and_then(|o| o.get_opt("queries"))
            .and_then(|q| q.as_i64().ok()),
        Some(QUERIES.len() as i64)
    );
}

// ----------------------------------------------------------------------
// Property: per-operator page attribution reconciles with the ledger,
// clean and under injected faults.
// ----------------------------------------------------------------------

fn assert_ops_reconcile(mode: Mode, plan: Option<FaultPlan>) {
    let retry = if plan.is_some() {
        RetryPolicy::unlimited()
    } else {
        RetryPolicy::default()
    };
    let cfg = PayLessConfig {
        mode,
        retry,
        ..Default::default()
    };
    let (market, mut pl) = whw_session(cfg);
    if let Some(plan) = plan {
        market.attach_fault_injector(FaultInjector::new(plan));
    }
    for (i, sql) in QUERIES.iter().enumerate() {
        let before = market.bill().transactions();
        let out = pl.query(sql).unwrap();
        let delta = market.bill().transactions() - before;
        let report = out.report.expect("tracing is on");
        assert!(!report.ops.is_empty(), "{mode:?} query {i}: no ops");
        assert_eq!(
            report.operator_pages(),
            report.telemetry.total_pages(),
            "{mode:?} query {i}: operators must account for the whole ledger"
        );
        assert_eq!(
            report.telemetry.total_pages(),
            delta,
            "{mode:?} query {i}: ledger must match the meter"
        );
    }
}

#[test]
fn operator_pages_reconcile_on_clean_runs() {
    for mode in [Mode::PayLess, Mode::PayLessNoSqr] {
        assert_ops_reconcile(mode, None);
    }
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For any fault seed, every operator's billed pages (delivered +
        /// wasted, across retries) still partition the query's ledger
        /// total exactly: money lost to faults stays attributed to the
        /// operator that spent it.
        #[test]
        fn operator_pages_reconcile_under_chaos(seed in any::<u64>()) {
            assert_ops_reconcile(Mode::PayLess, Some(FaultPlan::chaos(seed)));
        }
    }
}
