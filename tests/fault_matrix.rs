//! The deterministic fault matrix: every injected fault kind crossed with
//! every engine path (PayLess remainder fetches + bind joins, no-SQR,
//! Download All).
//!
//! Invariants checked throughout:
//!
//! * with retries, a faulted session produces **bit-identical answers** to a
//!   clean twin, and its bill is exactly the clean bill plus the injector's
//!   wasted pages (a retried call re-buys the identical request);
//! * the telemetry ledger partitions into delivered + wasted pages and
//!   reconciles with the billing meter (Eq. (1) per successful delivery);
//! * without retries a faulted query fails *cleanly*: everything paid for
//!   before the failure is kept in the semantic store, so a re-run buys only
//!   what never arrived;
//! * an attached injector with an empty plan is invisible: outputs and
//!   billing are byte-identical to a session with no injector at all.
//!
//! The pinned chaos seed can be overridden with `PAYLESS_FAULT_SEED` (used
//! by the CI fault-smoke step).

use std::sync::Arc;

use payless_core::{
    build_market, DataMarket, FaultInjector, FaultKind, FaultPlan, Mode, PayLess, PayLessConfig,
    RetryPolicy,
};
use payless_types::{PaylessError, Row};
use payless_workload::{QueryWorkload, RealWorkload, WhwConfig};

/// Three queries exercising the three market-call paths: a plain remainder
/// fetch, an overlapping fetch (SQR remainders), and a bind join.
const QUERIES: [&str; 3] = [
    "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
     Weather.Date >= 5 AND Weather.Date <= 9",
    "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
     Weather.Date >= 5 AND Weather.Date <= 20",
    "SELECT * FROM Station, Weather WHERE Station.Country = Weather.Country = \
     'Country2' AND Station.StationID = Weather.StationID AND \
     Weather.Date >= 1 AND Weather.Date <= 10",
];

fn session(mode: Mode, retry: RetryPolicy) -> (Arc<DataMarket>, PayLess) {
    let workload = RealWorkload::generate(&WhwConfig {
        stations: 48,
        countries: 4,
        cities_per_country: 3,
        days: 60,
        zips: 60,
        ranks: 100,
        seed: 3,
    });
    let market = Arc::new(build_market(&workload, 100));
    let cfg = PayLessConfig {
        mode,
        retry,
        ..Default::default()
    };
    let mut pl = PayLess::new(market.clone(), cfg);
    for t in QueryWorkload::local_tables(&workload) {
        pl.register_local(t.clone());
    }
    pl.enable_tracing(true);
    (market, pl)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// Run the query set on a clean twin and on a faulted session; assert
/// identical answers and exact billing reconciliation.
fn assert_fault_transparent(mode: Mode, plan: FaultPlan) {
    // Clean oracle.
    let (clean_market, mut clean) = session(mode, RetryPolicy::default());
    let oracle: Vec<Vec<Row>> = QUERIES
        .iter()
        .map(|sql| sorted(clean.query(sql).unwrap().result.rows))
        .collect();

    // Faulted run with enough retries to always recover.
    let (market, mut pl) = session(mode, RetryPolicy::unlimited());
    let injector = FaultInjector::new(plan);
    market.attach_fault_injector(injector.clone());
    for (i, sql) in QUERIES.iter().enumerate() {
        let before = market.bill().transactions();
        let out = pl.query(sql).unwrap();
        let delta = market.bill().transactions() - before;
        assert_eq!(
            sorted(out.result.rows.clone()),
            oracle[i],
            "{mode:?} answer diverged under faults for query {i}"
        );
        // The per-query ledger is the audit trail: its pages equal the meter
        // delta, and partition into delivered + wasted.
        let report = out.report.expect("tracing is on");
        assert_eq!(report.telemetry.total_pages(), delta, "{mode:?} query {i}");
        assert_eq!(
            report.telemetry.delivered_pages() + report.telemetry.wasted_pages(),
            delta,
            "{mode:?} query {i}"
        );
    }
    // Session-level reconciliation: everything beyond the clean bill is
    // exactly the waste the injector accounted.
    assert_eq!(
        market.bill().transactions(),
        clean_market.bill().transactions() + injector.wasted_pages(),
        "{mode:?}: faulted bill must be clean bill + injector waste"
    );
    // When nothing was wasted, delivered records match exactly too: no
    // tuple was lost or double-delivered. (With waste the meter's record
    // total also counts the discarded payloads, so only pages reconcile.)
    if injector.wasted_pages() == 0 {
        assert_eq!(
            market.bill().records(),
            clean_market.bill().records(),
            "{mode:?}: delivered records diverged"
        );
    }
}

const MODES: [Mode; 3] = [Mode::PayLess, Mode::PayLessNoSqr, Mode::DownloadAll];

#[test]
fn unavailable_faults_are_transparent_and_free() {
    for mode in MODES {
        // Unbilled transient failures at the first and a mid-plan call.
        let plan = FaultPlan::none()
            .at(0, FaultKind::Unavailable)
            .at(4, FaultKind::Unavailable)
            .at(5, FaultKind::Unavailable);
        let (clean_market, mut clean) = session(mode, RetryPolicy::default());
        for sql in QUERIES {
            clean.query(sql).unwrap();
        }
        let (market, mut pl) = session(mode, RetryPolicy::unlimited());
        let injector = FaultInjector::new(plan);
        market.attach_fault_injector(injector.clone());
        for sql in QUERIES {
            pl.query(sql).unwrap();
        }
        // Nothing was ever billed for an unavailable call.
        assert_eq!(injector.wasted_pages(), 0);
        assert_eq!(
            market.bill().transactions(),
            clean_market.bill().transactions(),
            "{mode:?}"
        );
        assert_eq!(market.bill().records(), clean_market.bill().records());
        assert!(
            injector.injections_total() > 0,
            "{mode:?}: plan never fired"
        );
    }
}

#[test]
fn stall_faults_change_nothing_but_latency() {
    for mode in MODES {
        assert_fault_transparent(
            mode,
            FaultPlan::none()
                .at(0, FaultKind::Stall { millis: 1 })
                .at(3, FaultKind::Stall { millis: 1 }),
        );
    }
}

#[test]
fn truncate_faults_are_rebought_exactly_once() {
    for mode in MODES {
        let plan = FaultPlan::none().at(0, FaultKind::Truncate);
        let (clean_market, mut clean) = session(mode, RetryPolicy::default());
        let oracle: Vec<Vec<Row>> = QUERIES
            .iter()
            .map(|sql| sorted(clean.query(sql).unwrap().result.rows))
            .collect();
        let (market, mut pl) = session(mode, RetryPolicy::unlimited());
        let injector = FaultInjector::new(plan);
        market.attach_fault_injector(injector.clone());
        for (i, sql) in QUERIES.iter().enumerate() {
            let out = pl.query(sql).unwrap();
            assert_eq!(sorted(out.result.rows), oracle[i], "{mode:?} query {i}");
        }
        assert!(
            injector.wasted_pages() > 0,
            "{mode:?}: truncate never billed"
        );
        assert_eq!(
            market.bill().transactions(),
            clean_market.bill().transactions() + injector.wasted_pages(),
            "{mode:?}"
        );
        assert_eq!(injector.injections(), vec![("truncate", 1)]);
    }
}

#[test]
fn corrupt_faults_are_detected_and_rebought() {
    for mode in MODES {
        let plan = FaultPlan::none().at(0, FaultKind::Corrupt);
        let (clean_market, mut clean) = session(mode, RetryPolicy::default());
        let oracle: Vec<Vec<Row>> = QUERIES
            .iter()
            .map(|sql| sorted(clean.query(sql).unwrap().result.rows))
            .collect();
        let (market, mut pl) = session(mode, RetryPolicy::unlimited());
        let injector = FaultInjector::new(plan);
        market.attach_fault_injector(injector.clone());
        for (i, sql) in QUERIES.iter().enumerate() {
            let out = pl.query(sql).unwrap();
            assert_eq!(sorted(out.result.rows), oracle[i], "{mode:?} query {i}");
            let report = out.report.expect("tracing is on");
            if i == 0 {
                // The corrupt call left a WASTED ledger entry and a retry.
                assert_eq!(report.telemetry.wasted_calls(), 1, "{mode:?}");
                let retries = report
                    .telemetry
                    .counters
                    .iter()
                    .find(|(n, _)| *n == "resilience.retries")
                    .map(|(_, v)| *v);
                assert_eq!(retries, Some(1), "{mode:?}");
            }
        }
        assert!(injector.wasted_pages() > 0, "{mode:?}");
        assert_eq!(
            market.bill().transactions(),
            clean_market.bill().transactions() + injector.wasted_pages(),
            "{mode:?}"
        );
    }
}

// ----------------------------------------------------------------------
// Fail-cleanly: no retries
// ----------------------------------------------------------------------

#[test]
fn without_retries_queries_fail_cleanly_and_rerun_pays_only_the_missing_part() {
    // Fault the *second* market call so the first remainder is paid for
    // before the query dies.
    let (market, mut pl) = session(Mode::PayLess, RetryPolicy::no_retries());
    market.attach_fault_injector(FaultInjector::new(
        FaultPlan::none().at(1, FaultKind::Unavailable),
    ));
    // The overlap query issues two remainder calls (days 5..9 after a primer
    // would be one; use the two-sided extension directly).
    let primer = QUERIES[0]; // one call: days 5..9, paid in full
    pl.query(primer).unwrap();
    let after_primer = market.bill().records();

    let err = pl.query(QUERIES[1]).unwrap_err();
    assert!(
        matches!(err, PaylessError::Unavailable { .. }),
        "expected the injected fault to surface, got {err}"
    );
    // The failed query bought nothing new (its first call was the faulted
    // one because SQR already covers days 5..9)... or bought some prefix of
    // its remainders. Either way nothing is lost: re-running completes the
    // region and the two runs together paid for each tuple exactly once.
    let clean = {
        let (m, mut s) = session(Mode::PayLess, RetryPolicy::default());
        s.query(primer).unwrap();
        s.query(QUERIES[1]).unwrap();
        m.bill().records()
    };
    pl.query(QUERIES[1]).unwrap();
    assert_eq!(
        market.bill().records(),
        clean,
        "re-run after a clean failure must not re-buy paid tuples"
    );
    assert!(market.bill().records() > after_primer);
    // And now everything is covered: asking again is free.
    let before = market.bill().transactions();
    pl.query(QUERIES[1]).unwrap();
    assert_eq!(market.bill().transactions(), before);
}

#[test]
fn billed_failure_without_retries_reports_the_spend() {
    let (market, mut pl) = session(Mode::PayLess, RetryPolicy::no_retries());
    let injector = FaultInjector::new(FaultPlan::none().at(0, FaultKind::Corrupt));
    market.attach_fault_injector(injector.clone());
    let err = pl.query(QUERIES[0]).unwrap_err();
    match err {
        PaylessError::BilledFailure { pages, .. } => {
            assert_eq!(pages, injector.wasted_pages());
            assert!(pages > 0);
        }
        other => panic!("expected BilledFailure, got {other}"),
    }
    // The money is on the meter even though no data arrived.
    assert_eq!(market.bill().transactions(), injector.wasted_pages());
    // A re-run with the fault passed re-buys the region (the wasted call
    // delivered nothing reusable).
    let out = pl.query(QUERIES[0]).unwrap();
    assert!(!out.result.rows.is_empty());
}

// ----------------------------------------------------------------------
// Budgets
// ----------------------------------------------------------------------

#[test]
fn waste_budget_turns_persistent_corruption_into_budget_exhausted() {
    let policy = RetryPolicy {
        waste_budget_pages: Some(0),
        max_attempts: u32::MAX,
        backoff_base_millis: 0,
        ..RetryPolicy::default()
    };
    let (market, mut pl) = session(Mode::PayLess, policy);
    market.attach_fault_injector(FaultInjector::new(FaultPlan::seeded(7).with_corrupt(1.0)));
    let err = pl.query(QUERIES[0]).unwrap_err();
    assert!(
        matches!(err, PaylessError::BudgetExhausted { .. }),
        "expected BudgetExhausted, got {err}"
    );
}

#[test]
fn retry_budget_caps_free_retries() {
    let policy = RetryPolicy {
        retry_budget: Some(3),
        max_attempts: u32::MAX,
        backoff_base_millis: 0,
        ..RetryPolicy::default()
    };
    let (market, mut pl) = session(Mode::PayLess, policy);
    market.attach_fault_injector(FaultInjector::new(
        FaultPlan::seeded(7).with_unavailable(1.0),
    ));
    let err = pl.query(QUERIES[0]).unwrap_err();
    match err {
        PaylessError::BudgetExhausted {
            retries,
            wasted_pages,
            ..
        } => {
            assert_eq!(retries, 3);
            assert_eq!(wasted_pages, 0); // unavailability is never billed
        }
        other => panic!("expected BudgetExhausted, got {other}"),
    }
    assert_eq!(market.bill().transactions(), 0);
}

// ----------------------------------------------------------------------
// Determinism: faults disabled
// ----------------------------------------------------------------------

#[test]
fn empty_fault_plan_is_bit_identical_to_no_injector() {
    let (plain_market, mut plain) = session(Mode::PayLess, RetryPolicy::default());
    let (injected_market, mut injected) = session(Mode::PayLess, RetryPolicy::default());
    injected_market.attach_fault_injector(FaultInjector::new(FaultPlan::none()));
    for sql in QUERIES {
        let a = plain.query(sql).unwrap();
        let b = injected.query(sql).unwrap();
        assert_eq!(a.result, b.result);
    }
    assert_eq!(plain_market.bill(), injected_market.bill());
    // Entire session state (mirror, store coverage, refined stats, clock)
    // is byte-identical.
    assert_eq!(plain.to_json().unwrap(), injected.to_json().unwrap());
    assert_eq!(
        injected_market.fault_injector().unwrap().injections_total(),
        0
    );
}

// ----------------------------------------------------------------------
// Seeded chaos smoke (CI runs this at a pinned PAYLESS_FAULT_SEED)
// ----------------------------------------------------------------------

fn fault_seed() -> u64 {
    std::env::var("PAYLESS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xBEEF)
}

#[test]
fn seeded_chaos_run_reconciles_answers_and_billing() {
    let seed = fault_seed();
    let (clean_market, mut clean) = session(Mode::PayLess, RetryPolicy::default());
    let oracle: Vec<Vec<Row>> = QUERIES
        .iter()
        .map(|sql| sorted(clean.query(sql).unwrap().result.rows))
        .collect();

    let (market, mut pl) = session(Mode::PayLess, RetryPolicy::unlimited());
    let injector = FaultInjector::new(FaultPlan::chaos(seed));
    market.attach_fault_injector(injector.clone());
    for (i, sql) in QUERIES.iter().enumerate() {
        let out = pl.query(sql).unwrap();
        assert_eq!(
            sorted(out.result.rows),
            oracle[i],
            "seed {seed}: answer diverged for query {i}"
        );
    }
    assert_eq!(
        market.bill().transactions(),
        clean_market.bill().transactions() + injector.wasted_pages(),
        "seed {seed}: bill must reconcile to clean + waste \
         (calls seen: {}, injections: {:?})",
        injector.calls_seen(),
        injector.injections(),
    );
    // After the chaos run everything is covered: a re-run is free even with
    // the injector still attached (covered queries issue no market calls).
    let before = market.bill().transactions();
    for sql in QUERIES {
        pl.query(sql).unwrap();
    }
    assert_eq!(market.bill().transactions(), before, "seed {seed}");
}

// ----------------------------------------------------------------------
// Property: fault transparency of the semantic store
// ----------------------------------------------------------------------

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For any fault seed, a session with unlimited retries ends in
        /// *exactly* the state a fault-free session reaches: same mirror,
        /// same store coverage, same refined statistics — SQR is fault-
        /// transparent.
        #[test]
        fn chaos_session_state_equals_clean_session_state(seed in any::<u64>()) {
            let (_, mut clean) = session(Mode::PayLess, RetryPolicy::default());
            for sql in QUERIES {
                clean.query(sql).unwrap();
            }
            let (market, mut pl) = session(Mode::PayLess, RetryPolicy::unlimited());
            market.attach_fault_injector(FaultInjector::new(FaultPlan::chaos(seed)));
            for sql in QUERIES {
                pl.query(sql).unwrap();
            }
            prop_assert_eq!(clean.to_json().unwrap(), pl.to_json().unwrap());
        }
    }
}
