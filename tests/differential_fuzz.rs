//! Differential fuzzing: random markets, random conjunctive queries, every
//! system variant — all four modes must agree with each other and with a
//! brute-force evaluation, and the semantic store must never corrupt results
//! across a randomized query sequence.

use std::sync::Arc;

use payless_core::{DataMarket, Dataset, Mode, PayLess, PayLessConfig};
use payless_market::MarketTable;
use payless_types::{Column, Domain, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomly generated two-table market joined on `k`, plus raw rows for
/// brute-force checking.
struct FuzzWorld {
    market: Arc<DataMarket>,
    dim_rows: Vec<Row>,
    fact_rows: Vec<Row>,
    n_keys: i64,
    n_cats: usize,
    v_max: i64,
}

fn gen_world(seed: u64) -> FuzzWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_keys = rng.random_range(5..40i64);
    let n_cats = rng.random_range(2..6usize);
    let v_max = rng.random_range(20..200i64);
    let cats: Vec<String> = (0..n_cats).map(|i| format!("cat{i}")).collect();

    // Dim(k, cat): one row per key, random category.
    let dim_schema = Schema::new(
        "Dim",
        vec![
            Column::free("k", Domain::int(1, n_keys)),
            Column::free("cat", Domain::categorical(cats.clone())),
        ],
    );
    let dim_rows: Vec<Row> = (1..=n_keys)
        .map(|k| {
            Row::new(vec![
                Value::int(k),
                Value::str(cats[rng.random_range(0..n_cats)].as_str()),
            ])
        })
        .collect();

    // Fact(k, v, payload): several rows per key; `payload` is output-only.
    let fact_schema = Schema::new(
        "Fact",
        vec![
            Column::free("k", Domain::int(1, n_keys)),
            Column::free("v", Domain::int(0, v_max)),
            Column::output("payload", Domain::int(0, 1_000_000)),
        ],
    );
    let mut fact_rows = Vec::new();
    let mut payload = 0i64;
    for k in 1..=n_keys {
        for _ in 0..rng.random_range(0..6usize) {
            payload += 1;
            fact_rows.push(Row::new(vec![
                Value::int(k),
                Value::int(rng.random_range(0..=v_max)),
                Value::int(payload),
            ]));
        }
    }

    let market = Arc::new(DataMarket::new(vec![Dataset::new("DS")
        .with_page_size(rng.random_range(1..20u64) * 5)
        .with_table(MarketTable::new(dim_schema, dim_rows.clone()))
        .with_table(MarketTable::new(fact_schema, fact_rows.clone()))]));
    FuzzWorld {
        market,
        dim_rows,
        fact_rows,
        n_keys,
        n_cats,
        v_max,
    }
}

/// A random query over the world, returned with its brute-force answer
/// (a sorted multiset of `payload` values).
fn gen_query(w: &FuzzWorld, rng: &mut StdRng) -> (String, Vec<i64>) {
    let k_lo = rng.random_range(1..=w.n_keys);
    let k_hi = rng.random_range(k_lo..=w.n_keys);
    let v_lo = rng.random_range(0..=w.v_max);
    let v_hi = rng.random_range(v_lo..=w.v_max);
    let with_cat = rng.random_bool(0.5);
    let cat = format!("cat{}", rng.random_range(0..w.n_cats));

    let mut sql = format!(
        "SELECT payload FROM Dim, Fact WHERE Dim.k = Fact.k AND \
         Fact.k >= {k_lo} AND Fact.k <= {k_hi} AND v >= {v_lo} AND v <= {v_hi}"
    );
    if with_cat {
        sql.push_str(&format!(" AND cat = '{cat}'"));
    }

    // Brute force. NOTE the dialect rule: the bare `k` range constrains both
    // tables — irrelevant here because the join equates them anyway.
    let mut expected = Vec::new();
    for f in &w.fact_rows {
        let k = f.get(0).as_int().unwrap();
        let v = f.get(1).as_int().unwrap();
        if !(k_lo <= k && k <= k_hi && v_lo <= v && v <= v_hi) {
            continue;
        }
        for d in &w.dim_rows {
            if d.get(0).as_int().unwrap() != k {
                continue;
            }
            if with_cat && d.get(1).as_str() != Some(cat.as_str()) {
                continue;
            }
            expected.push(f.get(2).as_int().unwrap());
        }
    }
    expected.sort_unstable();
    (sql, expected)
}

fn run_world(seed: u64) {
    let w = gen_world(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let queries: Vec<(String, Vec<i64>)> = (0..12).map(|_| gen_query(&w, &mut rng)).collect();

    for mode in [
        Mode::PayLess,
        Mode::PayLessNoSqr,
        Mode::MinCalls,
        Mode::DownloadAll,
    ] {
        // Fresh billing per mode: rebuild the market clone-free by reusing
        // the shared one (billing accumulates, which is fine — we only check
        // answers here).
        let mut pl = PayLess::new(w.market.clone(), PayLessConfig::mode(mode));
        for (sql, expected) in &queries {
            let out = pl
                .query(sql)
                .unwrap_or_else(|e| panic!("seed {seed} mode {mode:?}: {e}\n{sql}"));
            let mut got: Vec<i64> = out
                .result
                .rows
                .iter()
                .map(|r| r.get(0).as_int().unwrap())
                .collect();
            got.sort_unstable();
            assert_eq!(
                &got, expected,
                "seed {seed} mode {mode:?} wrong answer for\n{sql}"
            );
        }
    }
}

#[test]
fn differential_fuzz_20_worlds() {
    for seed in 0..20 {
        run_world(seed);
    }
}

#[test]
fn differential_fuzz_more_worlds() {
    for seed in 100..115 {
        run_world(seed);
    }
}
