//! True client/server end-to-end suite: a [`payless_server::Server`] bound
//! to a real socket (port 0), driven by the socket-level mix driver from
//! `payless_workload::client`, validated against a serial in-process
//! oracle running the identical seeded mix.
//!
//! The market runs exact rewrite at `page_size = 1`, so delivered pages
//! and answers are independent of client interleaving — which is what
//! makes the cross-process comparison exact rather than statistical:
//!
//! * every remote query returns the same rows as the serial oracle;
//! * Σ client-observed pages == the server's billing-meter delta == the
//!   oracle's total spend;
//! * after a graceful shutdown, a restart on the same data directory
//!   recovers a reconciling store (ledger == meter per table) **with** its
//!   mirror rows, and re-running the identical mix buys zero pages while
//!   still answering exactly like the oracle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use payless_core::build_market;
use payless_json::Json;
use payless_serve::{digest_row_slice, Serve, ServeConfig};
use payless_server::persist::PersistConfig;
use payless_server::{Server, ServerConfig};
use payless_workload::client::{drive_mix, get_text, shutdown, RemoteOutcome};
use payless_workload::{serve_mix, MixItem, QueryWorkload, RealWorkload, WhwConfig};

/// Must match [`ServerConfig::default`]'s scale: oracle and server have to
/// generate byte-identical WHW data for digest parity.
const SCALE: f64 = 0.02;

/// The two single-table WHW templates (see tests/serve_concurrency.rs for
/// why these make spend interleaving-independent at page size 1).
const TEMPLATES: [usize; 2] = [0, 1];

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "payless-e2e-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn report(addr: &str) -> Json {
    let text = get_text(addr, "/v1/report").expect("GET /v1/report");
    payless_json::parse(&text).expect("report is JSON")
}

fn meter_transactions(addr: &str) -> u64 {
    report(addr)
        .get("meter_transactions")
        .and_then(|v| v.as_u64())
        .expect("meter_transactions")
}

fn store_json(addr: &str) -> Json {
    let text = get_text(addr, "/v1/store").expect("GET /v1/store");
    payless_json::parse(&text).expect("store status is JSON")
}

/// Boot a server and hand back its address plus the join handle running
/// the accept loop.
fn boot(cfg: ServerConfig) -> (String, std::thread::JoinHandle<Result<(), String>>) {
    let server = Server::start(cfg).expect("server boots");
    let addr = server.addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

struct Oracle {
    digests: Vec<u64>,
    total_pages: u64,
}

/// Run `mix` serially, in submission order, on a fresh in-process serve
/// layer over an identical market — the ground truth for both answers and
/// total spend.
fn serial_oracle(mix: &[MixItem]) -> Oracle {
    let w = RealWorkload::generate(&WhwConfig::scaled(SCALE));
    let market = Arc::new(build_market(&w, 1));
    let serve = Serve::new(
        Arc::clone(&market),
        QueryWorkload::local_tables(&w),
        ServeConfig::default(),
    );
    let templates: Vec<_> = QueryWorkload::templates(&w)
        .iter()
        .map(|sql| serve.prepare(sql).expect("workload templates parse"))
        .collect();
    let digests = mix
        .iter()
        .map(|item| {
            let (result, _) = serve
                .run_query(&templates[item.template], &item.params)
                .expect("oracle query answers");
            digest_row_slice(&result.rows)
        })
        .collect();
    Oracle {
        digests,
        total_pages: market.bill().transactions(),
    }
}

fn seeded_mix(clients: usize, queries: usize, seed: u64) -> Vec<MixItem> {
    let w = RealWorkload::generate(&WhwConfig::scaled(SCALE));
    serve_mix(&w, &TEMPLATES, clients, queries, seed)
}

fn assert_matches_oracle(outcomes: &[RemoteOutcome], oracle: &Oracle) {
    assert_eq!(outcomes.len(), oracle.digests.len());
    for (i, (o, want)) in outcomes.iter().zip(&oracle.digests).enumerate() {
        assert_eq!(
            digest_row_slice(&o.rows),
            *want,
            "query {i}: remote rows differ from the serial oracle"
        );
    }
}

#[test]
fn concurrent_remote_mix_matches_serial_oracle_and_reconciles() {
    let (addr, handle) = boot(ServerConfig::default());
    let mix = seeded_mix(3, 12, 7);

    let before = meter_transactions(&addr);
    assert_eq!(before, 0, "fresh server has an untouched meter");
    let outcomes = drive_mix(&addr, &mix, 4).expect("remote drive succeeds");
    let delta = meter_transactions(&addr) - before;

    let client_pages: u64 = outcomes.iter().map(|o| o.pages + o.wasted_pages).sum();
    assert_eq!(
        client_pages, delta,
        "Σ client-observed pages must equal the server's meter delta"
    );

    let oracle = serial_oracle(&mix);
    assert_matches_oracle(&outcomes, &oracle);
    assert_eq!(
        delta, oracle.total_pages,
        "remote total spend must equal the serial oracle's"
    );

    shutdown(&addr).expect("graceful shutdown");
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn durable_restart_recovers_store_and_rebuys_nothing() {
    let dir = tmpdir("restart");
    let durable_cfg = || ServerConfig {
        data_dir: Some(dir.clone()),
        persist: PersistConfig {
            // Force mid-run snapshots so the restart exercises
            // snapshot + log replay together, not just one of them.
            snapshot_every: 4,
            ..PersistConfig::default()
        },
        ..ServerConfig::default()
    };
    let mix = seeded_mix(3, 12, 11);
    let oracle = serial_oracle(&mix);

    let (addr, handle) = boot(durable_cfg());
    let first = drive_mix(&addr, &mix, 4).expect("first drive succeeds");
    let spent = meter_transactions(&addr);
    assert_matches_oracle(&first, &oracle);
    assert_eq!(spent, oracle.total_pages);
    shutdown(&addr).expect("graceful shutdown");
    handle.join().expect("server thread").expect("clean exit");

    // Restart on the same data directory: a *fresh* market (meter at 0)
    // but the recovered store + mirror. Re-running the identical mix must
    // answer correctly from local state without buying a single page.
    let (addr, handle) = boot(durable_cfg());
    let status = store_json(&addr);
    assert!(status.get("durable").and_then(|v| v.as_bool()).unwrap());
    let recovered_rows = status
        .get("recovery")
        .and_then(|r| r.get("mirror_rows"))
        .and_then(|v| v.as_u64())
        .expect("recovery.mirror_rows");
    assert!(recovered_rows > 0, "restart must recover the mirror rows");
    for t in status.get("tables").and_then(|v| v.as_arr()).unwrap() {
        let ledger = t.get("ledger_pages").and_then(|v| v.as_u64()).unwrap();
        let meter = t.get("meter_pages").and_then(|v| v.as_u64()).unwrap();
        assert_eq!(ledger, meter, "recovered table must reconcile");
    }

    let again = drive_mix(&addr, &mix, 4).expect("re-drive succeeds");
    assert_matches_oracle(&again, &oracle);
    assert_eq!(
        meter_transactions(&addr),
        0,
        "every page was already purchased before the restart"
    );
    shutdown(&addr).expect("graceful shutdown");
    handle.join().expect("server thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}
