//! Oracle equivalence: every system variant must return exactly the rows a
//! direct evaluation over the raw seller-side data returns.
//!
//! The oracle below re-implements query evaluation from the analyzed query
//! alone — full tables, left-fold joins, residuals, aggregation — sharing
//! only the low-level relational operators with the engine under test.

use std::collections::HashMap;
use std::sync::Arc;

use payless_core::{build_market, Mode, PayLess, PayLessConfig};
use payless_sql::{
    analyze, AccessConstraint, AnalyzedQuery, MapCatalog, OutputItem, ResidualPred, TableLocation,
};
use payless_storage::{aggregate, cross_join, distinct, hash_join, project, sort_by, AggSpec};
use payless_types::{Row, Value};
use payless_workload::{
    Finance, FinanceConfig, QueryWorkload, RealWorkload, Tpch, TpchConfig, WhwConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Direct evaluation of an analyzed query over full tables.
fn oracle(query: &AnalyzedQuery, tables: &HashMap<String, Vec<Row>>) -> Vec<Row> {
    // Filter each table by its access constraints.
    let filtered: Vec<Vec<Row>> = query
        .tables
        .iter()
        .map(|t| {
            tables[&t.name.to_string()]
                .iter()
                .filter(|r| {
                    t.access.constraints.iter().all(|(col, ac)| match ac {
                        AccessConstraint::One(c) => c.matches(r.get(*col)),
                        AccessConstraint::AnyOf(vs) => vs.contains(r.get(*col)),
                    })
                })
                .cloned()
                .collect()
        })
        .collect();
    if query.unsatisfiable {
        return Vec::new();
    }

    // Left-fold joins in FROM order.
    let mut layout: Vec<usize> = vec![0];
    let mut rows = filtered[0].clone();
    let offset = |layout: &[usize], tid: usize, col: usize| -> usize {
        let mut off = 0;
        for &t in layout {
            if t == tid {
                return off + col;
            }
            off += query.tables[t].schema.arity();
        }
        unreachable!("table {tid} not in layout");
    };
    #[allow(clippy::needless_range_loop)] // tid doubles as the table id, not just an index
    for tid in 1..query.tables.len() {
        let mut lk = Vec::new();
        let mut rk = Vec::new();
        for e in &query.joins {
            let (l, r) = if layout.contains(&e.left.0) && e.right.0 == tid {
                (e.left, e.right)
            } else if layout.contains(&e.right.0) && e.left.0 == tid {
                (e.right, e.left)
            } else {
                continue;
            };
            lk.push(offset(&layout, l.0, l.1));
            rk.push(r.1);
        }
        rows = if lk.is_empty() {
            cross_join(&rows, &filtered[tid])
        } else {
            hash_join(&rows, &filtered[tid], &lk, &rk)
        };
        layout.push(tid);
    }

    // Residuals.
    for p in &query.residuals {
        match p {
            ResidualPred::CmpValue {
                table,
                col,
                op,
                value,
            } => {
                let o = offset(&layout, *table, *col);
                rows.retain(|r| op.eval(r.get(o), value));
            }
            ResidualPred::CmpCols {
                table,
                left,
                op,
                right,
            } => {
                let lo = offset(&layout, *table, *left);
                let ro = offset(&layout, *table, *right);
                rows.retain(|r| op.eval(r.get(lo), r.get(ro)));
            }
        }
    }

    // Output shaping.
    let grouped = !query.group_by.is_empty() || query.has_aggregates();
    let mut out;
    if grouped {
        let keys: Vec<usize> = query
            .group_by
            .iter()
            .map(|&(t, c)| offset(&layout, t, c))
            .collect();
        let mut aggs = Vec::new();
        for item in &query.output {
            if let OutputItem::Agg { func, arg } = item {
                aggs.push(AggSpec {
                    func: *func,
                    col: arg.map(|(t, c)| offset(&layout, t, c)),
                });
            }
        }
        let agg_rows = aggregate(&rows, &keys, &aggs);
        let mut positions = Vec::new();
        let mut ai = 0;
        for item in &query.output {
            match item {
                OutputItem::Column { table, col } => positions.push(
                    query
                        .group_by
                        .iter()
                        .position(|g| g == &(*table, *col))
                        .unwrap(),
                ),
                OutputItem::Agg { .. } => {
                    positions.push(keys.len() + ai);
                    ai += 1;
                }
            }
        }
        out = project(&agg_rows, &positions);
    } else {
        let positions: Vec<usize> = query
            .output
            .iter()
            .map(|item| match item {
                OutputItem::Column { table, col } => offset(&layout, *table, *col),
                OutputItem::Agg { .. } => unreachable!(),
            })
            .collect();
        out = project(&rows, &positions);
    }
    if query.distinct {
        out = distinct(&out);
    }
    let arity = out.first().map_or(0, Row::arity);
    sort_by(&mut out, &(0..arity).collect::<Vec<_>>());
    out
}

/// Run `n_instances` random instances of every template through `mode` and
/// compare each answer against the oracle.
fn check_workload<W: QueryWorkload>(workload: &W, mode: Mode, seed: u64, n_instances: usize) {
    // Raw data + catalog for the oracle.
    let mut raw: HashMap<String, Vec<Row>> = HashMap::new();
    let mut catalog = MapCatalog::new();
    for t in workload.market_tables() {
        raw.insert(t.schema.table.to_string(), t.rows().to_vec());
        catalog.add(t.schema.clone(), TableLocation::Market);
    }
    for t in workload.local_tables() {
        raw.insert(t.schema.table.to_string(), t.rows().to_vec());
        catalog.add(t.schema.clone(), TableLocation::Local);
    }

    let market = Arc::new(build_market(workload, 100));
    let mut pl = PayLess::new(market.clone(), PayLessConfig::mode(mode));
    for t in workload.local_tables() {
        pl.register_local(t.clone());
    }

    let mut rng = StdRng::seed_from_u64(seed);
    for (i, tmpl) in workload.templates().iter().enumerate() {
        let stmt = pl.prepare(tmpl).unwrap();
        for k in 0..n_instances {
            let params = workload.sample_params(i, &mut rng);
            let bound = stmt.bind(&params).unwrap();
            let analyzed = analyze(&bound, &catalog).unwrap();
            let expected = oracle(&analyzed, &raw);
            let out = pl
                .execute_template(&stmt, &params)
                .unwrap_or_else(|e| panic!("template {i} instance {k}: {e}"));
            let mut got = out.result.rows;
            got.sort();
            assert_eq!(
                got, expected,
                "mode {mode:?} template {i} instance {k} params {params:?}"
            );
        }
    }
}

fn whw() -> RealWorkload {
    RealWorkload::generate(&WhwConfig {
        stations: 36,
        countries: 3,
        cities_per_country: 3,
        days: 40,
        zips: 50,
        ranks: 100,
        seed: 8,
    })
}

#[test]
fn payless_matches_oracle_on_real_workload() {
    check_workload(&whw(), Mode::PayLess, 101, 3);
}

#[test]
fn payless_no_sqr_matches_oracle_on_real_workload() {
    check_workload(&whw(), Mode::PayLessNoSqr, 102, 2);
}

#[test]
fn min_calls_matches_oracle_on_real_workload() {
    check_workload(&whw(), Mode::MinCalls, 103, 2);
}

#[test]
fn download_all_matches_oracle_on_real_workload() {
    check_workload(&whw(), Mode::DownloadAll, 104, 2);
}

#[test]
fn all_modes_match_oracle_on_finance_bound_patterns() {
    // The bound `Symbol` attribute forces bind joins; every variant must
    // still produce exact answers.
    let f = Finance::generate(&FinanceConfig {
        symbols: 16,
        sectors: 4,
        days: 25,
        watchlist: 5,
        seed: 4,
    });
    check_workload(&f, Mode::PayLess, 301, 3);
    check_workload(&f, Mode::PayLessNoSqr, 302, 2);
    check_workload(&f, Mode::MinCalls, 303, 2);
    check_workload(&f, Mode::DownloadAll, 304, 2);
}

#[test]
fn payless_matches_oracle_on_tpch() {
    check_workload(
        &Tpch::generate(&TpchConfig::uniform(0.0004)),
        Mode::PayLess,
        105,
        2,
    );
}

#[test]
fn payless_matches_oracle_on_tpch_skew() {
    check_workload(
        &Tpch::generate(&TpchConfig::skewed(0.0004)),
        Mode::PayLess,
        106,
        2,
    );
}

#[test]
fn handcrafted_edge_queries_match_oracle() {
    let workload = whw();
    let mut raw: HashMap<String, Vec<Row>> = HashMap::new();
    let mut catalog = MapCatalog::new();
    for t in workload.market_tables() {
        raw.insert(t.schema.table.to_string(), t.rows().to_vec());
        catalog.add(t.schema.clone(), TableLocation::Market);
    }
    for t in workload.local_tables() {
        raw.insert(t.schema.table.to_string(), t.rows().to_vec());
        catalog.add(t.schema.clone(), TableLocation::Local);
    }
    let market = Arc::new(build_market(&workload, 100));
    let mut pl = PayLess::new(market.clone(), PayLessConfig::default());
    for t in workload.local_tables() {
        pl.register_local(t.clone());
    }
    let cases = [
        // Whole-table download through the optimizer path.
        "SELECT * FROM Station",
        // Disjunction.
        "SELECT * FROM Station WHERE Country = 'Country0' OR Country = 'Country2'",
        // IN-list sugar for the same decomposition.
        "SELECT * FROM Station WHERE Country IN ('Country0', 'Country2')",
        // Mixed IN over integers with a range.
        "SELECT * FROM Pollution WHERE Rank IN (5, 17, 60) AND ZipCode >= 10000 AND ZipCode <= 10030",
        // DISTINCT projection.
        "SELECT DISTINCT City FROM Station WHERE Country = 'Country1'",
        // Global aggregate without grouping.
        "SELECT COUNT(*), MIN(Rank), MAX(Rank) FROM Pollution WHERE Rank >= 5 AND Rank <= 60",
        // Residual on an output column.
        "SELECT * FROM Weather WHERE Weather.Country = 'Country0' AND \
         Weather.Date >= 1 AND Weather.Date <= 3 AND Temperature >= 0",
        // ORDER BY on plain columns.
        "SELECT ZipCode, Rank FROM Pollution WHERE Rank >= 90 AND Rank <= 100 \
         ORDER BY Rank, ZipCode",
        // Local-table-only query.
        "SELECT * FROM ZipMap WHERE City = 'City0'",
        // Unsatisfiable.
        "SELECT * FROM Pollution WHERE Rank >= 60 AND Rank <= 50",
    ];
    for sql in cases {
        let stmt = pl.prepare(sql).unwrap();
        let bound = stmt.bind(&[]).unwrap();
        let analyzed = analyze(&bound, &catalog).unwrap();
        let expected = oracle(&analyzed, &raw);
        let out = pl.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let mut got = out.result.rows;
        if analyzed.order_by.is_empty() {
            got.sort();
        } else {
            // Oracle sorts everything; re-sort both for comparison.
            got.sort();
        }
        let mut exp = expected;
        exp.sort();
        assert_eq!(got, exp, "query: {sql}");
    }
}

#[test]
fn oracle_smoke_self_test() {
    // Guard the oracle itself on a query small enough to verify by hand.
    let workload = whw();
    let mut raw: HashMap<String, Vec<Row>> = HashMap::new();
    let mut catalog = MapCatalog::new();
    for t in workload.market_tables() {
        raw.insert(t.schema.table.to_string(), t.rows().to_vec());
        catalog.add(t.schema.clone(), TableLocation::Market);
    }
    let stmt =
        payless_sql::parse("SELECT COUNT(*) FROM Station WHERE Country = 'Country0'").unwrap();
    let analyzed = analyze(&stmt, &catalog).unwrap();
    let expected = oracle(&analyzed, &raw);
    // 36 stations over 3 countries -> 12.
    assert_eq!(expected, vec![Row::new(vec![Value::int(12)])]);
}
