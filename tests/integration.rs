//! Cross-crate integration tests: whole-session behaviour of PayLess over a
//! live (simulated) data market.

use std::sync::Arc;

use payless_core::{build_market, Consistency, Mode, PayLess, PayLessConfig};
use payless_workload::{QueryWorkload, RealWorkload, Tpch, TpchConfig, WhwConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn whw() -> RealWorkload {
    RealWorkload::generate(&WhwConfig {
        stations: 48,
        countries: 4,
        cities_per_country: 3,
        days: 60,
        zips: 60,
        ranks: 100,
        seed: 3,
    })
}

fn session(mode: Mode, workload: &RealWorkload) -> (Arc<payless_core::DataMarket>, PayLess) {
    let market = Arc::new(build_market(workload, 100));
    let mut pl = PayLess::new(market.clone(), PayLessConfig::mode(mode));
    for t in workload.local_tables() {
        pl.register_local(t.clone());
    }
    (market, pl)
}

#[test]
fn cumulative_bill_grows_sublinearly_with_sqr() {
    let workload = whw();
    let (market, mut pl) = session(Mode::PayLess, &workload);
    let sqls: Vec<String> = (0..10)
        .map(|i| {
            format!(
                "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
                 Weather.Date >= {} AND Weather.Date <= {}",
                5 + i,
                25 + i
            )
        })
        .collect();
    let mut increments = Vec::new();
    let mut last = 0u64;
    for sql in &sqls {
        pl.query(sql).unwrap();
        let now = market.bill().transactions();
        increments.push(now - last);
        last = now;
    }
    // The first query pays for the window; subsequent sliding windows pay
    // only for the one-day remainder slices.
    assert!(increments[0] >= increments[9]);
    assert!(
        increments[5..].iter().sum::<u64>() <= increments[0] * 2,
        "increments {increments:?}"
    );
}

#[test]
fn bind_join_only_touches_needed_stations() {
    let workload = whw();
    let (market, mut pl) = session(Mode::PayLess, &workload);
    // City-selective query: with 12 cities and 48 stations, a city has 4
    // stations. The bind join should retrieve ~4 stations' weather, not the
    // whole country's.
    pl.query(
        "SELECT Temperature FROM Station, Weather WHERE \
         City = 'City0' AND Country = 'Country0' AND \
         Date >= 1 AND Date <= 10 AND Station.StationID = Weather.StationID",
    )
    .unwrap();
    let bill = market.bill();
    let weather: Arc<str> = "Weather".into();
    let fetched = bill.by_table[&weather].records;
    assert_eq!(fetched, 4 * 10, "fetched {fetched} weather records");
}

#[test]
fn or_disjunction_decomposes_into_multiple_calls() {
    let workload = whw();
    let (market, mut pl) = session(Mode::PayLess, &workload);
    let out = pl
        .query(
            "SELECT * FROM Weather WHERE \
             (Weather.Country = 'Country0' OR Weather.Country = 'Country1') AND \
             Weather.Date >= 3 AND Weather.Date <= 4",
        )
        .unwrap();
    // 12 stations per country x 2 days x 2 countries.
    assert_eq!(out.result.rows.len(), 48);
    // The interface cannot express the disjunction: at least two calls.
    assert!(market.bill().calls() >= 2);
}

#[test]
fn all_modes_agree_on_results() {
    let workload = whw();
    let mut rng = StdRng::seed_from_u64(77);
    let mut queries = Vec::new();
    for i in 0..workload.templates().len() {
        for _ in 0..2 {
            queries.push((i, workload.sample_params(i, &mut rng)));
        }
    }
    let mut reference: Option<Vec<Vec<payless_types::Row>>> = None;
    for mode in [
        Mode::PayLess,
        Mode::PayLessNoSqr,
        Mode::MinCalls,
        Mode::DownloadAll,
    ] {
        let (_, mut pl) = session(mode, &workload);
        let templates: Vec<_> = workload
            .templates()
            .iter()
            .map(|t| pl.prepare(t).unwrap())
            .collect();
        let mut results = Vec::new();
        for (t, params) in &queries {
            let out = pl.execute_template(&templates[*t], params).unwrap();
            let mut rows = out.result.rows;
            rows.sort();
            results.push(rows);
        }
        match &reference {
            None => reference = Some(results),
            Some(r) => assert_eq!(r, &results, "mode {mode:?} diverged"),
        }
    }
}

#[test]
fn payless_beats_download_all_on_selective_workload() {
    // The paper's real-data regime: the dataset is large relative to what
    // each query touches (19.5M weather rows vs. a city-month per query).
    // Scale accordingly: queries touch one country (1/10) and a ≤30-day
    // window (≤1/4), so 30 queries cannot pay for the whole dataset.
    let workload = RealWorkload::generate(&WhwConfig {
        stations: 120,
        countries: 10,
        cities_per_country: 4,
        days: 120,
        zips: 200,
        ranks: 100,
        seed: 3,
    });
    let mut totals = Vec::new();
    for mode in [Mode::PayLess, Mode::DownloadAll] {
        let (market, mut pl) = session(mode, &workload);
        let templates: Vec<_> = workload
            .templates()
            .iter()
            .map(|t| pl.prepare(t).unwrap())
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let t = rng.random_range(0..templates.len());
            let params = workload.sample_params(t, &mut rng);
            pl.execute_template(&templates[t], &params).unwrap();
        }
        totals.push(market.bill().transactions());
    }
    assert!(
        totals[0] < totals[1],
        "PayLess {} should beat DownloadAll {}",
        totals[0],
        totals[1]
    );
}

#[test]
fn tpch_queries_run_end_to_end() {
    let workload = Tpch::generate(&TpchConfig::uniform(0.0005));
    let market = Arc::new(build_market(&workload, 100));
    let mut pl = PayLess::new(market.clone(), PayLessConfig::default());
    for t in workload.local_tables() {
        pl.register_local(t.clone());
    }
    let mut rng = StdRng::seed_from_u64(13);
    for (i, tmpl) in workload.templates().iter().enumerate() {
        let stmt = pl.prepare(tmpl).unwrap();
        let params = workload.sample_params(i, &mut rng);
        let out = pl
            .execute_template(&stmt, &params)
            .unwrap_or_else(|e| panic!("template {i} failed: {e}"));
        // Scan-heavy templates should rarely be empty, but emptiness is not
        // an error; just ensure the pipeline produced a well-formed result.
        assert!(!out.result.columns.is_empty());
    }
    assert!(market.bill().transactions() > 0);
}

#[test]
fn tpch_skew_changes_distribution_but_not_correctness() {
    let uniform = Tpch::generate(&TpchConfig::uniform(0.0005));
    let skewed = Tpch::generate(&TpchConfig::skewed(0.0005));
    for workload in [&uniform, &skewed] {
        let market = Arc::new(build_market(workload, 100));
        let mut pl = PayLess::new(market.clone(), PayLessConfig::default());
        for t in workload.local_tables() {
            pl.register_local(t.clone());
        }
        let out = pl
            .query("SELECT OrderPriority, COUNT(*) FROM Orders WHERE OrderDate >= 1 AND OrderDate <= 2400 GROUP BY OrderPriority")
            .unwrap();
        let total: i64 = out
            .result
            .rows
            .iter()
            .map(|r| r.get(1).as_int().unwrap())
            .sum();
        assert_eq!(total as u64, market.cardinality("Orders").unwrap());
    }
}

#[test]
fn window_consistency_interacts_with_sliding_queries() {
    let workload = whw();
    let market = Arc::new(build_market(&workload, 100));
    let cfg = PayLessConfig {
        consistency: Consistency::Window(3),
        ..Default::default()
    };
    let mut pl = PayLess::new(market.clone(), cfg);
    let sql = "SELECT * FROM Weather WHERE Weather.Country = 'Country0' AND \
               Weather.Date >= 1 AND Weather.Date <= 20";
    pl.query(sql).unwrap();
    let first = market.bill().transactions();
    pl.query(sql).unwrap(); // within window: free
    assert_eq!(market.bill().transactions(), first);
    pl.advance_clock(5);
    pl.query(sql).unwrap(); // aged out: pays again
    assert_eq!(market.bill().transactions(), 2 * first);
}

#[test]
fn billing_report_is_per_table() {
    let workload = whw();
    let (market, mut pl) = session(Mode::PayLess, &workload);
    pl.query(
        "SELECT COUNT(ZipCode) FROM Pollution WHERE Pollution.Rank >= 10 AND \
         Pollution.Rank <= 20",
    )
    .unwrap();
    let bill = market.bill();
    let pollution: Arc<str> = "Pollution".into();
    assert!(bill.by_table.contains_key(&pollution));
    let weather: Arc<str> = "Weather".into();
    assert!(!bill.by_table.contains_key(&weather));
}

#[test]
fn heterogeneous_datasets_use_their_own_page_sizes() {
    use payless_market::{Dataset, MarketTable};
    use payless_types::{row, Column, Domain, Row, Schema};
    // Two datasets with different transaction page sizes, as in the real
    // Azure marketplace (each seller prices independently).
    let coarse_schema = Schema::new(
        "Coarse",
        vec![
            Column::free("k", Domain::int(0, 999)),
            Column::output("v", Domain::int(0, 9)),
        ],
    );
    let fine_schema = Schema::new(
        "Fine",
        vec![
            Column::free("k", Domain::int(0, 999)),
            Column::output("v", Domain::int(0, 9)),
        ],
    );
    let rows: Vec<Row> = (0..1000).map(|i| row!(i as i64, (i % 10) as i64)).collect();
    let market = Arc::new(payless_core::DataMarket::new(vec![
        Dataset::new("CoarseDS")
            .with_page_size(100)
            .with_table(MarketTable::new(coarse_schema, rows.clone())),
        Dataset::new("FineDS")
            .with_page_size(10)
            .with_table(MarketTable::new(fine_schema, rows)),
    ]));
    let mut pl = PayLess::new(market.clone(), PayLessConfig::default());
    // Identical 300-row fetches cost 3 vs 30 transactions.
    pl.query("SELECT * FROM Coarse WHERE k >= 0 AND k <= 299")
        .unwrap();
    let coarse: Arc<str> = "Coarse".into();
    assert_eq!(market.bill().by_table[&coarse].transactions, 3);
    pl.query("SELECT * FROM Fine WHERE k >= 0 AND k <= 299")
        .unwrap();
    let fine: Arc<str> = "Fine".into();
    assert_eq!(market.bill().by_table[&fine].transactions, 30);
    // And the optimizer's estimates respect the per-table page size.
    let (_, coarse_cost) = pl
        .explain("SELECT * FROM Coarse WHERE k >= 300 AND k <= 599")
        .unwrap();
    let (_, fine_cost) = pl
        .explain("SELECT * FROM Fine WHERE k >= 300 AND k <= 599")
        .unwrap();
    assert!((coarse_cost - 3.0).abs() < 1e-6, "coarse {coarse_cost}");
    assert!((fine_cost - 30.0).abs() < 1e-6, "fine {fine_cost}");
}

#[test]
fn query_outcome_reports_timings_and_counters() {
    let workload = whw();
    let (_, mut pl) = session(Mode::PayLess, &workload);
    let out = pl
        .query(
            "SELECT AVG(Temperature) FROM Station, Weather WHERE \
             Station.Country = Weather.Country = 'Country0' AND \
             Weather.Date >= 1 AND Weather.Date <= 5 AND \
             Station.StationID = Weather.StationID GROUP BY City",
        )
        .unwrap();
    assert!(out.counters.plans_considered > 0);
    assert!(out.optimize_nanos > 0);
    assert!(out.execute_nanos > 0);
    // The paper's efficiency claim: optimization finishes within
    // milliseconds (we allow a generous bound for CI noise).
    assert!(out.optimize_nanos < 500_000_000);
}

#[test]
fn order_by_on_grouped_output() {
    let workload = Tpch::generate(&TpchConfig::uniform(0.0005));
    let market = Arc::new(build_market(&workload, 100));
    let mut pl = PayLess::new(market, PayLessConfig::default());
    for t in workload.local_tables() {
        pl.register_local(t.clone());
    }
    let out = pl
        .query(
            "SELECT OrderPriority, COUNT(*) FROM Orders WHERE \
             OrderDate >= 1 AND OrderDate <= 2400 \
             GROUP BY OrderPriority ORDER BY OrderPriority",
        )
        .unwrap();
    assert_eq!(out.result.rows.len(), 5);
    let keys: Vec<String> = out
        .result
        .rows
        .iter()
        .map(|r| r.get(0).as_str().unwrap().to_string())
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "grouped output not ordered: {keys:?}");
    // ORDER BY on a non-grouped column alongside aggregates is rejected.
    let err = pl.query(
        "SELECT OrderPriority, COUNT(*) FROM Orders WHERE OrderDate >= 1 AND OrderDate <= 10 \
         GROUP BY OrderPriority ORDER BY OrderDate",
    );
    assert!(err.is_err());
}
