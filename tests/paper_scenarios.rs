//! Scenario tests that pin the paper's own worked examples to exact numbers.

use std::sync::Arc;

use payless_core::{DataMarket, Dataset, Mode, PayLess, PayLessConfig};
use payless_market::MarketTable;
use payless_types::{row, Column, Domain, Row, Schema};

/// Figure 1's exact setting (with Section 1's "15 stations in Seattle"
/// variant): 788 US weather stations spread over 53 cities, 15 of them in
/// Seattle, 30 days of June weather per station, transactions of 100 tuples.
fn figure1_market() -> DataMarket {
    let countries = Domain::categorical(["United States"]);
    let cities: Vec<String> = std::iter::once("Seattle".to_string())
        .chain((1..53).map(|i| format!("Other{i}")))
        .collect();
    let station_schema = Schema::new(
        "Station",
        vec![
            Column::free("Country", countries.clone()),
            Column::free("StationID", Domain::int(1, 788)),
            Column::free("City", Domain::categorical(cities.clone())),
        ],
    );
    // Stations 1..=15 are Seattle's; the rest rotate over the other cities,
    // giving ~15 stations per city (so the uniform estimate is accurate).
    let station_rows: Vec<Row> = (1..=788)
        .map(|sid| {
            let city = if sid <= 15 {
                "Seattle".to_string()
            } else {
                format!("Other{}", 1 + (sid - 16) % 52)
            };
            row!("United States", sid as i64, city.as_str())
        })
        .collect();
    let weather_schema = Schema::new(
        "Weather",
        vec![
            Column::free("Country", countries),
            Column::free("StationID", Domain::int(1, 788)),
            Column::free("Date", Domain::int(20140601, 20140630)),
            Column::output("Temperature", Domain::int(-60, 60)),
        ],
    );
    let mut weather_rows = Vec::with_capacity(788 * 30);
    for sid in 1..=788i64 {
        for day in 20140601..=20140630i64 {
            weather_rows.push(row!("United States", sid, day, (sid + day) % 40));
        }
    }
    DataMarket::new(vec![Dataset::new("WHW")
        .with_page_size(100)
        .with_table(MarketTable::new(station_schema, station_rows))
        .with_table(MarketTable::new(weather_schema, weather_rows))])
}

const FIGURE1_SQL: &str = "SELECT Temperature FROM Station, Weather \
     WHERE City = 'Seattle' AND Country = 'United States' AND \
     Date >= 20140601 AND Date <= 20140630 AND \
     Station.StationID = Weather.StationID";

#[test]
fn figure1_payless_executes_plan_p2_for_sixteen_transactions() {
    let market = Arc::new(figure1_market());
    let mut pl = PayLess::new(market.clone(), PayLessConfig::default());
    let out = pl.query(FIGURE1_SQL).unwrap();
    // 15 Seattle stations x 30 days of temperatures.
    assert_eq!(out.result.rows.len(), 15 * 30);
    let bill = market.bill();
    // Plan P2 with 15 Seattle stations (Section 1): C1 (15 station records
    // -> 1 txn) + 15 bind-join probes (30 records each -> 1 txn each) =
    // 16 transactions over 16 calls, exactly as the paper computes.
    assert_eq!(bill.transactions(), 16, "bill: {bill:?}");
    assert_eq!(bill.calls(), 16);
}

#[test]
fn figure1_min_calls_pays_238_transactions() {
    let market = Arc::new(figure1_market());
    let mut pl = PayLess::new(market.clone(), PayLessConfig::mode(Mode::MinCalls));
    let out = pl.query(FIGURE1_SQL).unwrap();
    assert_eq!(out.result.rows.len(), 15 * 30);
    let bill = market.bill();
    // Plan P1: C1 = 1 txn, C2 = ceil(788*30/100) = 237 txns. The paper's
    // Section 1 point exactly: minimizing calls picks 2 calls / 238 txns
    // over 16 calls / 16 txns.
    assert_eq!(bill.transactions(), 238, "bill: {bill:?}");
    assert_eq!(bill.calls(), 2);
}

/// Figure 6's exact setting: R(A[0,100]) with segment cardinalities
/// 21 / 28 / 34 / 91 / 123 (closed-interval encoding of the paper's
/// half-open pictures).
fn figure6_market() -> DataMarket {
    let schema = Schema::new(
        "R",
        vec![
            Column::free("A", Domain::int(0, 100)),
            Column::output("payload", Domain::int(0, 1_000_000)),
        ],
    );
    let mut rows = Vec::new();
    let mut id = 0i64;
    let mut fill = |lo: i64, hi: i64, n: i64, rows: &mut Vec<Row>| {
        for k in 0..n {
            let a = lo + k % (hi - lo + 1);
            id += 1;
            rows.push(row!(a, id));
        }
    };
    fill(0, 9, 21, &mut rows);
    fill(10, 19, 28, &mut rows);
    fill(20, 29, 34, &mut rows);
    fill(30, 59, 91, &mut rows);
    fill(60, 100, 123, &mut rows);
    DataMarket::new(vec![Dataset::new("DS")
        .with_page_size(100)
        .with_table(MarketTable::new(schema, rows))])
}

#[test]
fn figure6_remainder_queries_cost_three_transactions() {
    let market = Arc::new(figure6_market());
    let mut pl = PayLess::new(market.clone(), PayLessConfig::default());
    // Store V1 = A[10,19] and V2 = A[30,59] (1 txn each: 28 and 91 tuples).
    pl.query("SELECT * FROM R WHERE A >= 10 AND A <= 19")
        .unwrap();
    pl.query("SELECT * FROM R WHERE A >= 30 AND A <= 59")
        .unwrap();
    let before = market.bill().transactions();
    assert_eq!(before, 2);
    // Q = A[0,100]. The paper's best remainder set costs 3 transactions:
    // A[0,29] (83 tuples, overlapping V1 on purpose) + A[60,100]
    // (123 tuples, 2 txns) — not the naive 4.
    let out = pl
        .query("SELECT * FROM R WHERE A >= 0 AND A <= 100")
        .unwrap();
    assert_eq!(out.result.rows.len(), 297);
    let added = market.bill().transactions() - before;
    assert_eq!(added, 3, "remainder set should cost 3 transactions");
    // And the next full scan is free.
    pl.query("SELECT * FROM R WHERE A >= 0 AND A <= 100")
        .unwrap();
    assert_eq!(market.bill().transactions(), before + 3);
}

/// Theorem 1 end-to-end: the left-deep search must find a plan no more
/// expensive than the exhaustive bushy search, on a query whose natural
/// shape is bushy (Figure 4's U ⟕ R / S ⟕ T).
#[test]
fn theorem1_left_deep_matches_bushy_optimum() {
    use payless_optimizer::{optimize, OptimizerConfig};
    use payless_sql::{analyze, parse, MapCatalog, TableLocation};

    let mk = |name: &str, bound: &str, free: &str| {
        Schema::new(
            name,
            vec![
                if bound.is_empty() {
                    Column::free(free, Domain::int(0, 99))
                } else {
                    Column::bound(bound, Domain::int(0, 99))
                },
                Column::free(
                    if bound.is_empty() { "aux" } else { free },
                    Domain::int(0, 99),
                ),
            ],
        )
    };
    let u = Schema::new(
        "U",
        vec![
            Column::free("x", Domain::int(0, 99)),
            Column::free("y", Domain::int(0, 99)),
        ],
    );
    let r = mk("R", "y", "z");
    let s = Schema::new(
        "S",
        vec![
            Column::free("t", Domain::int(0, 99)),
            Column::free("w", Domain::int(0, 99)),
        ],
    );
    let t = mk("T", "w", "z");
    let mut catalog = MapCatalog::new();
    let mut stats = payless_stats::StatsRegistry::new();
    let mut store = payless_semantic::SemanticStore::new();
    let mut meta = std::collections::HashMap::new();
    for schema in [&u, &r, &s, &t] {
        catalog.add(schema.clone(), TableLocation::Market);
        stats.register(schema, 500);
        store.register(payless_geometry::QuerySpace::of(schema));
        meta.insert(schema.table.to_string(), 100u64);
    }
    let stmt =
        parse("SELECT * FROM U, R, S, T WHERE U.y = R.y AND S.w = T.w AND R.z = T.z").unwrap();
    let q = analyze(&stmt, &catalog).unwrap();
    let ld = optimize(
        &q,
        &stats,
        &store,
        &meta,
        &OptimizerConfig::payless_no_sqr(),
        0,
    )
    .unwrap();
    let bu = optimize(
        &q,
        &stats,
        &store,
        &meta,
        &OptimizerConfig::disable_all(),
        0,
    )
    .unwrap();
    assert!(
        ld.cost.primary <= bu.cost.primary + 1e-6,
        "left-deep {} vs bushy {}",
        ld.cost.primary,
        bu.cost.primary
    );
    assert!(ld.plan.is_left_deep());
    // Theorem 1's point: the restriction loses nothing.
    assert!((ld.cost.primary - bu.cost.primary).abs() < 1e-6);
}

/// Section 4.1's search-space claim, measured: the candidate count of the
/// full bushy space grows far faster than PayLess's reduced space on chain
/// queries.
#[test]
fn search_space_reduction_on_chain_queries() {
    use payless_optimizer::{optimize, OptimizerConfig};
    use payless_sql::{analyze, parse, MapCatalog, TableLocation};

    let mut ld_counts = Vec::new();
    let mut bushy_counts = Vec::new();
    for n in 2..=6usize {
        let mut catalog = MapCatalog::new();
        let mut stats = payless_stats::StatsRegistry::new();
        let mut store = payless_semantic::SemanticStore::new();
        let mut meta = std::collections::HashMap::new();
        for i in 0..n {
            let schema = Schema::new(
                format!("C{i}"),
                vec![
                    Column::free("a", Domain::int(0, 99)),
                    Column::free("b", Domain::int(0, 99)),
                ],
            );
            catalog.add(schema.clone(), TableLocation::Market);
            stats.register(&schema, 1000);
            store.register(payless_geometry::QuerySpace::of(&schema));
            meta.insert(schema.table.to_string(), 100u64);
        }
        let joins: Vec<String> = (0..n - 1)
            .map(|i| format!("C{i}.b = C{}.a", i + 1))
            .collect();
        let tables: Vec<String> = (0..n).map(|i| format!("C{i}")).collect();
        let sql = format!(
            "SELECT * FROM {} WHERE {}",
            tables.join(", "),
            joins.join(" AND ")
        );
        let q = analyze(&parse(&sql).unwrap(), &catalog).unwrap();
        let ld = optimize(
            &q,
            &stats,
            &store,
            &meta,
            &OptimizerConfig::payless_no_sqr(),
            0,
        )
        .unwrap();
        let bu = optimize(
            &q,
            &stats,
            &store,
            &meta,
            &OptimizerConfig::disable_all(),
            0,
        )
        .unwrap();
        ld_counts.push(ld.counters.plans_considered);
        bushy_counts.push(bu.counters.plans_considered);
    }
    // Both grow with n…
    assert!(ld_counts.windows(2).all(|w| w[0] < w[1]));
    assert!(bushy_counts.windows(2).all(|w| w[0] < w[1]));
    // …but the bushy space explodes much faster (paper: ≈6ⁿ−5ⁿ vs
    // ≈2ⁿ + ⅔n³). At n = 6 the gap must be large.
    let (ld6, bu6) = (*ld_counts.last().unwrap(), *bushy_counts.last().unwrap());
    assert!(
        bu6 >= 4 * ld6,
        "bushy {bu6} should dwarf left-deep {ld6}; ld={ld_counts:?} bushy={bushy_counts:?}"
    );
}

/// Theorem 2 end-to-end: once the store covers a market table, PayLess joins
/// it first and pays nothing for it.
#[test]
fn theorem2_zero_price_relations_join_first() {
    let market = Arc::new(figure1_market());
    let mut pl = PayLess::new(market.clone(), PayLessConfig::default());
    // Download Station via a full scan.
    pl.query("SELECT * FROM Station").unwrap();
    let after_station = market.bill().transactions();
    // Station now zero-price: the weather query pays only for Weather.
    let out = pl.query(FIGURE1_SQL).unwrap();
    assert_eq!(out.result.rows.len(), 15 * 30);
    let plan = out.plan.unwrap();
    assert!(
        plan.starts_with("(Station"),
        "zero-price Station should lead the plan: {plan}"
    );
    let added = market.bill().transactions() - after_station;
    assert_eq!(added, 15, "15 Seattle weather probes, one transaction each");
}
