//! Provenance-exactness suite for the flight recorder.
//!
//! The journal's per-query provenance must be *accounting-grade*: summing
//! the billed pages over a query's reconstructed provenance tree
//! (non-batch `call_delivered` + billed `call_failed` + `batch_share`
//! events) must equal the query's synthesized ledger total, and Σ over all
//! queries must equal the billing meter's delta — clean and under the
//! pinned chaos seed, serial and 4-thread, batch purchasing on and off.
//!
//! A second family of checks asserts causal closure of waste: every event
//! that carries billed waste (a delivered call's truncation overhead, a
//! billed failure, a batch member's wasted share) must be reachable from
//! an explicit fault event (`call_fault` / `call_truncated`) through its
//! call or batch id. No page of waste appears out of thin air.

use std::sync::Arc;

use payless_events::{provenance, render_provenance, Event, EventJournal, EventKind};
use payless_exec::RetryPolicy;
use payless_market::{DataMarket, Dataset, FaultInjector, FaultPlan};
use payless_serve::{run_mix, BatchConfig, Serve, ServeConfig, ServeReport};
use payless_workload::{serve_mix, MixItem, QueryWorkload, RealWorkload, WhwConfig};

/// Single-table WHW templates (see `serve_concurrency.rs`): at
/// `page_size = 1` their delivered pages are interleaving-independent.
const TEMPLATES: [usize; 2] = [0, 1];

/// The CI events-smoke's pinned chaos seed.
const CHAOS_SEED: u64 = 48879;

fn tiny_workload() -> RealWorkload {
    RealWorkload::generate(&WhwConfig {
        stations: 24,
        countries: 4,
        cities_per_country: 3,
        days: 20,
        zips: 40,
        ranks: 100,
        seed: 3,
    })
}

fn build_market(w: &RealWorkload) -> Arc<DataMarket> {
    let mut dataset = Dataset::new("market").with_page_size(1);
    for t in QueryWorkload::market_tables(w) {
        dataset = dataset.with_table(t.clone());
    }
    Arc::new(DataMarket::new(vec![dataset]))
}

/// Replay `mix` with a journal attached; return the report (or the error)
/// plus the journal's merged snapshot.
#[allow(clippy::type_complexity)]
fn run_journaled(
    w: &RealWorkload,
    mix: &[MixItem],
    threads: usize,
    batch: Option<BatchConfig>,
    fault_seed: Option<u64>,
    retry: RetryPolicy,
) -> (Result<ServeReport, payless_types::PaylessError>, Vec<Event>) {
    let market = build_market(w);
    if let Some(seed) = fault_seed {
        market.attach_fault_injector(FaultInjector::new(FaultPlan::chaos(seed)));
    }
    // Big ring: provenance exactness needs every event of the run retained.
    let journal = Arc::new(EventJournal::new(1 << 16));
    let cfg = ServeConfig {
        threads,
        retry,
        batch,
        events: Some(Arc::clone(&journal)),
        ..ServeConfig::default()
    };
    let serve = Serve::new(market, QueryWorkload::local_tables(w), cfg);
    let templates: Vec<_> = QueryWorkload::templates(w)
        .iter()
        .map(|sql| serve.prepare(sql).expect("workload templates parse"))
        .collect();
    let out = run_mix(&serve, mix, &templates);
    assert_eq!(journal.dropped(), 0, "ring too small for the run");
    (out, journal.snapshot())
}

/// The tentpole acceptance check: per-query provenance == ledger row, and
/// Σ provenance == meter delta.
fn assert_provenance_exact(report: &ServeReport, events: &[Event]) {
    let mut total = 0u64;
    for row in &report.per_query {
        let p = provenance(events, row.query_id);
        assert_eq!(
            p.billed_pages(),
            row.pages,
            "query {}: provenance tree bills {} pages but the ledger says {}\n{}",
            row.query_id,
            p.billed_pages(),
            row.pages,
            render_provenance(events, row.query_id)
        );
        assert_eq!(
            p.wasted_pages, row.wasted_pages,
            "query {}: provenance wasted pages diverge from the ledger",
            row.query_id
        );
        total += p.billed_pages();
    }
    assert_eq!(
        total, report.meter_transactions,
        "Σ per-query provenance must equal the billing meter's delta"
    );
}

/// Causal closure of waste: every waste-carrying event must trace back to
/// an explicit fault event through its call id (or, for batch shares,
/// through a batch-tagged waste-carrying call).
fn assert_waste_reachable_from_faults(events: &[Event]) {
    let has_fault_for_call = |call: u64| {
        events.iter().any(|e| {
            matches!(
                &e.kind,
                EventKind::CallFault { call: c, .. } | EventKind::CallTruncated { call: c, .. }
                    if *c == call
            )
        })
    };
    for e in events {
        match &e.kind {
            EventKind::CallDelivered {
                call, wasted_pages, ..
            } if *wasted_pages > 0 => {
                assert!(
                    has_fault_for_call(*call),
                    "call {call} delivered with waste but journaled no fault"
                );
            }
            EventKind::CallFailed {
                call,
                billed: true,
                wasted_pages,
                ..
            } if *wasted_pages > 0 => {
                assert!(
                    has_fault_for_call(*call),
                    "call {call} billed-and-failed but journaled no fault"
                );
            }
            EventKind::BatchShare {
                batch,
                wasted_pages,
                ..
            } if *wasted_pages > 0 => {
                // The share's waste is a split of some batch-tagged call's
                // waste; that call must itself trace to a fault.
                let source = events.iter().find_map(|s| match &s.kind {
                    EventKind::CallDelivered {
                        call,
                        wasted_pages,
                        batch: Some(b),
                        ..
                    } if *b == *batch && *wasted_pages > 0 => Some(*call),
                    EventKind::CallFailed {
                        call,
                        billed: true,
                        batch: Some(b),
                        ..
                    } if *b == *batch => Some(*call),
                    _ => None,
                });
                let source = source
                    .unwrap_or_else(|| panic!("batch {batch} share waste has no source call"));
                assert!(
                    has_fault_for_call(source),
                    "batch {batch} waste source call {source} journaled no fault"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn provenance_is_exact_clean_and_chaos_serial_and_parallel() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 4, 16, CHAOS_SEED);
    for threads in [1usize, 4] {
        for batch in [None, Some(BatchConfig::default())] {
            for fault_seed in [None, Some(CHAOS_SEED)] {
                let retry = if fault_seed.is_some() {
                    RetryPolicy::unlimited()
                } else {
                    RetryPolicy::default()
                };
                let (out, events) = run_journaled(&w, &mix, threads, batch, fault_seed, retry);
                let report = out.unwrap_or_else(|e| {
                    panic!(
                        "mix must succeed (threads {threads}, batch {}, \
                         fault {fault_seed:?}): {e}",
                        batch.is_some()
                    )
                });
                assert_provenance_exact(&report, &events);
                assert_waste_reachable_from_faults(&events);
            }
        }
    }
}

#[test]
fn every_query_row_has_a_journaled_lifecycle() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 3, 12, 7);
    let (out, events) = run_journaled(&w, &mix, 4, None, None, RetryPolicy::default());
    let report = out.expect("clean mix succeeds");
    for row in &report.per_query {
        assert!(row.query_id > 0, "run_mix must surface the causal id");
        let start = events
            .iter()
            .any(|e| e.query == Some(row.query_id) && matches!(e.kind, EventKind::QueryStart));
        let done = events.iter().any(|e| {
            e.query == Some(row.query_id) && matches!(e.kind, EventKind::QueryDone { ok: true, .. })
        });
        assert!(start, "query {} journaled no query_start", row.query_id);
        assert!(done, "query {} journaled no ok query_done", row.query_id);
    }
}

mod random_schedules {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random K-client chaos schedules, batch on and off, limited
        /// retries (so `BilledAndFailed` outcomes actually escape): every
        /// waste share in the journal is reachable from a fault event, and
        /// when the mix completes its provenance is exact.
        #[test]
        fn any_schedule_keeps_waste_causally_closed(seed in any::<u64>()) {
            let w = tiny_workload();
            let clients = 2 + (seed % 3) as usize; // 2..=4
            let threads = 1 + ((seed >> 2) % 4) as usize; // 1..=4
            let batch = (seed & 1 == 0).then(BatchConfig::default);
            let queries = 6 + (seed % 5) as usize; // 6..=10
            let mix = serve_mix(&w, &TEMPLATES, clients, queries, seed);
            let retry = if seed & 2 == 0 {
                RetryPolicy::unlimited()
            } else {
                // Limited retries under chaos: some queries fail with
                // billed waste, which must still trace to fault events.
                RetryPolicy::default()
            };
            let (out, events) =
                run_journaled(&w, &mix, threads, batch, Some(seed ^ 0xc0ffee), retry);
            assert_waste_reachable_from_faults(&events);
            if let Ok(report) = out {
                assert_provenance_exact(&report, &events);
            }
        }
    }
}
