//! End-to-end telemetry: the traced query report must be auditable against
//! the market's billing meter, across modes and across the whole pipeline.

use std::sync::Arc;

use payless_core::{build_market, Mode, PayLess, PayLessConfig};
use payless_workload::{QueryWorkload, RealWorkload, WhwConfig};

fn session(mode: Mode) -> (Arc<payless_core::DataMarket>, PayLess) {
    let workload = RealWorkload::generate(&WhwConfig {
        stations: 48,
        countries: 4,
        cities_per_country: 3,
        days: 60,
        zips: 60,
        ranks: 100,
        seed: 3,
    });
    let market = Arc::new(build_market(&workload, 100));
    let mut pl = PayLess::new(market.clone(), PayLessConfig::mode(mode));
    for t in QueryWorkload::local_tables(&workload) {
        pl.register_local(t.clone());
    }
    pl.enable_tracing(true);
    (market, pl)
}

#[test]
fn ledger_total_matches_billed_total() {
    let (market, mut pl) = session(Mode::PayLess);
    let queries = [
        "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
         Weather.Date >= 5 AND Weather.Date <= 9",
        // Overlaps the first: SQR partial hit, remainder fetch only.
        "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
         Weather.Date >= 5 AND Weather.Date <= 20",
        // Bind join: Station drives point probes into Weather.
        "SELECT * FROM Station, Weather WHERE Station.Country = Weather.Country = \
         'Country2' AND Station.StationID = Weather.StationID AND \
         Weather.Date >= 1 AND Weather.Date <= 10",
    ];
    for sql in queries {
        let before = market.bill().transactions();
        let out = pl.query(sql).unwrap();
        let delta = market.bill().transactions() - before;
        let report = out.report.expect("tracing is on");
        // The spend ledger is the audit trail: its page total must equal the
        // transactions the meter accrued for exactly this query.
        assert_eq!(report.total_pages(), delta, "ledger drifted for {sql}");
        assert_eq!(report.paid_transactions, delta);
        // Unit price market: money == transactions.
        assert!((report.total_price() - delta as f64).abs() < 1e-9);
    }
}

#[test]
fn repeat_query_reports_full_hit_and_empty_ledger() {
    let (_, mut pl) = session(Mode::PayLess);
    let sql = "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
               Weather.Date >= 5 AND Weather.Date <= 9";
    let first = pl.query(sql).unwrap().report.unwrap();
    assert!(first.total_pages() > 0);
    assert_eq!(first.sqr().misses, 1);
    let second = pl.query(sql).unwrap().report.unwrap();
    assert_eq!(second.sqr().full_hits, 1);
    // Fully covered: a single zero-page (free) remainder call at most.
    assert_eq!(second.total_pages(), 0);
    assert!((second.total_price()).abs() < 1e-12);
}

#[test]
fn report_carries_plan_search_and_phase_data() {
    let (_, mut pl) = session(Mode::PayLess);
    let out = pl
        .query(
            "SELECT * FROM Station, Weather WHERE Station.Country = Weather.Country = \
             'Country0' AND Station.StationID = Weather.StationID AND \
             Weather.Date >= 1 AND Weather.Date <= 5",
        )
        .unwrap();
    let report = out.report.unwrap();
    assert!(report.counters.plans_considered > 0);
    assert!(report.optimize_nanos > 0);
    assert!(report.execute_nanos > 0);
    assert!(report.analyze_nanos > 0);
    assert!(!report.telemetry.spans.is_empty(), "operator spans missing");
    // Every ledger entry satisfies Eq. (1).
    for e in &report.telemetry.ledger {
        assert_eq!(e.pages, e.records.div_ceil(e.page_size));
    }
    // The JSON dump is well-formed and self-consistent.
    let text = report.to_json().to_string_pretty();
    let parsed = payless_json::parse(&text).unwrap();
    assert!(parsed.get_opt("telemetry").is_some());
}

#[test]
fn download_all_ledger_is_download_kind() {
    let (market, mut pl) = session(Mode::DownloadAll);
    let out = pl
        .query(
            "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
             Weather.Date >= 5 AND Weather.Date <= 9",
        )
        .unwrap();
    let report = out.report.unwrap();
    assert_eq!(report.total_pages(), market.bill().transactions());
    assert!(report
        .telemetry
        .ledger
        .iter()
        .any(|e| e.kind == payless_core::CallKind::Download));
}

#[test]
fn untraced_queries_carry_no_report() {
    let (market, mut pl) = session(Mode::PayLess);
    pl.enable_tracing(false);
    let out = pl
        .query(
            "SELECT * FROM Weather WHERE Weather.Country = 'Country3' AND \
             Weather.Date >= 1 AND Weather.Date <= 3",
        )
        .unwrap();
    assert!(out.report.is_none());
    assert!(market.bill().transactions() > 0); // billing is unaffected
}
