//! Compaction & eviction safety suite: the semantic store is a *cache*,
//! and neither merging adjacent view boxes nor evicting under the view cap
//! may change what a query answers or what the market bills.
//!
//! Oracle construction: the same seeded serve mix replayed serially
//! (`threads = 1`, `page_size = 1`) on a store with compaction disabled and
//! an effectively unbounded view cap — every purchased box kept verbatim.
//! Against that oracle:
//!
//! * with compaction on and no cap pressure, every query returns the same
//!   answers *and* the run delivers exactly the same pages — merging boxes
//!   must never re-buy covered records nor skip uncovered ones;
//! * under hard cap pressure (evictions forced), answers still match and
//!   delivered spend can only grow (evicted coverage is re-bought, never
//!   hallucinated);
//! * under injected market chaos, compacted + capped runs still reconcile
//!   Σ per-query ledger == billing meter ([`run_mix`] asserts this on every
//!   run) and still match the clean oracle's answers.

use std::sync::Arc;

use payless_exec::RetryPolicy;
use payless_market::{DataMarket, Dataset, FaultInjector, FaultPlan};
use payless_semantic::StoreConfig;
use payless_serve::{run_mix, Serve, ServeConfig, ServeReport};
use payless_workload::{serve_mix, MixItem, QueryWorkload, RealWorkload, WhwConfig};

/// Both single-table WHW templates (see `serve_concurrency.rs` for why the
/// bind-join templates stay out at `page_size = 1`).
const TEMPLATES: [usize; 2] = [0, 1];

fn tiny_workload() -> RealWorkload {
    RealWorkload::generate(&WhwConfig {
        stations: 24,
        countries: 4,
        cities_per_country: 3,
        days: 20,
        zips: 40,
        ranks: 100,
        seed: 11,
    })
}

fn build_market(w: &RealWorkload) -> Arc<DataMarket> {
    let mut dataset = Dataset::new("market").with_page_size(1);
    for t in QueryWorkload::market_tables(w) {
        dataset = dataset.with_table(t.clone());
    }
    Arc::new(DataMarket::new(vec![dataset]))
}

/// Serial replay of `mix` with the given store tuning; chaos runs retry
/// without limit so every query answers and stays comparable.
fn run(
    w: &RealWorkload,
    mix: &[MixItem],
    store: StoreConfig,
    fault_seed: Option<u64>,
) -> ServeReport {
    let market = build_market(w);
    if let Some(seed) = fault_seed {
        market.attach_fault_injector(FaultInjector::new(FaultPlan::chaos(seed)));
    }
    let cfg = ServeConfig {
        threads: 1,
        retry: if fault_seed.is_some() {
            RetryPolicy::unlimited()
        } else {
            RetryPolicy::default()
        },
        store,
        ..ServeConfig::default()
    };
    let serve = Serve::new(market, QueryWorkload::local_tables(w), cfg);
    let templates: Vec<_> = QueryWorkload::templates(w)
        .iter()
        .map(|sql| serve.prepare(sql).expect("workload templates parse"))
        .collect();
    run_mix(&serve, mix, &templates).expect("serve mix succeeds")
}

/// Raw-box oracle: compaction off, cap far above anything the mix buys.
fn oracle_config() -> StoreConfig {
    StoreConfig {
        max_views: 1 << 20,
        compaction: false,
    }
}

fn assert_same_answers(run: &ServeReport, oracle: &ServeReport) {
    assert_eq!(run.per_query.len(), oracle.per_query.len());
    for (i, (p, s)) in run.per_query.iter().zip(&oracle.per_query).enumerate() {
        assert_eq!(
            p.digest, s.digest,
            "query {i}: answers diverged from the uncompacted oracle"
        );
        assert_eq!(p.rows, s.rows, "query {i}: row count mismatch");
    }
    assert_eq!(run.total_rows, oracle.total_rows);
}

#[test]
fn compaction_preserves_answers_and_delivered_spend() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 3, 20, 42);
    let oracle = run(&w, &mix, oracle_config(), None);
    // Same cap, compaction on: merged boxes cover exactly the union of the
    // raw boxes, so classification — and therefore every purchase decision —
    // is identical query by query.
    let compacted = run(
        &w,
        &mix,
        StoreConfig {
            max_views: 1 << 20,
            compaction: true,
        },
        None,
    );
    assert_same_answers(&compacted, &oracle);
    assert_eq!(
        compacted.delivered_pages(),
        oracle.delivered_pages(),
        "compaction changed delivered spend: merged coverage must be \
         exactly the union of the raw boxes"
    );
    assert_eq!(compacted.wasted_pages, 0);
    assert_eq!(oracle.wasted_pages, 0);
}

#[test]
fn eviction_under_cap_pressure_keeps_answers_correct() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 3, 24, 7);
    let oracle = run(&w, &mix, oracle_config(), None);
    // A cap this tight guarantees evictions on this mix; the store shrinks
    // to 3/4 of the cap each time it fills. Coverage lost to eviction is
    // re-bought on the next probe — answers never change, spend only grows.
    for max_views in [4usize, 8, 16] {
        let capped = run(
            &w,
            &mix,
            StoreConfig {
                max_views,
                compaction: true,
            },
            None,
        );
        assert_same_answers(&capped, &oracle);
        assert!(
            capped.delivered_pages() >= oracle.delivered_pages(),
            "cap {max_views}: an evicting store delivered fewer pages \
             ({}) than the unbounded oracle ({}) — it answered from \
             coverage it no longer holds",
            capped.delivered_pages(),
            oracle.delivered_pages()
        );
    }
}

#[test]
fn chaos_with_compaction_and_eviction_still_reconciles() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 4, 18, 48879);
    let clean_oracle = run(&w, &mix, oracle_config(), None);
    // Σ per-query ledger == billing meter is asserted inside `run_mix` on
    // every run; these seeds exercise it with faults landing before, during
    // and after compaction/eviction activity.
    for chaos_seed in [48879u64, 0xc0ffee, 31337] {
        let chaotic = run(
            &w,
            &mix,
            StoreConfig {
                max_views: 8,
                compaction: true,
            },
            Some(chaos_seed),
        );
        assert_same_answers(&chaotic, &clean_oracle);
        assert!(
            chaotic.delivered_pages() >= clean_oracle.delivered_pages(),
            "seed {chaos_seed}: chaos + eviction delivered fewer pages than \
             the unbounded clean oracle"
        );
    }
}
