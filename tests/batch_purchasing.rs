//! Shared-spend attribution suite for batched cross-query purchasing.
//!
//! Queries arriving within the serve layer's batching window park their
//! uncovered remainders; the window leader buys the merged remainder once
//! and splits every purchased page's cost across the queries whose
//! remainder it served. The market runs at `page_size = 1` under the serve
//! layer's exact rewrite profile, so delivered pages are a function of the
//! union of purchased regions alone — independent of interleaving *and* of
//! whether purchases were batched. That gives a sharp oracle:
//!
//! * a batched run returns byte-identical answers to the serial unbatched
//!   replay of the same mix, and never delivers (bills) more pages;
//! * Σ per-query synthesized ledgers == the billing meter, clean and under
//!   chaos, at every thread count ([`payless_serve::run_mix`] asserts this
//!   internally; strict watchdog mode cross-checks it mid-run);
//! * a failed batch call reverts every member's share to wasted-spend
//!   accounting that still sums exactly to the billed pages.

use std::sync::Arc;

use payless_exec::RetryPolicy;
use payless_market::{DataMarket, Dataset, FaultInjector, FaultKind, FaultPlan};
use payless_metrics::{MetricsConfig, MetricsHub};
use payless_serve::{run_mix, BatchConfig, Serve, ServeConfig, ServeReport};
use payless_workload::{overlapping_mix, MixItem, QueryWorkload, RealWorkload, WhwConfig};

/// Both single-table WHW templates (the interleaving-independence
/// rationale is the same as the serve-concurrency suite's).
const TEMPLATES: [usize; 2] = [0, 1];

/// The chaos seed CI pins (0xBEEF).
const CHAOS_SEED: u64 = 48879;

fn tiny_workload() -> RealWorkload {
    RealWorkload::generate(&WhwConfig {
        stations: 24,
        countries: 4,
        cities_per_country: 3,
        days: 20,
        zips: 40,
        ranks: 100,
        seed: 3,
    })
}

/// A fresh market at page size 1 (pages == records for every delivery).
fn build_market(w: &RealWorkload) -> Arc<DataMarket> {
    let mut dataset = Dataset::new("market").with_page_size(1);
    for t in QueryWorkload::market_tables(w) {
        dataset = dataset.with_table(t.clone());
    }
    Arc::new(DataMarket::new(vec![dataset]))
}

/// Replay `mix` on a fresh serving layer, batched or not, with the strict
/// watchdog on (any mid-run reconciliation violation fails the mix).
fn run(
    w: &RealWorkload,
    mix: &[MixItem],
    threads: usize,
    batch: Option<BatchConfig>,
    fault_seed: Option<u64>,
) -> ServeReport {
    let market = build_market(w);
    if let Some(seed) = fault_seed {
        market.attach_fault_injector(FaultInjector::new(FaultPlan::chaos(seed)));
    }
    let cfg = ServeConfig {
        threads,
        batch,
        retry: if fault_seed.is_some() {
            RetryPolicy::unlimited()
        } else {
            RetryPolicy::default()
        },
        metrics: Some(Arc::new(MetricsHub::new(MetricsConfig::default()))),
        strict_reconcile: true,
        ..ServeConfig::default()
    };
    let serve = Serve::new(market, QueryWorkload::local_tables(w), cfg);
    let templates: Vec<_> = QueryWorkload::templates(w)
        .iter()
        .map(|sql| serve.prepare(sql).expect("workload templates parse"))
        .collect();
    run_mix(&serve, mix, &templates).expect("serve mix succeeds")
}

fn assert_same_answers(run: &ServeReport, oracle: &ServeReport) {
    assert_eq!(run.per_query.len(), oracle.per_query.len());
    for (i, (b, s)) in run.per_query.iter().zip(&oracle.per_query).enumerate() {
        assert_eq!(b.client, s.client, "query {i}: client mismatch");
        assert_eq!(b.template, s.template, "query {i}: template mismatch");
        assert_eq!(
            b.digest, s.digest,
            "query {i}: result digest diverged from the unbatched oracle"
        );
        assert_eq!(b.rows, s.rows, "query {i}: row count mismatch");
    }
    assert_eq!(run.total_rows, oracle.total_rows);
}

#[test]
fn batched_runs_match_the_unbatched_oracle_and_never_cost_more() {
    let w = tiny_workload();
    let mix = overlapping_mix(&w, &TEMPLATES, 4, 8, 48879);
    let oracle = run(&w, &mix, 1, None, None);
    assert!(!oracle.batch);
    assert_eq!(oracle.batch_joins, 0, "batching was off");
    assert_eq!(oracle.shared_pages, 0, "batching was off");

    for threads in [1usize, 4] {
        let batched = run(&w, &mix, threads, Some(BatchConfig::default()), None);
        assert!(batched.batch);
        assert_same_answers(&batched, &oracle);
        assert!(
            batched.delivered_pages() <= oracle.delivered_pages(),
            "batching must never deliver (and bill) more pages than the \
             unbatched replay: batched {} > unbatched {} at {threads} thread(s)",
            batched.delivered_pages(),
            oracle.delivered_pages()
        );
        assert!(
            batched.batch_joins > 0,
            "purchasing queries must park remainders when batching is on"
        );
        // Exact attribution: a query can only report shared-batch pages it
        // was actually billed for.
        for (i, q) in batched.per_query.iter().enumerate() {
            assert!(
                q.shared_pages <= q.pages,
                "query {i} reports more shared pages than it paid"
            );
            assert!(
                q.batch_joins > 0 || q.shared_pages == 0,
                "query {i} reports shared pages without ever joining a batch"
            );
        }
        assert_eq!(batched.wasted_pages, 0, "clean runs waste nothing");
    }
}

#[test]
fn spend_per_query_falls_as_clients_share_the_hot_pool() {
    let w = tiny_workload();
    let per_client = 8;
    let spend_per_query = |clients: usize| {
        let mix = overlapping_mix(&w, &TEMPLATES, clients, per_client, 48879);
        let report = run(&w, &mix, clients.min(4), Some(BatchConfig::default()), None);
        report.delivered_pages() as f64 / report.queries as f64
    };
    let lone = spend_per_query(1);
    let crowd = spend_per_query(4);
    assert!(
        crowd < lone,
        "four clients drawing from one hot pool must each pay less than a \
         lone client: {crowd:.3} vs {lone:.3} pages/query"
    );
}

#[test]
fn chaos_batched_runs_survive_the_strict_watchdog() {
    let w = tiny_workload();
    let mix = overlapping_mix(&w, &TEMPLATES, 4, 6, CHAOS_SEED);
    let clean_oracle = run(&w, &mix, 1, None, None);

    // Batched + chaos + unlimited retries, serial and parallel: `run`
    // keeps the strict watchdog on, so a reconciliation or (at one
    // thread) beyond-deferred drift violation fails the mix outright.
    for threads in [1usize, 4] {
        let faulted = run(
            &w,
            &mix,
            threads,
            Some(BatchConfig::default()),
            Some(CHAOS_SEED),
        );
        assert_same_answers(&faulted, &clean_oracle);
        assert!(
            faulted.delivered_pages() <= clean_oracle.delivered_pages(),
            "chaos must not defeat batching: delivered {} > clean oracle {} \
             at {threads} thread(s)",
            faulted.delivered_pages(),
            clean_oracle.delivered_pages()
        );
    }
}

/// A failed batch call reverts every member's share to wasted-spend
/// accounting: the query errors, and the wasted shares distributed across
/// the batch sum exactly to what the meter billed for the failed attempt.
#[test]
fn failed_batch_share_reverts_to_wasted_spend() {
    for kind in [FaultKind::Truncate, FaultKind::Corrupt] {
        let w = tiny_workload();
        let market = build_market(&w);
        // The very first market call is billed then fails; no retries, so
        // the failure is final and its billed pages are pure waste.
        market.attach_fault_injector(FaultInjector::new(FaultPlan::none().at(0, kind)));
        let hub = Arc::new(MetricsHub::new(MetricsConfig::default()));
        let cfg = ServeConfig {
            threads: 1,
            batch: Some(BatchConfig::default()),
            retry: RetryPolicy::no_retries(),
            metrics: Some(hub.clone()),
            ..ServeConfig::default()
        };
        let serve = Serve::new(market, QueryWorkload::local_tables(&w), cfg);
        let templates: Vec<_> = QueryWorkload::templates(&w)
            .iter()
            .map(|sql| serve.prepare(sql).expect("workload templates parse"))
            .collect();
        let item = &overlapping_mix(&w, &TEMPLATES, 1, 1, 48879)[0];

        let err = serve
            .run_query(&templates[item.template], &item.params)
            .expect_err("a billed-and-failed batch call must fail the query");
        let billed = serve.market().bill().transactions();
        assert!(billed > 0, "the {kind:?} fault was billed before failing");
        assert_eq!(
            hub.batch_wasted_share_pages.get(),
            billed,
            "{kind:?}: wasted shares across the batch must sum to the meter"
        );
        let msg = err.to_string();
        assert!(
            msg.contains("truncated") || msg.contains("corrupt"),
            "the member share must carry the original market error, got: {msg}"
        );
    }
}

/// Billed faults that *are* recovered on retry: the first several market
/// calls come back truncated, the retries re-buy them, so the batch carries
/// genuinely wasted pages that split across members and still reconcile —
/// `run_mix` asserts the meter identity and the strict watchdog internally.
#[test]
fn retried_batch_waste_splits_and_reconciles() {
    let w = tiny_workload();
    let market = build_market(&w);
    // Truncate the first eight call indices: a truncated call that billed
    // zero pages is a no-op, so spanning several indices guarantees at
    // least one lands on a billable purchase regardless of which early
    // calls the mix makes.
    let mut plan = FaultPlan::none();
    for i in 0..8 {
        plan = plan.at(i, FaultKind::Truncate);
    }
    market.attach_fault_injector(FaultInjector::new(plan));
    let cfg = ServeConfig {
        threads: 2,
        batch: Some(BatchConfig::default()),
        retry: RetryPolicy::unlimited(),
        metrics: Some(Arc::new(MetricsHub::new(MetricsConfig::default()))),
        strict_reconcile: true,
        ..ServeConfig::default()
    };
    let serve = Serve::new(market, QueryWorkload::local_tables(&w), cfg);
    let templates: Vec<_> = QueryWorkload::templates(&w)
        .iter()
        .map(|sql| serve.prepare(sql).expect("workload templates parse"))
        .collect();
    let mix = overlapping_mix(&w, &TEMPLATES, 2, 6, 48879);
    let report = run_mix(&serve, &mix, &templates).expect("serve mix succeeds");
    assert!(report.batch_joins > 0);
    assert!(
        report.wasted_pages > 0,
        "the truncated first call was billed, so its pages are pure waste"
    );
    assert_eq!(
        report.total_pages,
        report.per_query.iter().map(|q| q.pages).sum::<u64>(),
        "report totals must equal the per-query ledger sums"
    );
}

mod random_schedules {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random seeded K-client overlapping schedules, batched at random
        /// thread counts, clean and under chaos: answers equal the serial
        /// unbatched oracle, batched delivered spend never exceeds it, and
        /// Σ ledger == meter with the strict watchdog on (asserted inside
        /// `run` on every replay).
        #[test]
        fn any_batched_schedule_matches_its_unbatched_oracle(seed in any::<u64>()) {
            let w = tiny_workload();
            let clients = 2 + (seed % 3) as usize; // 2..=4
            let threads = 1 + ((seed >> 2) % 4) as usize; // 1..=4
            let per_client = 3 + (seed % 4) as usize; // 3..=6
            let fault_seed = (seed & 2 == 0).then_some(seed ^ 0xc0ffee);
            let mix = overlapping_mix(&w, &TEMPLATES, clients, per_client, seed);

            let oracle = run(&w, &mix, 1, None, None);
            let batched = run(&w, &mix, threads, Some(BatchConfig::default()), fault_seed);

            prop_assert_eq!(batched.per_query.len(), oracle.per_query.len());
            for (b, s) in batched.per_query.iter().zip(&oracle.per_query) {
                prop_assert_eq!(b.digest, s.digest);
                prop_assert_eq!(b.rows, s.rows);
            }
            prop_assert!(
                batched.delivered_pages() <= oracle.delivered_pages(),
                "batched delivered pages {} exceed the unbatched oracle {} \
                 (seed {seed}, clients {clients}, threads {threads}, \
                 per_client {per_client}, fault {fault_seed:?})",
                batched.delivered_pages(),
                oracle.delivered_pages()
            );
            for q in &batched.per_query {
                prop_assert!(q.shared_pages <= q.pages);
                prop_assert!(q.batch_joins > 0 || q.shared_pages == 0);
            }
        }
    }
}
