//! Metrics + reconciliation-watchdog suite: a seeded serve mix runs with a
//! live [`payless_metrics::MetricsHub`] attached, clean and under injected
//! chaos, and the continuous watchdog must observe **zero drift** between
//! the sum of per-query spend ledgers and the market billing meter.
//!
//! Invariants checked throughout (`page_size = 1`, so delivered pages equal
//! delivered records — see DESIGN.md "Live metrics & the reconciliation
//! watchdog"):
//!
//! * the watchdog samples mid-run (`watchdog_samples > 0`) and never
//!   observes attributed spend ahead of the meter, clean or faulted —
//!   strict mode would abort the mix otherwise;
//! * at quiescence the cumulative `payless_market_pages_billed_total`
//!   counter equals the billing meter's transaction delta exactly;
//! * per-query wall-clock latencies surface as non-zero row timings and
//!   monotone per-client percentiles;
//! * the registry stays exact under concurrent hammering from many
//!   threads (no lost increments, histogram count == total records).

use std::sync::Arc;

use payless_exec::RetryPolicy;
use payless_market::{DataMarket, Dataset, FaultInjector, FaultKind, FaultPlan};
use payless_metrics::{MetricsConfig, MetricsHub, Registry};
use payless_serve::{run_mix, Serve, ServeConfig, ServeReport};
use payless_workload::{serve_mix, MixItem, QueryWorkload, RealWorkload, WhwConfig};

/// Single-table WHW templates only: at `page_size = 1` their delivered
/// pages are interleaving-independent (same rationale as the concurrency
/// suite).
const TEMPLATES: [usize; 2] = [0, 1];

const CHAOS_SEED: u64 = 48879;

fn tiny_workload() -> RealWorkload {
    RealWorkload::generate(&WhwConfig {
        stations: 24,
        countries: 4,
        cities_per_country: 3,
        days: 20,
        zips: 40,
        ranks: 100,
        seed: 3,
    })
}

fn build_market(w: &RealWorkload) -> Arc<DataMarket> {
    let mut dataset = Dataset::new("market").with_page_size(1);
    for t in QueryWorkload::market_tables(w) {
        dataset = dataset.with_table(t.clone());
    }
    Arc::new(DataMarket::new(vec![dataset]))
}

/// Replay `mix` with a fresh hub attached, the watchdog sampling every
/// `every` completions, and strict reconciliation on (any mid-run
/// over-attribution aborts the whole mix instead of passing silently).
fn run_with_hub(
    w: &RealWorkload,
    mix: &[MixItem],
    threads: usize,
    every: u64,
    faults: Option<FaultPlan>,
) -> (ServeReport, Arc<MetricsHub>, u64) {
    let market = build_market(w);
    let faulted = faults.is_some();
    if let Some(plan) = faults {
        market.attach_fault_injector(FaultInjector::new(plan));
    }
    let hub = Arc::new(MetricsHub::new(MetricsConfig::default()));
    let cfg = ServeConfig {
        threads,
        coalesce: true,
        retry: if faulted {
            RetryPolicy::unlimited()
        } else {
            RetryPolicy::default()
        },
        metrics: Some(Arc::clone(&hub)),
        watchdog_every: every,
        strict_reconcile: true,
        ..ServeConfig::default()
    };
    let meter_before = market.bill().transactions();
    let serve = Serve::new(Arc::clone(&market), QueryWorkload::local_tables(w), cfg);
    let templates: Vec<_> = QueryWorkload::templates(w)
        .iter()
        .map(|sql| serve.prepare(sql).expect("workload templates parse"))
        .collect();
    let report =
        run_mix(&serve, mix, &templates).expect("serve mix succeeds under strict watchdog");
    let meter_delta = market.bill().transactions() - meter_before;
    (report, hub, meter_delta)
}

/// Every hub-level invariant that must hold at quiescence, regardless of
/// thread count or injected faults.
fn assert_hub_reconciles(report: &ServeReport, hub: &MetricsHub, meter_delta: u64) {
    let cum = hub.cumulative();
    assert_eq!(
        cum.counter("payless_market_pages_billed_total"),
        meter_delta,
        "cumulative billed-pages counter must equal the meter's transaction delta"
    );
    assert_eq!(
        cum.counter("payless_serve_queries_total"),
        report.queries,
        "every query in the mix must be counted"
    );
    assert_eq!(
        cum.counter("payless_watchdog_violations_total"),
        0,
        "the watchdog must never observe attributed spend ahead of the meter"
    );
    assert!(
        report.watchdog_samples > 0,
        "the watchdog must sample mid-run, not only at the end"
    );
    assert_eq!(
        cum.counter("payless_watchdog_samples_total"),
        report.watchdog_samples
    );
    assert_eq!(
        cum.gauge("payless_watchdog_drift_pages"),
        0,
        "drift must return to zero at quiescence"
    );
    let lat = cum
        .histogram("payless_serve_query_nanos")
        .expect("per-query latency histogram exists");
    assert_eq!(lat.count, report.queries, "one latency sample per query");
}

/// Row timings and per-client percentiles: every query carries a non-zero
/// wall clock, and p50 <= p95 <= p99 per client.
fn assert_latencies(report: &ServeReport) {
    for (i, q) in report.per_query.iter().enumerate() {
        assert!(q.wall_nanos > 0, "query {i} has no wall-clock timing");
    }
    for c in &report.per_client {
        assert!(
            c.p50_nanos <= c.p95_nanos && c.p95_nanos <= c.p99_nanos,
            "client {}: percentiles not monotone ({} / {} / {})",
            c.client,
            c.p50_nanos,
            c.p95_nanos,
            c.p99_nanos
        );
        assert!(c.queries == 0 || c.p50_nanos > 0);
    }
}

#[test]
fn clean_serial_mix_reconciles_with_zero_drift() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 4, 18, CHAOS_SEED);
    let (report, hub, meter_delta) = run_with_hub(&w, &mix, 1, 4, None);

    assert_hub_reconciles(&report, &hub, meter_delta);
    assert_latencies(&report);
    // One thread means no in-flight spend at any sample point, so the
    // watchdog's running maximum is zero too, not merely the final gauge.
    assert_eq!(
        report.watchdog_max_drift_pages, 0,
        "serial runs can never have in-flight spend at a sample"
    );
}

#[test]
fn clean_parallel_mix_reconciles_with_zero_final_drift() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 4, 18, 7);
    let (report, hub, meter_delta) = run_with_hub(&w, &mix, 4, 2, None);
    assert_hub_reconciles(&report, &hub, meter_delta);
    assert_latencies(&report);
}

#[test]
fn chaos_serial_mix_keeps_the_watchdog_clean() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 4, 16, CHAOS_SEED);
    // Chaos alone may roll no faults on a mix this small, so pin one
    // guaranteed outage onto the first market call: at least one retry is
    // then certain, and its accounting must stay visible and reconciled.
    let plan = FaultPlan::chaos(CHAOS_SEED).at(0, FaultKind::Unavailable);
    let (report, hub, meter_delta) = run_with_hub(&w, &mix, 1, 3, Some(plan));

    assert_hub_reconciles(&report, &hub, meter_delta);
    assert_eq!(report.watchdog_max_drift_pages, 0);
    // The pinned outage forces a retry; the call layer must report it.
    let cum = hub.cumulative();
    assert!(
        cum.counter("payless_market_retries_total") > 0,
        "a pinned Unavailable fault must surface as a counted retry"
    );
    assert_eq!(
        cum.counter("payless_market_pages_wasted_total"),
        report.wasted_pages,
        "wasted-page counter must match the report"
    );
}

#[test]
fn chaos_parallel_mix_keeps_the_watchdog_clean() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 4, 16, CHAOS_SEED);
    let plan = FaultPlan::chaos(CHAOS_SEED).at(0, FaultKind::Unavailable);
    let (report, hub, meter_delta) = run_with_hub(&w, &mix, 4, 3, Some(plan));
    assert_hub_reconciles(&report, &hub, meter_delta);
    assert_latencies(&report);
}

#[test]
fn windowed_series_deltas_sum_to_the_cumulative_counters() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 3, 15, 11);
    let (report, hub, meter_delta) = run_with_hub(&w, &mix, 2, 4, None);
    hub.roll();

    let windows = hub.windows();
    assert!(
        !windows.is_empty(),
        "rolling must close at least one window"
    );
    for (i, win) in windows.iter().enumerate() {
        assert_eq!(win.index, i as u64, "window indexes must be sequential");
    }
    let billed: u64 = windows
        .iter()
        .map(|w| w.counter("payless_market_pages_billed_total"))
        .sum();
    assert_eq!(
        billed, meter_delta,
        "per-window billed-page deltas must sum to the cumulative meter delta"
    );
    let queries: u64 = windows
        .iter()
        .map(|w| w.counter("payless_serve_queries_total"))
        .sum();
    assert_eq!(queries, report.queries);
    assert_eq!(
        hub.dropped_windows(),
        0,
        "ring must not evict this few windows"
    );
}

#[test]
fn registry_is_exact_under_concurrent_hammering() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;

    let reg = Registry::default();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let reg = &reg;
            s.spawn(move || {
                // Interleave first-touch registration with increments: every
                // thread resolves the same names, so lost registrations or
                // increments show up as a total mismatch below.
                let c = reg.counter("hammer_total");
                let g = reg.gauge("hammer_last");
                let h = reg.histogram("hammer_nanos");
                for i in 0..PER_THREAD {
                    c.inc(1);
                    g.set(t as u64);
                    h.record(i % 1024);
                }
            });
        }
    });

    let snap = reg.snapshot();
    assert_eq!(snap.counter("hammer_total"), THREADS as u64 * PER_THREAD);
    assert!(snap.gauge("hammer_last") < THREADS as u64);
    let h = snap
        .histogram("hammer_nanos")
        .expect("histogram registered");
    assert_eq!(
        h.count,
        THREADS as u64 * PER_THREAD,
        "no lost histogram samples"
    );
}

#[test]
fn hub_counters_are_exact_under_concurrent_hammering() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 25_000;

    let hub = MetricsHub::new(MetricsConfig::default());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let hub = &hub;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    hub.market_calls.inc(1);
                    hub.market_call_nanos.record(i + 1);
                }
            });
        }
    });
    let cum = hub.cumulative();
    let expect = THREADS as u64 * PER_THREAD;
    assert_eq!(cum.counter("payless_market_calls_total"), expect);
    let h = cum
        .histogram("payless_market_call_nanos")
        .expect("pre-registered histogram");
    assert_eq!(h.count, expect);
    // The exposition must agree with the snapshot it was rendered from.
    let expo = hub.exposition();
    assert!(expo.contains(&format!("payless_market_calls_total {expect}")));
}
