//! Concurrency suite for the serving layer: K client sessions replaying a
//! seeded mix over one shared semantic store, with and without single-flight
//! call coalescing, clean and under injected chaos.
//!
//! Invariants checked throughout (the market runs at `page_size = 1`, where
//! delivered pages equal delivered records and are therefore independent of
//! thread interleaving — see DESIGN.md "Concurrent serving & call
//! coalescing"):
//!
//! * every run returns the same answers as the single-threaded serial
//!   replay of the same mix (per-query digests, compared elementwise in
//!   global submission order);
//! * with coalescing on, a parallel run never buys a delivered page the
//!   serial replay did not — a coalesced region is billed at most once;
//! * the sum of the per-query synthesized spend ledgers reconciles exactly
//!   with the market's billing meter ([`payless_serve::run_mix`] asserts
//!   this internally on every run, clean and faulted);
//! * `coalesce.saved_pages` is only ever credited to queries that actually
//!   waited on another query's flight.

use std::sync::Arc;

use payless_exec::RetryPolicy;
use payless_market::{DataMarket, Dataset, FaultInjector, FaultPlan};
use payless_serve::{run_mix, Serve, ServeConfig, ServeReport};
use payless_workload::{serve_mix, MixItem, QueryWorkload, RealWorkload, WhwConfig};

/// Both single-table WHW templates: Weather country + date range, and the
/// Pollution rank count. Bind-join templates are excluded on purpose — at
/// `page_size = 1` these two make delivered pages interleaving-independent.
const TEMPLATES: [usize; 2] = [0, 1];

fn tiny_workload() -> RealWorkload {
    RealWorkload::generate(&WhwConfig {
        stations: 24,
        countries: 4,
        cities_per_country: 3,
        days: 20,
        zips: 40,
        ranks: 100,
        seed: 3,
    })
}

/// A fresh market at page size 1 (pages == records for every delivery).
fn build_market(w: &RealWorkload) -> Arc<DataMarket> {
    let mut dataset = Dataset::new("market").with_page_size(1);
    for t in QueryWorkload::market_tables(w) {
        dataset = dataset.with_table(t.clone());
    }
    Arc::new(DataMarket::new(vec![dataset]))
}

/// Replay `mix` on a fresh serving layer. Fault-injected runs retry without
/// limit so every query answers and stays comparable to the clean oracle.
fn run(
    w: &RealWorkload,
    mix: &[MixItem],
    threads: usize,
    coalesce: bool,
    fault_seed: Option<u64>,
) -> ServeReport {
    let market = build_market(w);
    if let Some(seed) = fault_seed {
        market.attach_fault_injector(FaultInjector::new(FaultPlan::chaos(seed)));
    }
    let cfg = ServeConfig {
        threads,
        coalesce,
        retry: if fault_seed.is_some() {
            RetryPolicy::unlimited()
        } else {
            RetryPolicy::default()
        },
        ..ServeConfig::default()
    };
    let serve = Serve::new(market, QueryWorkload::local_tables(w), cfg);
    let templates: Vec<_> = QueryWorkload::templates(w)
        .iter()
        .map(|sql| serve.prepare(sql).expect("workload templates parse"))
        .collect();
    run_mix(&serve, mix, &templates).expect("serve mix succeeds")
}

/// Answers must match the serial oracle elementwise; structural fields of
/// each row (client, template) must too, since submission order is shared.
fn assert_same_answers(run: &ServeReport, oracle: &ServeReport) {
    assert_eq!(run.per_query.len(), oracle.per_query.len());
    for (i, (p, s)) in run.per_query.iter().zip(&oracle.per_query).enumerate() {
        assert_eq!(p.client, s.client, "query {i}: client mismatch");
        assert_eq!(p.template, s.template, "query {i}: template mismatch");
        assert_eq!(
            p.digest, s.digest,
            "query {i}: result digest diverged from the serial oracle"
        );
        assert_eq!(p.rows, s.rows, "query {i}: row count mismatch");
    }
    assert_eq!(run.total_rows, oracle.total_rows);
}

/// Savings are estimates credited at wait time — a query that never waited
/// must never report them.
fn assert_savings_imply_waits(report: &ServeReport) {
    for (i, q) in report.per_query.iter().enumerate() {
        assert!(
            q.coalesce_waits > 0 || q.saved_pages == 0,
            "query {i} reports saved pages without ever waiting"
        );
    }
}

#[test]
fn parallel_run_matches_serial_oracle() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 4, 18, 48879);
    let serial = run(&w, &mix, 1, true, None);
    let parallel = run(&w, &mix, 4, true, None);

    assert_eq!(serial.coalesce_waits, 0, "one thread can never contend");
    assert_same_answers(&parallel, &serial);
    assert!(
        parallel.delivered_pages() <= serial.delivered_pages(),
        "coalescing must never deliver (and bill) more pages than the \
         serial replay: parallel {} > serial {}",
        parallel.delivered_pages(),
        serial.delivered_pages()
    );
    assert_savings_imply_waits(&parallel);
    // Clean runs waste nothing, so total pages obey the same bound.
    assert_eq!(parallel.wasted_pages, 0);
    assert_eq!(serial.wasted_pages, 0);
}

#[test]
fn coalescing_off_still_matches_answers_and_reconciles() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 3, 15, 7);
    let serial = run(&w, &mix, 1, true, None);
    // Without single flight, concurrent overlapping purchases may double-buy
    // (that is the waste coalescing removes) — but answers must still match
    // and each run's ledger still reconciles with its own meter (asserted
    // inside `run_mix`).
    let parallel = run(&w, &mix, 4, false, None);
    assert_same_answers(&parallel, &serial);
    assert_eq!(parallel.coalesce_waits, 0, "coalescing was off");
    assert_eq!(parallel.saved_pages, 0, "coalescing was off");
}

#[test]
fn identical_queries_bill_a_coalesced_region_at_most_once() {
    let w = tiny_workload();
    // Eight copies of one instance across four clients: the sharpest
    // double-billing probe. Serial: first query buys, seven store hits.
    let base = serve_mix(&w, &TEMPLATES, 1, 1, 5).remove(0);
    let mix: Vec<MixItem> = (0..8)
        .map(|i| MixItem {
            client: i % 4,
            ..base.clone()
        })
        .collect();
    let serial = run(&w, &mix, 1, true, None);
    let parallel = run(&w, &mix, 4, true, None);

    assert_same_answers(&parallel, &serial);
    // Whether a concurrent twin waits on the flight or classifies a store
    // hit after it lands, the region is bought exactly once either way.
    assert_eq!(
        parallel.delivered_pages(),
        serial.delivered_pages(),
        "an identical concurrent query must never re-buy the coalesced region"
    );
    assert_savings_imply_waits(&parallel);
}

#[test]
fn chaos_runs_match_the_clean_serial_oracle() {
    let w = tiny_workload();
    let mix = serve_mix(&w, &TEMPLATES, 4, 16, 48879);
    let clean_serial = run(&w, &mix, 1, true, None);

    // Faulted serial replay: with unlimited retries the answers and the
    // *delivered* spend are identical to the clean run; only wasted pages
    // (retried calls) differ, and those reconcile via the meter assert.
    let faulted_serial = run(&w, &mix, 1, true, Some(48879));
    assert_same_answers(&faulted_serial, &clean_serial);
    assert_eq!(
        faulted_serial.delivered_pages(),
        clean_serial.delivered_pages(),
        "retries re-buy the identical request, so delivered spend is unchanged"
    );

    // Faulted parallel replay: answers still match, delivered spend is
    // still bounded by the serial oracle. Wasted pages depend on where
    // faults land in this interleaving, so only their reconciliation (not
    // their count) is asserted — inside `run_mix`.
    let faulted_parallel = run(&w, &mix, 4, true, Some(48879));
    assert_same_answers(&faulted_parallel, &clean_serial);
    assert!(
        faulted_parallel.delivered_pages() <= clean_serial.delivered_pages(),
        "chaos must not defeat single-flight: delivered {} > serial {}",
        faulted_parallel.delivered_pages(),
        clean_serial.delivered_pages()
    );
    assert_savings_imply_waits(&faulted_parallel);
}

mod random_schedules {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random seeded schedules of K concurrent clients — with and
        /// without coalescing, with and without injected chaos — never
        /// double-bill a coalesced region, keep Σ ledger == meter delta
        /// (asserted inside `run_mix` on every run), and return answers
        /// equal to the serial oracle.
        #[test]
        fn any_schedule_matches_its_serial_oracle(seed in any::<u64>()) {
            let w = tiny_workload();
            let clients = 2 + (seed % 3) as usize; // 2..=4
            let threads = 2 + ((seed >> 2) % 3) as usize; // 2..=4
            let coalesce = seed & 1 == 0;
            let fault_seed = (seed & 2 == 0).then_some(seed ^ 0xc0ffee);
            let queries = 9 + (seed % 7) as usize; // 9..=15
            let mix = serve_mix(&w, &TEMPLATES, clients, queries, seed);

            let oracle = run(&w, &mix, 1, true, None);
            let parallel = run(&w, &mix, threads, coalesce, fault_seed);

            prop_assert_eq!(parallel.per_query.len(), oracle.per_query.len());
            for (p, s) in parallel.per_query.iter().zip(&oracle.per_query) {
                prop_assert_eq!(p.digest, s.digest);
                prop_assert_eq!(p.rows, s.rows);
            }
            if coalesce {
                prop_assert!(
                    parallel.delivered_pages() <= oracle.delivered_pages(),
                    "coalesced delivered pages {} exceed serial {} \
                     (seed {seed}, clients {clients}, threads {threads}, \
                     queries {queries}, fault {fault_seed:?})",
                    parallel.delivered_pages(),
                    oracle.delivered_pages()
                );
            } else {
                prop_assert_eq!(parallel.coalesce_waits, 0);
            }
            for q in &parallel.per_query {
                prop_assert!(q.coalesce_waits > 0 || q.saved_pages == 0);
            }
        }
    }
}
