//! Durability suite for the server's snapshot + append-log pair.
//!
//! The central property: **any byte-prefix truncation** of the write-ahead
//! log — a crash can tear the tail anywhere, not just on a frame boundary —
//! recovers to a store whose summed ledger reconciles with the recorded
//! absolute meter, covering exactly the purchases whose frames survived.
//! The same holds frame-wise for the mirror log that carries the purchased
//! rows. A third test replays the nastiest snapshot crash window (renamed
//! snapshot, logs not yet truncated) and proves nothing is counted or
//! inserted twice.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use payless_geometry::{Interval, QuerySpace, Region};
use payless_semantic::{Consistency, SemanticStore, SharedSemanticStore};
use payless_server::persist::{scan_frames, DurableStore, PersistConfig};
use payless_types::{row, Column, Domain, Row, Schema};

fn space() -> QuerySpace {
    QuerySpace::of(&Schema::new(
        "T",
        vec![Column::free("A", Domain::int(0, 9_999))],
    ))
}

/// The i-th purchase region; all disjoint, so coverage checks are exact.
fn r(i: usize) -> Region {
    let lo = 10 * i as i64;
    Region::new(vec![Interval::new(lo, lo + 9)])
}

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A per-case scratch directory (proptest cases within one process must
/// not share log files).
fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "payless-durability-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn no_snapshots() -> PersistConfig {
    PersistConfig {
        snapshot_every: 0,
        ..PersistConfig::default()
    }
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Chop the WAL at an arbitrary byte and recover: the store must
        /// reconcile, replay exactly the fully-framed prefix, and cover
        /// exactly those purchases — never a region whose record was lost.
        #[test]
        fn any_wal_prefix_truncation_recovers_reconciling(
            appends in 1usize..10,
            frac in 0.0f64..1.0,
        ) {
            let dir = tmpdir("wal-prefix");
            let cfg = no_snapshots();
            let mut spends = Vec::new();
            {
                let (durable, _, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
                for i in 0..appends {
                    let spend = (i as u64 % 7) + 1;
                    spends.push(spend);
                    durable.append("T", &r(i), i as u64 + 1, spend);
                }
            }
            let path = dir.join("wal.log");
            let bytes = std::fs::read(&path).unwrap();
            let cut = (bytes.len() as f64 * frac) as usize;
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let surviving = scan_frames(&bytes[..cut]).0.len();

            let (durable, store, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
            let status = durable.status();
            prop_assert!(status.reconciles());
            prop_assert_eq!(status.recovery.replayed, surviving as u64);
            let expected: u64 = spends[..surviving].iter().sum();
            let total: u64 = status.tables.iter().map(|t| t.ledger_pages).sum();
            prop_assert_eq!(total, expected);
            let now = appends as u64 + 1;
            for i in 0..appends {
                prop_assert_eq!(
                    store.covers("T", &r(i), Consistency::Weak, now),
                    i < surviving,
                    "purchase {} vs truncation at byte {}",
                    i,
                    cut
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// Same property for the mirror log: recovery yields exactly the
        /// rows of the fully-framed prefix, in append order.
        #[test]
        fn any_mirror_prefix_truncation_recovers_surviving_frames(
            frames in 1usize..8,
            frac in 0.0f64..1.0,
        ) {
            let dir = tmpdir("mirror-prefix");
            let cfg = no_snapshots();
            let frame_rows: Vec<Vec<Row>> = (0..frames)
                .map(|i| vec![row!(10 * i as i64), row!(10 * i as i64 + 1)])
                .collect();
            {
                let (durable, _, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
                for rows in &frame_rows {
                    durable.append_rows("T", rows);
                }
            }
            let path = dir.join("mirror.log");
            let bytes = std::fs::read(&path).unwrap();
            let cut = (bytes.len() as f64 * frac) as usize;
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let surviving = scan_frames(&bytes[..cut]).0.len();

            let (durable, _, recovered) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
            let expected: Vec<Row> = frame_rows[..surviving].concat();
            let got: Vec<Row> = recovered.into_iter().flat_map(|(_, rows)| rows).collect();
            prop_assert_eq!(got, expected);
            prop_assert_eq!(durable.recovery().mirror_rows, 2 * surviving as u64);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// The crash window between the snapshot's atomic rename and the log
/// truncations leaves both logs full of records the snapshot already
/// covers. Recovery must skip every one of them: the ledger is not
/// doubled, no WAL record replays, and the mirror dedupe drops the
/// leftover row frames.
#[test]
fn snapshot_crash_window_counts_nothing_twice() {
    let dir = tmpdir("crash-window");
    let cfg = no_snapshots();
    let mirror_frame = vec![row!(1), row!(2)];
    let (wal_bytes, mirror_bytes) = {
        let (durable, _, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
        let durable = Arc::new(durable);
        let mut base = SemanticStore::new();
        base.register(space());
        let shared = SharedSemanticStore::new(base);
        durable.attach(&shared);
        shared.record_spend("T", r(0), 1, 5);
        shared.record_spend("T", r(1), 2, 7);
        durable.append_rows("T", &mirror_frame);
        let wal_bytes = std::fs::read(dir.join("wal.log")).unwrap();
        let mirror_bytes = std::fs::read(dir.join("mirror.log")).unwrap();
        let dump = vec![("T".to_string(), mirror_frame.clone())];
        durable.snapshot(&shared, &|| dump.clone()).unwrap();
        (wal_bytes, mirror_bytes)
    };
    // Re-materialize the pre-snapshot logs, as if the process died after
    // the rename with the truncations still pending.
    std::fs::write(dir.join("wal.log"), &wal_bytes).unwrap();
    std::fs::write(dir.join("mirror.log"), &mirror_bytes).unwrap();

    let (durable, store, recovered) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
    let status = durable.status();
    assert!(status.reconciles());
    assert_eq!(
        status.recovery.replayed, 0,
        "stale WAL records must be skipped"
    );
    assert_eq!(status.tables.len(), 1);
    assert_eq!(status.tables[0].ledger_pages, 12, "5 + 7, not doubled");
    assert_eq!(
        recovered,
        vec![("T".to_string(), mirror_frame)],
        "leftover mirror frame deduped against the snapshot"
    );
    assert!(store.covers("T", &r(0), Consistency::Weak, 3));
    assert!(store.covers("T", &r(1), Consistency::Weak, 3));
    let _ = std::fs::remove_dir_all(&dir);
}
