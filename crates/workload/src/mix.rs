//! Seeded multi-client query mixes for the serving layer.
//!
//! A serve mix is a deterministic function of `(workload, templates,
//! clients, queries, seed)`: the same inputs yield the same schedule on
//! every machine and at every thread count, which is what lets the CI
//! serve-smoke compare a parallel run against its serial replay.
//!
//! Parameters are drawn from a deliberately small pool and reused across
//! items — repetition is what makes sharing (and thus call coalescing)
//! possible, mirroring the hot-query skew of real serving workloads.

use payless_types::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::QueryWorkload;

/// One query of a serve mix: which client issues it, and what it asks.
#[derive(Debug, Clone)]
pub struct MixItem {
    /// Client session the query belongs to (`0..clients`).
    pub client: usize,
    /// Template index into [`QueryWorkload::templates`].
    pub template: usize,
    /// Parameter values for the template's placeholders.
    pub params: Vec<Value>,
}

/// Build a deterministic serve mix: `queries` items assigned round-robin
/// to `clients`, each drawn from a small seeded pool of instances of the
/// given `templates` (indexes into [`QueryWorkload::templates`]).
///
/// Items are in global submission order; a serial replay processes them
/// `0..queries`, and a K-threaded run pulls them from the same queue.
pub fn serve_mix(
    workload: &dyn QueryWorkload,
    templates: &[usize],
    clients: usize,
    queries: usize,
    seed: u64,
) -> Vec<MixItem> {
    assert!(
        !templates.is_empty(),
        "serve mix needs at least one template"
    );
    assert!(clients > 0, "serve mix needs at least one client");
    let mut rng = StdRng::seed_from_u64(seed);
    // Roughly one distinct instance per three queries: enough variety to
    // exercise the store, enough repetition to make purchases shareable.
    let pool_size = (queries / 3).max(1);
    let pool: Vec<(usize, Vec<Value>)> = (0..pool_size)
        .map(|i| {
            let t = templates[i % templates.len()];
            (t, workload.sample_params(t, &mut rng))
        })
        .collect();
    (0..queries)
        .map(|i| {
            let (template, params) = pool[rng.random_range(0..pool.len())].clone();
            MixItem {
                client: i % clients,
                template,
                params,
            }
        })
        .collect()
}

/// Build a mix whose clients hammer one shared hot pool — the shape that
/// rewards batched cross-query purchasing.
///
/// Unlike [`serve_mix`], the schedule is parameterised by queries *per
/// client*, and two properties hold by construction:
///
/// * the hot pool is drawn from the seed alone, and client `c`'s stream
///   depends only on `(seed, c)` — so raising the client count *adds*
///   streams without changing existing ones;
/// * every client draws from the same pool, so the union of regions the
///   mix touches saturates while total queries grow linearly with the
///   client count. Spend per query therefore falls as clients are added —
///   the curve `BENCH_batch.json` pins.
///
/// Items are round-robin interleaved into global submission order, so
/// neighbouring queries belong to different clients and a batching window
/// sees cross-client remainders together.
pub fn overlapping_mix(
    workload: &dyn QueryWorkload,
    templates: &[usize],
    clients: usize,
    per_client: usize,
    seed: u64,
) -> Vec<MixItem> {
    assert!(
        !templates.is_empty(),
        "overlapping mix needs at least one template"
    );
    assert!(clients > 0, "overlapping mix needs at least one client");
    assert!(per_client > 0, "overlapping mix needs queries per client");
    // One pool slot per query a single client issues: a lone client
    // already revisits instances, and every added client mostly re-treads
    // pool entries some other client has paid for.
    let mut pool_rng = StdRng::seed_from_u64(seed);
    let pool: Vec<(usize, Vec<Value>)> = (0..per_client)
        .map(|i| {
            let t = templates[i % templates.len()];
            (t, workload.sample_params(t, &mut pool_rng))
        })
        .collect();
    let streams: Vec<Vec<MixItem>> = (0..clients)
        .map(|c| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64 + 1));
            (0..per_client)
                .map(|_| {
                    let (template, params) = pool[rng.random_range(0..pool.len())].clone();
                    MixItem {
                        client: c,
                        template,
                        params,
                    }
                })
                .collect()
        })
        .collect();
    (0..clients * per_client)
        .map(|i| streams[i % clients][i / clients].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RealWorkload, WhwConfig};

    fn tiny() -> RealWorkload {
        RealWorkload::generate(&WhwConfig {
            stations: 40,
            countries: 4,
            cities_per_country: 3,
            days: 60,
            zips: 60,
            ranks: 100,
            seed: 3,
        })
    }

    #[test]
    fn mix_is_deterministic_and_round_robin() {
        let w = tiny();
        let a = serve_mix(&w, &[0, 1], 4, 24, 48879);
        let b = serve_mix(&w, &[0, 1], 4, 24, 48879);
        assert_eq!(a.len(), 24);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.template, y.template);
            assert_eq!(x.params, y.params);
        }
        for (i, item) in a.iter().enumerate() {
            assert_eq!(item.client, i % 4);
        }
    }

    #[test]
    fn mix_repeats_instances() {
        let w = tiny();
        let mix = serve_mix(&w, &[0], 2, 30, 7);
        let mut distinct: Vec<&Vec<Value>> = Vec::new();
        for item in &mix {
            if !distinct.iter().any(|p| **p == item.params) {
                distinct.push(&item.params);
            }
        }
        assert!(
            distinct.len() < mix.len(),
            "a serve mix must repeat instances so purchases can be shared"
        );
    }

    #[test]
    fn overlapping_mix_streams_are_stable_across_client_counts() {
        let w = tiny();
        let small = overlapping_mix(&w, &[0, 1], 2, 12, 48879);
        let big = overlapping_mix(&w, &[0, 1], 8, 12, 48879);
        // Client 0 and 1 issue exactly the same queries (in the same
        // per-client order) whether 2 or 8 clients are running.
        for c in 0..2 {
            let from = |mix: &[MixItem]| -> Vec<(usize, Vec<Value>)> {
                mix.iter()
                    .filter(|m| m.client == c)
                    .map(|m| (m.template, m.params.clone()))
                    .collect()
            };
            assert_eq!(from(&small), from(&big), "client {c} stream changed");
        }
    }

    #[test]
    fn overlapping_mix_shares_instances_across_clients() {
        let w = tiny();
        let mix = overlapping_mix(&w, &[0, 1], 8, 12, 48879);
        assert_eq!(mix.len(), 96);
        for (i, item) in mix.iter().enumerate() {
            assert_eq!(item.client, i % 8, "round-robin interleave");
        }
        let mut distinct: Vec<(usize, &Vec<Value>)> = Vec::new();
        for item in &mix {
            if !distinct
                .iter()
                .any(|(t, p)| *t == item.template && **p == item.params)
            {
                distinct.push((item.template, &item.params));
            }
        }
        // The whole 8-client mix touches at most the pool (one slot per
        // per-client query) — purchases are overwhelmingly shareable.
        assert!(
            distinct.len() <= 12,
            "8 clients must draw from one shared hot pool, saw {} distinct",
            distinct.len()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let w = tiny();
        let a = serve_mix(&w, &[0, 1], 2, 16, 1);
        let b = serve_mix(&w, &[0, 1], 2, 16, 2);
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.params != y.params || x.template != y.template),
            "different seeds should produce different mixes"
        );
    }
}
