//! Seeded multi-client query mixes for the serving layer.
//!
//! A serve mix is a deterministic function of `(workload, templates,
//! clients, queries, seed)`: the same inputs yield the same schedule on
//! every machine and at every thread count, which is what lets the CI
//! serve-smoke compare a parallel run against its serial replay.
//!
//! Parameters are drawn from a deliberately small pool and reused across
//! items — repetition is what makes sharing (and thus call coalescing)
//! possible, mirroring the hot-query skew of real serving workloads.

use payless_types::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::QueryWorkload;

/// One query of a serve mix: which client issues it, and what it asks.
#[derive(Debug, Clone)]
pub struct MixItem {
    /// Client session the query belongs to (`0..clients`).
    pub client: usize,
    /// Template index into [`QueryWorkload::templates`].
    pub template: usize,
    /// Parameter values for the template's placeholders.
    pub params: Vec<Value>,
}

/// Build a deterministic serve mix: `queries` items assigned round-robin
/// to `clients`, each drawn from a small seeded pool of instances of the
/// given `templates` (indexes into [`QueryWorkload::templates`]).
///
/// Items are in global submission order; a serial replay processes them
/// `0..queries`, and a K-threaded run pulls them from the same queue.
pub fn serve_mix(
    workload: &dyn QueryWorkload,
    templates: &[usize],
    clients: usize,
    queries: usize,
    seed: u64,
) -> Vec<MixItem> {
    assert!(
        !templates.is_empty(),
        "serve mix needs at least one template"
    );
    assert!(clients > 0, "serve mix needs at least one client");
    let mut rng = StdRng::seed_from_u64(seed);
    // Roughly one distinct instance per three queries: enough variety to
    // exercise the store, enough repetition to make purchases shareable.
    let pool_size = (queries / 3).max(1);
    let pool: Vec<(usize, Vec<Value>)> = (0..pool_size)
        .map(|i| {
            let t = templates[i % templates.len()];
            (t, workload.sample_params(t, &mut rng))
        })
        .collect();
    (0..queries)
        .map(|i| {
            let (template, params) = pool[rng.random_range(0..pool.len())].clone();
            MixItem {
                client: i % clients,
                template,
                params,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RealWorkload, WhwConfig};

    fn tiny() -> RealWorkload {
        RealWorkload::generate(&WhwConfig {
            stations: 40,
            countries: 4,
            cities_per_country: 3,
            days: 60,
            zips: 60,
            ranks: 100,
            seed: 3,
        })
    }

    #[test]
    fn mix_is_deterministic_and_round_robin() {
        let w = tiny();
        let a = serve_mix(&w, &[0, 1], 4, 24, 48879);
        let b = serve_mix(&w, &[0, 1], 4, 24, 48879);
        assert_eq!(a.len(), 24);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.template, y.template);
            assert_eq!(x.params, y.params);
        }
        for (i, item) in a.iter().enumerate() {
            assert_eq!(item.client, i % 4);
        }
    }

    #[test]
    fn mix_repeats_instances() {
        let w = tiny();
        let mix = serve_mix(&w, &[0], 2, 30, 7);
        let mut distinct: Vec<&Vec<Value>> = Vec::new();
        for item in &mix {
            if !distinct.iter().any(|p| **p == item.params) {
                distinct.push(&item.params);
            }
        }
        assert!(
            distinct.len() < mix.len(),
            "a serve mix must repeat instances so purchases can be shared"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let w = tiny();
        let a = serve_mix(&w, &[0, 1], 2, 16, 1);
        let b = serve_mix(&w, &[0, 1], 2, 16, 2);
        assert!(
            a.iter()
                .zip(&b)
                .any(|(x, y)| x.params != y.params || x.template != y.template),
            "different seeds should produce different mixes"
        );
    }
}
