//! A finance workload (modeled on the Xignite-style quote resellers the
//! paper's market survey lists) whose access patterns include a **mandatory
//! bound attribute** — the case that motivates Theorem 1's bushy-tree
//! discussion and makes bind joins *required*, not just cheaper.
//!
//! * `Symbols(Sectorᶠ, Symbolᶠ)` — the instrument directory (market).
//! * `Quotes(Symbolᵇ, Dayᶠ, Price, Volume)` — daily quotes; `Symbol` is
//!   bound: every call must name a symbol (or symbol set via one call per
//!   value). The table cannot be fetched wholesale in one call, and any
//!   query that does not pin `Symbol` can only reach `Quotes` through a
//!   bind join.
//! * `Watchlist(Symbolᶠ)` — the buyer's local portfolio, the natural bind
//!   source (and a zero-price relation for Theorem 2).

use std::sync::Arc;

use payless_market::MarketTable;
use payless_storage::LocalTable;
use payless_types::{row, Column, Domain, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::QueryWorkload;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct FinanceConfig {
    /// Number of listed symbols.
    pub symbols: usize,
    /// Number of sectors.
    pub sectors: usize,
    /// Trading days of history (day indexes `1..=days`).
    pub days: i64,
    /// Size of the buyer's local watchlist.
    pub watchlist: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FinanceConfig {
    fn default() -> Self {
        FinanceConfig {
            symbols: 120,
            sectors: 10,
            days: 250,
            watchlist: 12,
            seed: 17,
        }
    }
}

/// The generated finance workload.
#[derive(Debug, Clone)]
pub struct Finance {
    market_tables: Vec<MarketTable>,
    local_tables: Vec<LocalTable>,
    templates: Vec<String>,
    symbols: Vec<Arc<str>>,
    sectors: Vec<Arc<str>>,
    days: i64,
}

impl Finance {
    /// Generate the workload.
    pub fn generate(cfg: &FinanceConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let symbols: Vec<Arc<str>> = (0..cfg.symbols)
            .map(|i| Arc::<str>::from(format!("SYM{i:04}")))
            .collect();
        let sectors: Vec<Arc<str>> = (0..cfg.sectors)
            .map(|i| Arc::<str>::from(format!("Sector{i}")))
            .collect();
        let symbol_domain = Domain::Categorical(symbols.clone().into());
        let sector_domain = Domain::Categorical(sectors.clone().into());

        let symbols_schema = Schema::new(
            "Symbols",
            vec![
                Column::free("Sector", sector_domain),
                Column::free("Symbol", symbol_domain.clone()),
            ],
        );
        let symbol_rows: Vec<Row> = symbols
            .iter()
            .enumerate()
            .map(|(i, s)| row!(sectors[i % cfg.sectors].clone(), s.clone()))
            .collect();

        // Quotes: Symbol is BOUND — the defining feature of this workload.
        let quotes_schema = Schema::new(
            "Quotes",
            vec![
                Column::bound("Symbol", symbol_domain.clone()),
                Column::free("Day", Domain::int(1, cfg.days)),
                Column::output("Price", Domain::int(1, 100_000)),
                Column::output("Volume", Domain::int(0, 10_000_000)),
            ],
        );
        let mut quote_rows = Vec::with_capacity(cfg.symbols * cfg.days as usize);
        for s in &symbols {
            let mut price: i64 = rng.random_range(500..50_000);
            for day in 1..=cfg.days {
                price = (price + rng.random_range(-200..220)).max(1);
                quote_rows.push(Row::new(vec![
                    Value::Str(s.clone()),
                    Value::int(day),
                    Value::int(price),
                    Value::int(rng.random_range(0..1_000_000)),
                ]));
            }
        }

        let watchlist_schema =
            Schema::new("Watchlist", vec![Column::free("Symbol", symbol_domain)]);
        let mut picks: Vec<usize> = (0..cfg.symbols).collect();
        for i in 0..cfg.watchlist.min(cfg.symbols) {
            let j = rng.random_range(i..cfg.symbols);
            picks.swap(i, j);
        }
        let watchlist_rows: Vec<Row> = picks[..cfg.watchlist.min(cfg.symbols)]
            .iter()
            .map(|&i| Row::new(vec![Value::Str(symbols[i].clone())]))
            .collect();

        let templates = vec![
            // F1: a pinned symbol over a window — a directly feasible fetch.
            "SELECT * FROM Quotes WHERE Symbol = ? AND Day >= ? AND Day <= ?".to_string(),
            // F2: sector average — Quotes reachable only via bind join from
            // Symbols.
            "SELECT AVG(Price) FROM Symbols, Quotes WHERE Sector = ? AND \
             Symbols.Symbol = Quotes.Symbol AND Day >= ? AND Day <= ? \
             GROUP BY Quotes.Symbol"
                .to_string(),
            // F3: portfolio high/low — the local watchlist drives the bind
            // join (zero-price relation joins first, Theorem 2).
            "SELECT Watchlist.Symbol, MAX(Price), MIN(Price) FROM Watchlist, Quotes \
             WHERE Watchlist.Symbol = Quotes.Symbol AND Day >= ? AND Day <= ? \
             GROUP BY Watchlist.Symbol"
                .to_string(),
            // F4: directory-only query (never touches the bound table).
            "SELECT COUNT(*) FROM Symbols WHERE Sector = ?".to_string(),
        ];

        Finance {
            market_tables: vec![
                MarketTable::new(symbols_schema, symbol_rows),
                MarketTable::new(quotes_schema, quote_rows),
            ],
            local_tables: vec![LocalTable::with_rows(watchlist_schema, watchlist_rows)],
            templates,
            symbols,
            sectors,
            days: cfg.days,
        }
    }

    fn window(&self, rng: &mut StdRng) -> (i64, i64) {
        let len = rng.random_range(5..=40.min(self.days));
        let lo = rng.random_range(1..=(self.days - len + 1));
        (lo, lo + len - 1)
    }
}

impl QueryWorkload for Finance {
    fn market_tables(&self) -> &[MarketTable] {
        &self.market_tables
    }

    fn local_tables(&self) -> &[LocalTable] {
        &self.local_tables
    }

    fn templates(&self) -> &[String] {
        &self.templates
    }

    fn sample_params(&self, t: usize, rng: &mut StdRng) -> Vec<Value> {
        match t {
            0 => {
                let s = &self.symbols[rng.random_range(0..self.symbols.len())];
                let (lo, hi) = self.window(rng);
                vec![Value::Str(s.clone()), Value::int(lo), Value::int(hi)]
            }
            1 => {
                let sec = &self.sectors[rng.random_range(0..self.sectors.len())];
                let (lo, hi) = self.window(rng);
                vec![Value::Str(sec.clone()), Value::int(lo), Value::int(hi)]
            }
            2 => {
                let (lo, hi) = self.window(rng);
                vec![Value::int(lo), Value::int(hi)]
            }
            3 => {
                let sec = &self.sectors[rng.random_range(0..self.sectors.len())];
                vec![Value::Str(sec.clone())]
            }
            other => panic!("template index {other} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Finance {
        Finance::generate(&FinanceConfig {
            symbols: 20,
            sectors: 4,
            days: 30,
            watchlist: 5,
            seed: 1,
        })
    }

    #[test]
    fn structure() {
        let f = tiny();
        assert_eq!(f.market_tables().len(), 2);
        let quotes = &f.market_tables()[1];
        assert_eq!(&*quotes.schema.table, "Quotes");
        assert_eq!(quotes.cardinality(), 20 * 30);
        // Symbol is mandatory-bound: the table is not downloadable in one
        // call.
        assert!(!quotes.schema.downloadable());
        assert!(f.market_tables()[0].schema.downloadable());
        assert_eq!(f.local_tables()[0].len(), 5);
        assert_eq!(f.templates().len(), 4);
    }

    #[test]
    fn templates_parse_and_params_match() {
        let f = tiny();
        let mut rng = StdRng::seed_from_u64(2);
        let arities = [3usize, 3, 2, 1];
        for (i, tmpl) in f.templates().iter().enumerate() {
            let stmt = payless_sql::parse(tmpl).unwrap();
            assert_eq!(stmt.param_count, arities[i], "template {i}");
            assert_eq!(f.sample_params(i, &mut rng).len(), arities[i]);
        }
    }

    #[test]
    fn watchlist_symbols_exist() {
        let f = tiny();
        let symbols: std::collections::HashSet<&str> = f.market_tables()[0]
            .rows()
            .iter()
            .map(|r| r.get(1).as_str().unwrap())
            .collect();
        for r in f.local_tables()[0].rows() {
            assert!(symbols.contains(r.get(0).as_str().unwrap()));
        }
    }

    #[test]
    fn prices_positive_and_walked() {
        let f = tiny();
        for r in f.market_tables()[1].rows() {
            assert!(r.get(2).as_int().unwrap() >= 1);
        }
    }
}
