//! A zipf(θ) sampler over `0..n`.

use rand::Rng;

/// Zipfian distribution over ranks `0..n`: rank `k` has weight
/// `1 / (k+1)^theta`. `theta = 0` degenerates to uniform; the paper's
/// skewed TPC-H data uses `theta = 1`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        assert!(theta >= 0.0, "negative zipf exponent");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` for a single-rank distribution.
    pub fn is_empty(&self) -> bool {
        false // construction forbids n == 0
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.random_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_when_theta_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate: ~1/H(100) ≈ 19% of the mass.
        assert!(
            counts[0] > 5 * counts[10],
            "counts[0]={} counts[10]={}",
            counts[0],
            counts[10]
        );
        assert!(counts[0] > counts[1]);
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(5, 1.5);
        assert_eq!(z.len(), 5);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
