//! Synthetic Worldwide Historical Weather + Environmental Hazard Rank data
//! and the five query templates of Table 1.
//!
//! The generator reproduces the *structure* the experiments depend on:
//! stations grouped into cities and countries, one weather row per station
//! per day, pollution ranks per zip code, and a local `ZipMap` from zip
//! codes to cities. Absolute sizes scale with [`WhwConfig`]; the paper's
//! full sizes are `3,962` stations (hence `3,962 × days` weather rows) and
//! `44,210` pollution rows.

use std::sync::Arc;

use payless_market::MarketTable;
use payless_storage::LocalTable;
use payless_types::{row, Column, Domain, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::QueryWorkload;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WhwConfig {
    /// Number of weather stations (paper: 3,962).
    pub stations: usize,
    /// Number of countries.
    pub countries: usize,
    /// Cities per country.
    pub cities_per_country: usize,
    /// Days of history (dates are day indexes `1..=days`).
    pub days: i64,
    /// Number of zip codes in the EHR Pollution table (paper: 44,210).
    pub zips: usize,
    /// Pollution ranks span `1..=ranks`.
    pub ranks: i64,
    /// RNG seed.
    pub seed: u64,
}

impl WhwConfig {
    /// The paper's sizes multiplied by `scale` (with small-floor guards so a
    /// tiny scale still produces a structurally complete dataset).
    pub fn scaled(scale: f64) -> Self {
        WhwConfig {
            stations: ((3962.0 * scale) as usize).max(40),
            countries: 10,
            cities_per_country: 8,
            days: 365,
            zips: ((44_210.0 * scale) as usize).max(80),
            ranks: 100,
            seed: 42,
        }
    }
}

impl Default for WhwConfig {
    fn default() -> Self {
        Self::scaled(0.1)
    }
}

/// The generated "real data" workload.
#[derive(Debug, Clone)]
pub struct RealWorkload {
    market_tables: Vec<MarketTable>,
    local_tables: Vec<LocalTable>,
    templates: Vec<String>,
    countries: Vec<Arc<str>>,
    /// city index → country index.
    city_country: Vec<usize>,
    /// city index → zip codes mapped to it.
    zips_by_city: Vec<Vec<i64>>,
    /// zip → rank (for sampling valid Q5 instances).
    zip_ranks: Vec<(i64, i64)>,
    days: i64,
}

impl RealWorkload {
    /// Generate the workload.
    pub fn generate(cfg: &WhwConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let countries: Vec<Arc<str>> = (0..cfg.countries)
            .map(|i| Arc::<str>::from(format!("Country{i}")))
            .collect();
        let n_cities = cfg.countries * cfg.cities_per_country;
        let cities: Vec<Arc<str>> = (0..n_cities)
            .map(|i| Arc::<str>::from(format!("City{i}")))
            .collect();
        let city_country: Vec<usize> = (0..n_cities).map(|c| c / cfg.cities_per_country).collect();

        let country_domain = Domain::Categorical(countries.clone().into());
        let city_domain = Domain::Categorical(cities.clone().into());

        // --- Station ---
        let station_schema = Schema::new(
            "Station",
            vec![
                Column::free("Country", country_domain.clone()),
                Column::free("StationID", Domain::int(1, cfg.stations as i64)),
                Column::free("City", city_domain.clone()),
                Column::output("Elevation", Domain::int(0, 4000)),
            ],
        );
        let mut station_rows = Vec::with_capacity(cfg.stations);
        let mut station_city = Vec::with_capacity(cfg.stations);
        for sid in 1..=cfg.stations {
            let city = (sid - 1) % n_cities;
            station_city.push(city);
            station_rows.push(row!(
                countries[city_country[city]].clone(),
                sid as i64,
                cities[city].clone(),
                rng.random_range(0..4000i64)
            ));
        }

        // --- Weather: one row per station per day ---
        let weather_schema = Schema::new(
            "Weather",
            vec![
                Column::free("Country", country_domain),
                Column::free("StationID", Domain::int(1, cfg.stations as i64)),
                Column::free("Date", Domain::int(1, cfg.days)),
                Column::output("Temperature", Domain::int(-400, 500)),
            ],
        );
        let mut weather_rows = Vec::with_capacity(cfg.stations * cfg.days as usize);
        for sid in 1..=cfg.stations {
            let city = station_city[sid - 1];
            let country = countries[city_country[city]].clone();
            let base: i64 = rng.random_range(-100..300);
            for day in 1..=cfg.days {
                let season = ((day as f64 / cfg.days as f64) * std::f64::consts::TAU).sin();
                let temp = base + (season * 150.0) as i64 + rng.random_range(-30..30);
                weather_rows.push(Row::new(vec![
                    Value::Str(country.clone()),
                    Value::int(sid as i64),
                    Value::int(day),
                    Value::int(temp),
                ]));
            }
        }

        // --- Pollution (EHR) + local ZipMap ---
        let zip_lo = 10_000i64;
        let pollution_schema = Schema::new(
            "Pollution",
            vec![
                Column::free("ZipCode", Domain::int(zip_lo, zip_lo + cfg.zips as i64 - 1)),
                Column::free("Rank", Domain::int(1, cfg.ranks)),
                Column::output("Latitude", Domain::int(-90, 90)),
                Column::output("Longitude", Domain::int(-180, 180)),
            ],
        );
        let zipmap_schema = Schema::new(
            "ZipMap",
            vec![
                Column::free("ZipCode", Domain::int(zip_lo, zip_lo + cfg.zips as i64 - 1)),
                Column::free("City", city_domain),
            ],
        );
        let mut pollution_rows = Vec::with_capacity(cfg.zips);
        let mut zipmap_rows = Vec::with_capacity(cfg.zips);
        let mut zips_by_city: Vec<Vec<i64>> = vec![Vec::new(); n_cities];
        let mut zip_ranks = Vec::with_capacity(cfg.zips);
        for i in 0..cfg.zips {
            let zip = zip_lo + i as i64;
            let rank = rng.random_range(1..=cfg.ranks);
            let city = rng.random_range(0..n_cities);
            zips_by_city[city].push(zip);
            zip_ranks.push((zip, rank));
            pollution_rows.push(row!(
                zip,
                rank,
                rng.random_range(-90..=90i64),
                rng.random_range(-180..=180i64)
            ));
            zipmap_rows.push(row!(zip, cities[city].clone()));
        }

        let templates = vec![
            // Q1
            "SELECT * FROM Weather WHERE Weather.Country = ? AND \
             Weather.Date >= ? AND Weather.Date <= ?"
                .to_string(),
            // Q2
            "SELECT COUNT(ZipCode) FROM Pollution WHERE \
             Pollution.Rank >= ? AND Pollution.Rank <= ?"
                .to_string(),
            // Q3
            "SELECT AVG(Temperature) FROM Station, Weather WHERE \
             Station.Country = Weather.Country = ? AND \
             Weather.Date >= ? AND Weather.Date <= ? AND \
             Station.StationID = Weather.StationID GROUP BY City"
                .to_string(),
            // Q4
            "SELECT Temperature FROM Station, Weather, ZipMap WHERE \
             Station.Country = Weather.Country = ? AND ZipMap.ZipCode = ? AND \
             Weather.Date >= ? AND Weather.Date <= ? AND \
             Station.StationID = Weather.StationID AND Station.City = ZipMap.City"
                .to_string(),
            // Q5
            "SELECT * FROM Pollution, Station, Weather, ZipMap WHERE \
             Station.Country = Weather.Country = ? AND \
             Weather.Date >= ? AND Weather.Date <= ? AND \
             Pollution.Rank >= ? AND Pollution.Rank <= ? AND \
             Pollution.ZipCode = ZipMap.ZipCode AND ZipMap.City = Station.City AND \
             Station.StationID = Weather.StationID"
                .to_string(),
        ];

        RealWorkload {
            market_tables: vec![
                MarketTable::new(station_schema, station_rows),
                MarketTable::new(weather_schema, weather_rows),
                MarketTable::new(pollution_schema, pollution_rows),
            ],
            local_tables: vec![LocalTable::with_rows(zipmap_schema, zipmap_rows)],
            templates,
            countries,
            city_country,
            zips_by_city,
            zip_ranks,
            days: cfg.days,
        }
    }

    fn random_country(&self, rng: &mut StdRng) -> Value {
        let i = rng.random_range(0..self.countries.len());
        Value::Str(self.countries[i].clone())
    }

    fn random_date_window(&self, rng: &mut StdRng) -> (i64, i64) {
        let len = rng.random_range(5..=30.min(self.days));
        let lo = rng.random_range(1..=(self.days - len + 1));
        (lo, lo + len - 1)
    }
}

impl QueryWorkload for RealWorkload {
    fn market_tables(&self) -> &[MarketTable] {
        &self.market_tables
    }

    fn local_tables(&self) -> &[LocalTable] {
        &self.local_tables
    }

    fn templates(&self) -> &[String] {
        &self.templates
    }

    fn sample_params(&self, t: usize, rng: &mut StdRng) -> Vec<Value> {
        match t {
            // Q1: country + date window.
            0 => {
                let (lo, hi) = self.random_date_window(rng);
                vec![self.random_country(rng), Value::int(lo), Value::int(hi)]
            }
            // Q2: rank window.
            1 => {
                let lo = rng.random_range(1..=90i64);
                let hi = rng.random_range(lo..=(lo + 20).min(100));
                vec![Value::int(lo), Value::int(hi)]
            }
            // Q3: country + date window.
            2 => {
                let (lo, hi) = self.random_date_window(rng);
                vec![self.random_country(rng), Value::int(lo), Value::int(hi)]
            }
            // Q4: country + a zip mapped to a city of that country.
            3 => {
                // Pick a city that actually has zip codes, then its country.
                let city = loop {
                    let c = rng.random_range(0..self.city_country.len());
                    if !self.zips_by_city[c].is_empty() {
                        break c;
                    }
                };
                let country = Value::Str(self.countries[self.city_country[city]].clone());
                let zips = &self.zips_by_city[city];
                let zip = zips[rng.random_range(0..zips.len())];
                let (lo, hi) = self.random_date_window(rng);
                vec![country, Value::int(zip), Value::int(lo), Value::int(hi)]
            }
            // Q5: country + date window + a rank window hitting a zip whose
            // city lies in that country.
            4 => {
                let (zip_rank, country) = {
                    let i = rng.random_range(0..self.zip_ranks.len());
                    let (zip, rank) = self.zip_ranks[i];
                    let city = self
                        .zips_by_city
                        .iter()
                        .position(|zs| zs.contains(&zip))
                        .expect("every zip maps to a city");
                    (rank, self.city_country[city])
                };
                let lo = (zip_rank - rng.random_range(0..=5)).max(1);
                let hi = (zip_rank + rng.random_range(0..=5)).min(100);
                let (dlo, dhi) = self.random_date_window(rng);
                vec![
                    Value::Str(self.countries[country].clone()),
                    Value::int(dlo),
                    Value::int(dhi),
                    Value::int(lo),
                    Value::int(hi),
                ]
            }
            other => panic!("template index {other} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RealWorkload {
        RealWorkload::generate(&WhwConfig {
            stations: 40,
            countries: 4,
            cities_per_country: 3,
            days: 30,
            zips: 50,
            ranks: 100,
            seed: 1,
        })
    }

    #[test]
    fn structure_and_sizes() {
        let w = tiny();
        assert_eq!(w.market_tables().len(), 3);
        assert_eq!(w.local_tables().len(), 1);
        let station = &w.market_tables()[0];
        let weather = &w.market_tables()[1];
        let pollution = &w.market_tables()[2];
        assert_eq!(&*station.schema.table, "Station");
        assert_eq!(station.cardinality(), 40);
        assert_eq!(weather.cardinality(), 40 * 30);
        assert_eq!(pollution.cardinality(), 50);
        assert_eq!(w.local_tables()[0].len(), 50);
        assert_eq!(w.templates().len(), 5);
    }

    #[test]
    fn weather_rows_consistent_with_stations() {
        let w = tiny();
        let station = &w.market_tables()[0];
        let weather = &w.market_tables()[1];
        // Every weather row's (country, station) pair exists in Station.
        let pairs: std::collections::HashSet<(Value, Value)> = station
            .rows()
            .iter()
            .map(|r| (r.get(0).clone(), r.get(1).clone()))
            .collect();
        for r in weather.rows() {
            assert!(pairs.contains(&(r.get(0).clone(), r.get(1).clone())));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let w = tiny();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for t in 0..5 {
            assert_eq!(w.sample_params(t, &mut a), w.sample_params(t, &mut b));
        }
    }

    #[test]
    fn q1_params_have_valid_window() {
        let w = tiny();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = w.sample_params(0, &mut rng);
            assert_eq!(p.len(), 3);
            let lo = p[1].as_int().unwrap();
            let hi = p[2].as_int().unwrap();
            assert!(1 <= lo && lo <= hi && hi <= 30);
        }
    }

    #[test]
    fn q4_zip_maps_to_city_in_country() {
        let w = tiny();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let p = w.sample_params(3, &mut rng);
            let country = p[0].as_str().unwrap();
            let zip = p[1].as_int().unwrap();
            // Find the city for this zip in the ZipMap rows.
            let zipmap = &w.local_tables()[0];
            let city = zipmap
                .rows()
                .iter()
                .find(|r| r.get(0).as_int() == Some(zip))
                .map(|r| r.get(1).as_str().unwrap().to_string())
                .expect("zip in ZipMap");
            // The city's stations carry the same country.
            let station = &w.market_tables()[0];
            let has_station_in_country = station.rows().iter().any(|r| {
                r.get(2).as_str() == Some(city.as_str()) && r.get(0).as_str() == Some(country)
            });
            assert!(
                has_station_in_country,
                "zip {zip} city {city} country {country}"
            );
        }
    }

    #[test]
    fn scaled_config_floors() {
        let c = WhwConfig::scaled(0.0001);
        assert!(c.stations >= 40);
        assert!(c.zips >= 80);
    }
}
