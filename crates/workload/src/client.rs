//! Remote query driver: the client half of the `payless-server` REST
//! protocol.
//!
//! A deliberately dumb HTTP/1.1 client — one connection per request,
//! `Connection: close` — so every request exercises the server's full
//! accept/parse/respond path, the way independent external clients would.
//! [`drive_mix`] replays the same deterministic mix
//! ([`crate::mix::serve_mix`]) that the in-process driver replays, K
//! client threads pulling from one global queue, and returns per-query
//! outcomes in mix order so a report built from them is comparable
//! slot-for-slot with the in-process oracle's.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use payless_json::{Json, ToJson};
use payless_types::{Row, Value};

use crate::mix::MixItem;

/// One query's remote outcome: decoded rows plus the spend telemetry the
/// server reported in its `X-Payless-*` headers.
#[derive(Debug, Clone)]
pub struct RemoteOutcome {
    /// Server-side causal id (the argument `/v1/why` takes).
    pub query_id: u64,
    /// Decoded result rows.
    pub rows: Vec<Row>,
    /// Pages billed to this query.
    pub pages: u64,
    /// Pages bought but not delivered (fault retries).
    pub wasted_pages: u64,
    /// Records delivered.
    pub records: u64,
    /// Price paid, in dollars.
    pub price: f64,
    /// Times this query waited on another's in-flight market call.
    pub coalesce_waits: u64,
    /// Pages coalescing saved this query.
    pub saved_pages: u64,
    /// Batch rendezvous this query joined.
    pub batch_joins: u64,
    /// Pages attributed to this query from shared batch purchases.
    pub shared_pages: u64,
    /// Client-side wall clock for the whole round trip, in nanoseconds.
    pub wall_nanos: u64,
}

/// A minimal HTTP/1.1 response: status, headers (names lowercased), body.
#[derive(Debug)]
pub struct HttpReply {
    /// Numeric status code.
    pub status: u16,
    /// Header pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length` delimited).
    pub body: Vec<u8>,
}

impl HttpReply {
    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn header_u64(&self, name: &str) -> u64 {
        self.header(name).and_then(|v| v.parse().ok()).unwrap_or(0)
    }

    /// Body as UTF-8 (lossy — for error messages and text endpoints).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn read_reply(stream: TcpStream) -> Result<HttpReply, String> {
    let mut r = BufReader::new(stream);
    let mut status_line = String::new();
    r.read_line(&mut status_line)
        .map_err(|e| format!("read status line: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        r.read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or("response without content-length")?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| format!("read body ({len} bytes): {e}"))?;
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

/// One HTTP request over a fresh connection (`Connection: close`).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<HttpReply, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(body))
        .and_then(|_| stream.flush())
        .map_err(|e| format!("send {method} {path}: {e}"))?;
    read_reply(stream)
}

/// GET a text endpoint, failing on any non-200.
pub fn get_text(addr: &str, path: &str) -> Result<String, String> {
    let reply = request(addr, "GET", path, None)?;
    if reply.status != 200 {
        return Err(format!(
            "GET {path}: status {} ({})",
            reply.status,
            reply.text().trim()
        ));
    }
    Ok(reply.text())
}

/// Submit one query: `POST /v1/query` with the template index and
/// parameters, decode the binary rows, and collect the spend headers.
pub fn submit(addr: &str, template: usize, params: &[Value]) -> Result<RemoteOutcome, String> {
    let t0 = Instant::now();
    let body = Json::obj([
        ("template", Json::Int(template as i64)),
        (
            "params",
            Json::Arr(params.iter().map(|p| p.to_json()).collect()),
        ),
    ])
    .to_string_compact();
    let reply = request(addr, "POST", "/v1/query", Some(body.as_bytes()))?;
    if reply.status != 200 {
        return Err(format!(
            "query template {template}: status {} ({})",
            reply.status,
            reply.text().trim()
        ));
    }
    let rows = payless_market::decode_rows(&reply.body).map_err(|e| format!("decode rows: {e}"))?;
    Ok(RemoteOutcome {
        query_id: reply.header_u64("x-payless-query-id"),
        pages: reply.header_u64("x-payless-pages"),
        wasted_pages: reply.header_u64("x-payless-wasted-pages"),
        records: reply.header_u64("x-payless-records"),
        price: reply
            .header("x-payless-price")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0),
        coalesce_waits: reply.header_u64("x-payless-coalesce-waits"),
        saved_pages: reply.header_u64("x-payless-saved-pages"),
        batch_joins: reply.header_u64("x-payless-batch-joins"),
        shared_pages: reply.header_u64("x-payless-shared-pages"),
        wall_nanos: t0.elapsed().as_nanos() as u64,
        rows,
    })
}

/// Ask the server to drain and shut down gracefully.
pub fn shutdown(addr: &str) -> Result<(), String> {
    let reply = request(addr, "POST", "/v1/shutdown", None)?;
    if reply.status != 200 {
        return Err(format!("shutdown: status {}", reply.status));
    }
    Ok(())
}

/// Replay `mix` against a remote server with `threads` concurrent client
/// workers pulling from one shared queue — the socket-level twin of the
/// in-process `run_mix` driver. Outcomes come back in mix order; the
/// first failed query aborts the drive.
pub fn drive_mix(
    addr: &str,
    mix: &[MixItem],
    threads: usize,
) -> Result<Vec<RemoteOutcome>, String> {
    let threads = threads.max(1);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<RemoteOutcome>>> = Mutex::new(vec![None; mix.len()]);
    let failure: Mutex<Option<String>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..threads.min(mix.len().max(1)) {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::SeqCst);
                if idx >= mix.len() {
                    return;
                }
                let item = &mix[idx];
                match submit(addr, item.template, &item.params) {
                    Ok(outcome) => {
                        slots.lock().unwrap_or_else(|e| e.into_inner())[idx] = Some(outcome);
                    }
                    Err(e) => {
                        let mut f = failure.lock().unwrap_or_else(|e| e.into_inner());
                        if f.is_none() {
                            *f = Some(format!("mix item {idx}: {e}"));
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(e);
    }
    Ok(slots
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|o| o.expect("no failure, so every slot filled"))
        .collect())
}
