//! Workloads for the PayLess evaluation (Section 5 of the paper).
//!
//! * [`whw`] — synthetic stand-ins for the Worldwide Historical Weather and
//!   Environmental Hazard Rank datasets of Windows Azure Marketplace, plus
//!   the local `ZipMap` table, and the five query templates of Table 1.
//! * [`tpch`] — a from-scratch TPC-H-shaped generator (8 tables, correct key
//!   structure) with uniform or zipf(θ)-skewed value distributions (the
//!   "TPC-H skew" data of Chaudhuri & Narasayya), and eight SPJ/aggregate
//!   query templates modeled on TPC-H Q1/Q3/Q4/Q5/Q6/Q10/Q12/Q14. `Nation`
//!   and `Region` are local tables, as in the paper's setup.
//! * [`finance`] — a quote-reseller workload whose `Quotes` table has a
//!   **mandatory bound** `Symbol` attribute, making bind joins required
//!   rather than merely cheaper (the paper's Theorem-1 setting).
//! * [`zipf`] — the zipf sampler the generators share.
//!
//! Dates are encoded as **day indexes** (small consecutive integers) instead
//! of `YYYYMMDD` literals so that integer ranges have no invalid gaps; the
//! substitution is recorded in DESIGN.md.
//!
//! Both workloads implement [`QueryWorkload`], the interface the benchmark
//! harness drives: parameterized templates plus valid-instance sampling
//! ("a query instance is valid if it returns non-empty results").

#![warn(missing_docs)]

pub mod client;
pub mod finance;
pub mod mix;
pub mod tpch;
pub mod whw;
pub mod zipf;

use payless_market::MarketTable;
use payless_storage::LocalTable;
use payless_types::Value;
use rand::rngs::StdRng;

pub use client::{drive_mix, submit, RemoteOutcome};
pub use finance::{Finance, FinanceConfig};
pub use mix::{overlapping_mix, serve_mix, MixItem};
pub use tpch::{Tpch, TpchConfig};
pub use whw::{RealWorkload, WhwConfig};
pub use zipf::Zipf;

/// A benchmark workload: data plus parameterized query templates.
pub trait QueryWorkload {
    /// Tables hosted in the data market.
    fn market_tables(&self) -> &[MarketTable];
    /// Tables in the buyer's local DBMS.
    fn local_tables(&self) -> &[LocalTable];
    /// Parameterized SQL templates (`?` placeholders).
    fn templates(&self) -> &[String];
    /// Sample parameter values for template `t` such that the instance is
    /// valid (returns non-empty results).
    fn sample_params(&self, t: usize, rng: &mut StdRng) -> Vec<Value>;
}
