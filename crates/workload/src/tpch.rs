//! A from-scratch TPC-H-shaped generator with optional zipf skew, plus
//! eight SPJ/aggregate templates modeled on TPC-H Q1/Q3/Q4/Q5/Q6/Q10/Q12/Q14.
//!
//! Structure follows the TPC-H schema: `Region` (5) and `Nation` (25) are
//! **local** tables (as in the paper's setup); `Supplier`, `Part`,
//! `PartSupp`, `Customer`, `Orders` and `Lineitem` live in the market. Row
//! counts scale with [`TpchConfig::scale`] relative to the standard SF-1
//! sizes. With `skew = Some(θ)` the foreign keys and value columns follow a
//! zipf(θ) distribution (the Chaudhuri–Narasayya "TPC-D with skew"
//! generator's spirit; the paper uses `zipf = 1`).
//!
//! All parametric attributes are **free** in the access patterns, matching
//! "All parametric attributes in TPC-H queries are set as free attributes".

use std::sync::Arc;

use payless_market::MarketTable;
use payless_storage::LocalTable;
use payless_types::{row, Column, Domain, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;
use crate::QueryWorkload;

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
const LINE_STATUS: [&str; 2] = ["F", "O"];
const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];

/// Last order date (day index); shipping adds up to 122 days.
const MAX_ORDER_DATE: i64 = 2400;
const MAX_SHIP_DATE: i64 = MAX_ORDER_DATE + 122;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Scale relative to SF-1 (e.g. `0.001` ≈ 6k lineitems).
    pub scale: f64,
    /// zipf exponent for the skewed variant (`None` = uniform; the paper's
    /// skewed runs use `Some(1.0)`).
    pub skew: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl TpchConfig {
    /// Uniform data at `scale`.
    pub fn uniform(scale: f64) -> Self {
        TpchConfig {
            scale,
            skew: None,
            seed: 7,
        }
    }

    /// zipf(1) skewed data at `scale`.
    pub fn skewed(scale: f64) -> Self {
        TpchConfig {
            skew: Some(1.0),
            ..Self::uniform(scale)
        }
    }
}

/// The generated TPC-H workload.
#[derive(Debug, Clone)]
pub struct Tpch {
    market_tables: Vec<MarketTable>,
    local_tables: Vec<LocalTable>,
    templates: Vec<String>,
}

/// Draw an index in `0..n`, zipf-skewed when configured.
struct Picker {
    zipf: Option<Zipf>,
    n: usize,
}

impl Picker {
    fn new(n: usize, skew: Option<f64>) -> Self {
        Picker {
            zipf: skew.map(|theta| Zipf::new(n, theta)),
            n,
        }
    }

    fn pick(&self, rng: &mut StdRng) -> usize {
        match &self.zipf {
            Some(z) => z.sample(rng),
            None => rng.random_range(0..self.n),
        }
    }
}

impl Tpch {
    /// Generate data at the configured scale.
    pub fn generate(cfg: &TpchConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let sf = cfg.scale;
        let n_supp = ((10_000.0 * sf) as usize).max(10);
        let n_part = ((200_000.0 * sf) as usize).max(50);
        let n_cust = ((150_000.0 * sf) as usize).max(30);
        let n_ord = ((1_500_000.0 * sf) as usize).max(100);

        let cat = |values: &[&str]| {
            Domain::Categorical(
                values
                    .iter()
                    .map(|s| Arc::<str>::from(*s))
                    .collect::<Vec<_>>()
                    .into(),
            )
        };
        let brands: Vec<String> = (1..=5)
            .flat_map(|a| (1..=5).map(move |b| format!("Brand#{a}{b}")))
            .collect();
        let brand_domain = Domain::categorical(brands.clone());

        // --- Local: Region, Nation ---
        let region_schema = Schema::new(
            "Region",
            vec![
                Column::free("RegionKey", Domain::int(0, 4)),
                Column::free("Name", cat(&REGIONS)),
            ],
        );
        let region_rows: Vec<Row> = REGIONS
            .iter()
            .enumerate()
            .map(|(i, n)| row!(i as i64, *n))
            .collect();
        let nation_schema = Schema::new(
            "Nation",
            vec![
                Column::free("NationKey", Domain::int(0, 24)),
                Column::free("Name", cat(&NATIONS)),
                Column::free("RegionKey", Domain::int(0, 4)),
            ],
        );
        let nation_rows: Vec<Row> = NATIONS
            .iter()
            .enumerate()
            .map(|(i, n)| row!(i as i64, *n, (i % 5) as i64))
            .collect();

        // --- Supplier ---
        let supplier_schema = Schema::new(
            "Supplier",
            vec![
                Column::free("SuppKey", Domain::int(1, n_supp as i64)),
                Column::free("NationKey", Domain::int(0, 24)),
                Column::output("AcctBal", Domain::int(-1000, 10_000)),
            ],
        );
        let nation_pick = Picker::new(25, cfg.skew);
        let supplier_rows: Vec<Row> = (1..=n_supp)
            .map(|k| {
                row!(
                    k as i64,
                    nation_pick.pick(&mut rng) as i64,
                    rng.random_range(-1000..10_000i64)
                )
            })
            .collect();

        // --- Part ---
        let part_schema = Schema::new(
            "Part",
            vec![
                Column::free("PartKey", Domain::int(1, n_part as i64)),
                Column::free("Brand", brand_domain),
                Column::free("Size", Domain::int(1, 50)),
                Column::output("RetailPrice", Domain::int(900, 2100)),
            ],
        );
        let brand_pick = Picker::new(brands.len(), cfg.skew);
        let size_pick = Picker::new(50, cfg.skew);
        let part_rows: Vec<Row> = (1..=n_part)
            .map(|k| {
                row!(
                    k as i64,
                    brands[brand_pick.pick(&mut rng)].as_str(),
                    size_pick.pick(&mut rng) as i64 + 1,
                    rng.random_range(900..2100i64)
                )
            })
            .collect();

        // --- PartSupp: 4 suppliers per part ---
        let partsupp_schema = Schema::new(
            "PartSupp",
            vec![
                Column::free("PartKey", Domain::int(1, n_part as i64)),
                Column::free("SuppKey", Domain::int(1, n_supp as i64)),
                Column::output("AvailQty", Domain::int(0, 10_000)),
                Column::output("SupplyCost", Domain::int(1, 1000)),
            ],
        );
        let mut partsupp_rows = Vec::with_capacity(n_part * 4);
        for p in 1..=n_part {
            for i in 0..4usize {
                let s = ((p + i * (n_supp / 4).max(1) - 1) % n_supp) + 1;
                partsupp_rows.push(row!(
                    p as i64,
                    s as i64,
                    rng.random_range(0..10_000i64),
                    rng.random_range(1..1000i64)
                ));
            }
        }

        // --- Customer ---
        let customer_schema = Schema::new(
            "Customer",
            vec![
                Column::free("CustKey", Domain::int(1, n_cust as i64)),
                Column::free("NationKey", Domain::int(0, 24)),
                Column::free("MktSegment", cat(&SEGMENTS)),
                Column::output("AcctBal", Domain::int(-1000, 10_000)),
            ],
        );
        let seg_pick = Picker::new(5, cfg.skew);
        let customer_rows: Vec<Row> = (1..=n_cust)
            .map(|k| {
                row!(
                    k as i64,
                    nation_pick.pick(&mut rng) as i64,
                    SEGMENTS[seg_pick.pick(&mut rng)],
                    rng.random_range(-1000..10_000i64)
                )
            })
            .collect();

        // --- Orders + Lineitem ---
        let orders_schema = Schema::new(
            "Orders",
            vec![
                Column::free("OrderKey", Domain::int(1, n_ord as i64)),
                Column::free("CustKey", Domain::int(1, n_cust as i64)),
                Column::free("OrderDate", Domain::int(1, MAX_ORDER_DATE)),
                Column::free("OrderPriority", cat(&PRIORITIES)),
                Column::output("TotalPrice", Domain::int(1000, 500_000)),
            ],
        );
        let lineitem_schema = Schema::new(
            "Lineitem",
            vec![
                Column::free("OrderKey", Domain::int(1, n_ord as i64)),
                Column::free("PartKey", Domain::int(1, n_part as i64)),
                Column::free("SuppKey", Domain::int(1, n_supp as i64)),
                Column::free("Quantity", Domain::int(1, 50)),
                Column::output("ExtendedPrice", Domain::int(900, 105_000)),
                Column::free("Discount", Domain::int(0, 10)),
                Column::free("ReturnFlag", cat(&RETURN_FLAGS)),
                Column::free("LineStatus", cat(&LINE_STATUS)),
                Column::free("ShipDate", Domain::int(1, MAX_SHIP_DATE)),
                Column::output("CommitDate", Domain::int(1, MAX_SHIP_DATE)),
                Column::output("ReceiptDate", Domain::int(1, MAX_SHIP_DATE + 30)),
                Column::free("ShipMode", cat(&SHIP_MODES)),
            ],
        );
        let cust_pick = Picker::new(n_cust, cfg.skew);
        let date_pick = Picker::new(MAX_ORDER_DATE as usize, cfg.skew);
        let prio_pick = Picker::new(5, cfg.skew);
        let part_pick = Picker::new(n_part, cfg.skew);
        let supp_pick = Picker::new(n_supp, cfg.skew);
        let qty_pick = Picker::new(50, cfg.skew);
        let mode_pick = Picker::new(7, cfg.skew);
        let flag_pick = Picker::new(3, cfg.skew);
        let mut orders_rows = Vec::with_capacity(n_ord);
        let mut lineitem_rows = Vec::with_capacity(n_ord * 4);
        for o in 1..=n_ord {
            let order_date = date_pick.pick(&mut rng) as i64 + 1;
            orders_rows.push(row!(
                o as i64,
                cust_pick.pick(&mut rng) as i64 + 1,
                order_date,
                PRIORITIES[prio_pick.pick(&mut rng)],
                rng.random_range(1000..500_000i64)
            ));
            let lines = rng.random_range(1..=7usize);
            for _ in 0..lines {
                let ship = order_date + rng.random_range(1..=121i64);
                let commit = order_date + rng.random_range(30..=90i64);
                let receipt = ship + rng.random_range(1..=30i64);
                let qty = qty_pick.pick(&mut rng) as i64 + 1;
                let price = qty * rng.random_range(900..2100i64);
                lineitem_rows.push(row!(
                    o as i64,
                    part_pick.pick(&mut rng) as i64 + 1,
                    supp_pick.pick(&mut rng) as i64 + 1,
                    qty,
                    price,
                    rng.random_range(0..=10i64),
                    RETURN_FLAGS[flag_pick.pick(&mut rng)],
                    LINE_STATUS[rng.random_range(0..2usize)],
                    ship,
                    commit,
                    receipt,
                    SHIP_MODES[mode_pick.pick(&mut rng)]
                ));
            }
        }

        let templates = vec![
            // T1 ~ TPC-H Q1: pricing summary, big scan.
            "SELECT ReturnFlag, LineStatus, SUM(Quantity), AVG(ExtendedPrice), COUNT(*) \
             FROM Lineitem WHERE ShipDate <= ? GROUP BY ReturnFlag, LineStatus"
                .to_string(),
            // T2 ~ Q3: shipping priority.
            "SELECT Orders.OrderKey, SUM(ExtendedPrice) FROM Customer, Orders, Lineitem \
             WHERE MktSegment = ? AND Orders.OrderDate <= ? AND Lineitem.ShipDate >= ? AND \
             Customer.CustKey = Orders.CustKey AND Orders.OrderKey = Lineitem.OrderKey \
             GROUP BY Orders.OrderKey"
                .to_string(),
            // T3 ~ Q5: local supplier volume (6-way join, Nation/Region local).
            "SELECT Nation.Name, COUNT(*) FROM Customer, Orders, Lineitem, Supplier, Nation, Region \
             WHERE Region.Name = ? AND Orders.OrderDate >= ? AND Orders.OrderDate <= ? AND \
             Customer.CustKey = Orders.CustKey AND Orders.OrderKey = Lineitem.OrderKey AND \
             Lineitem.SuppKey = Supplier.SuppKey AND Customer.NationKey = Supplier.NationKey AND \
             Supplier.NationKey = Nation.NationKey AND Nation.RegionKey = Region.RegionKey \
             GROUP BY Nation.Name"
                .to_string(),
            // T4 ~ Q6: forecasting revenue change.
            "SELECT SUM(ExtendedPrice) FROM Lineitem WHERE ShipDate >= ? AND ShipDate <= ? AND \
             Discount >= ? AND Discount <= ? AND Quantity <= ?"
                .to_string(),
            // T5 ~ Q12: shipping modes (residual CommitDate < ReceiptDate).
            "SELECT ShipMode, COUNT(*) FROM Orders, Lineitem WHERE \
             Orders.OrderKey = Lineitem.OrderKey AND ShipMode = ? AND \
             Lineitem.ShipDate >= ? AND Lineitem.ShipDate <= ? AND CommitDate < ReceiptDate \
             GROUP BY ShipMode"
                .to_string(),
            // T6 ~ Q4: order priority checking.
            "SELECT OrderPriority, COUNT(*) FROM Orders WHERE OrderDate >= ? AND OrderDate <= ? \
             GROUP BY OrderPriority"
                .to_string(),
            // T7 ~ Q10: returned items.
            "SELECT Customer.CustKey, COUNT(*) FROM Customer, Orders, Lineitem WHERE \
             ReturnFlag = ? AND OrderDate >= ? AND OrderDate <= ? AND \
             Customer.CustKey = Orders.CustKey AND Orders.OrderKey = Lineitem.OrderKey \
             GROUP BY Customer.CustKey"
                .to_string(),
            // T8 ~ Q14: promotion effect (brand instead of type prefix).
            "SELECT SUM(ExtendedPrice) FROM Lineitem, Part WHERE \
             Lineitem.PartKey = Part.PartKey AND ShipDate >= ? AND ShipDate <= ? AND \
             Part.Brand = ?"
                .to_string(),
        ];

        Tpch {
            market_tables: vec![
                MarketTable::new(supplier_schema, supplier_rows),
                MarketTable::new(part_schema, part_rows),
                MarketTable::new(partsupp_schema, partsupp_rows),
                MarketTable::new(customer_schema, customer_rows),
                MarketTable::new(orders_schema, orders_rows),
                MarketTable::new(lineitem_schema, lineitem_rows),
            ],
            local_tables: vec![
                LocalTable::with_rows(region_schema, region_rows),
                LocalTable::with_rows(nation_schema, nation_rows),
            ],
            templates,
        }
    }
}

impl QueryWorkload for Tpch {
    fn market_tables(&self) -> &[MarketTable] {
        &self.market_tables
    }

    fn local_tables(&self) -> &[LocalTable] {
        &self.local_tables
    }

    fn templates(&self) -> &[String] {
        &self.templates
    }

    fn sample_params(&self, t: usize, rng: &mut StdRng) -> Vec<Value> {
        let date_window = |rng: &mut StdRng, max: i64| {
            let len = rng.random_range(90..=365i64);
            let lo = rng.random_range(1..=(max - len).max(1));
            (lo, lo + len)
        };
        match t {
            // T1: ShipDate <= ? with a cutoff in the upper half (big scan).
            0 => vec![Value::int(
                rng.random_range(MAX_SHIP_DATE / 2..=MAX_SHIP_DATE),
            )],
            // T2: segment, order date cutoff, ship date floor.
            1 => {
                let pivot = rng.random_range(MAX_ORDER_DATE / 4..=3 * MAX_ORDER_DATE / 4);
                vec![
                    Value::str(SEGMENTS[rng.random_range(0..SEGMENTS.len())]),
                    Value::int(pivot),
                    Value::int(pivot),
                ]
            }
            // T3: region + order date year.
            2 => {
                let (lo, hi) = date_window(rng, MAX_ORDER_DATE);
                vec![
                    Value::str(REGIONS[rng.random_range(0..REGIONS.len())]),
                    Value::int(lo),
                    Value::int(hi),
                ]
            }
            // T4: ship window + discount band + quantity cap.
            3 => {
                let (lo, hi) = date_window(rng, MAX_SHIP_DATE);
                let dlo = rng.random_range(0..=8i64);
                vec![
                    Value::int(lo),
                    Value::int(hi),
                    Value::int(dlo),
                    Value::int((dlo + 2).min(10)),
                    Value::int(rng.random_range(20..=50i64)),
                ]
            }
            // T5: ship mode + ship window.
            4 => {
                let (lo, hi) = date_window(rng, MAX_SHIP_DATE);
                vec![
                    Value::str(SHIP_MODES[rng.random_range(0..SHIP_MODES.len())]),
                    Value::int(lo),
                    Value::int(hi),
                ]
            }
            // T6: order date window.
            5 => {
                let (lo, hi) = date_window(rng, MAX_ORDER_DATE);
                vec![Value::int(lo), Value::int(hi)]
            }
            // T7: return flag + order date window.
            6 => {
                let (lo, hi) = date_window(rng, MAX_ORDER_DATE);
                vec![
                    Value::str(RETURN_FLAGS[rng.random_range(0..RETURN_FLAGS.len())]),
                    Value::int(lo),
                    Value::int(hi),
                ]
            }
            // T8: ship window + brand.
            7 => {
                let (lo, hi) = date_window(rng, MAX_SHIP_DATE);
                let a = rng.random_range(1..=5);
                let b = rng.random_range(1..=5);
                vec![
                    Value::int(lo),
                    Value::int(hi),
                    Value::str(format!("Brand#{a}{b}")),
                ]
            }
            other => panic!("template index {other} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tpch {
        Tpch::generate(&TpchConfig::uniform(0.0005))
    }

    #[test]
    fn sizes_scale() {
        let t = tiny();
        let by_name = |n: &str| {
            t.market_tables()
                .iter()
                .find(|mt| &*mt.schema.table == n)
                .unwrap()
        };
        assert_eq!(by_name("Supplier").cardinality(), 10); // floor
        assert_eq!(by_name("Part").cardinality(), 100);
        assert_eq!(by_name("PartSupp").cardinality(), 400);
        assert_eq!(by_name("Customer").cardinality(), 75);
        assert_eq!(by_name("Orders").cardinality(), 750);
        let li = by_name("Lineitem").cardinality();
        assert!((750..=5250).contains(&li), "lineitem {li}");
        assert_eq!(t.local_tables().len(), 2);
        assert_eq!(t.local_tables()[0].len(), 5);
        assert_eq!(t.local_tables()[1].len(), 25);
        assert_eq!(t.templates().len(), 8);
    }

    #[test]
    fn lineitem_keys_reference_orders() {
        let t = tiny();
        let orders = t
            .market_tables()
            .iter()
            .find(|mt| &*mt.schema.table == "Orders")
            .unwrap();
        let n_ord = orders.cardinality() as i64;
        let li = t
            .market_tables()
            .iter()
            .find(|mt| &*mt.schema.table == "Lineitem")
            .unwrap();
        for r in li.rows() {
            let ok = r.get(0).as_int().unwrap();
            assert!((1..=n_ord).contains(&ok));
            // Ship date after order date by construction.
            let ship = r.get(8).as_int().unwrap();
            assert!(ship >= 2);
        }
    }

    #[test]
    fn skewed_orders_concentrate_on_low_custkeys() {
        let uniform = Tpch::generate(&TpchConfig::uniform(0.001));
        let skewed = Tpch::generate(&TpchConfig::skewed(0.001));
        let cust_counts = |t: &Tpch| {
            let orders = t
                .market_tables()
                .iter()
                .find(|mt| &*mt.schema.table == "Orders")
                .unwrap();
            let n = orders
                .rows()
                .iter()
                .filter(|r| r.get(1).as_int().unwrap() <= 5)
                .count();
            n as f64 / orders.cardinality() as f64
        };
        assert!(cust_counts(&skewed) > 2.0 * cust_counts(&uniform));
    }

    #[test]
    fn sample_params_match_template_arity() {
        let t = tiny();
        let mut rng = StdRng::seed_from_u64(11);
        let expected = [1usize, 3, 3, 5, 3, 2, 3, 3];
        for (i, &n) in expected.iter().enumerate() {
            assert_eq!(t.sample_params(i, &mut rng).len(), n, "template {i}");
        }
    }

    #[test]
    fn templates_parse() {
        let t = tiny();
        for (i, tmpl) in t.templates().iter().enumerate() {
            let stmt = payless_sql::parse(tmpl)
                .unwrap_or_else(|e| panic!("template {i} failed to parse: {e}\n{tmpl}"));
            assert!(stmt.param_count > 0);
        }
    }
}
