//! The per-query report: what a query cost, where the money went, and what
//! the optimizer and executor did to keep it low.
//!
//! A [`QueryReport`] is assembled by [`crate::PayLess`] after each traced
//! query from three sources: the session's own phase timers, the
//! optimizer's [`PlanCounters`], and the drained
//! [`payless_telemetry::TelemetrySnapshot`] (spend ledger, SQR hit/miss
//! statistics, operator spans, counters, histograms). The ledger inside is
//! auditable: its totals equal the billing meter's deltas for the query.

use payless_json::{Json, ToJson};
use payless_optimizer::PlanCounters;
use payless_telemetry::{DatasetSpend, SqrStats, TelemetrySnapshot};

/// Everything observable about one executed query.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    /// Parse + bind + analyze wall time (nanoseconds).
    pub analyze_nanos: u64,
    /// Plan-search wall time (nanoseconds).
    pub optimize_nanos: u64,
    /// Execution wall time (nanoseconds), including market calls.
    pub execute_nanos: u64,
    /// The optimizer's estimated cost (transactions, or calls in MinCalls
    /// mode).
    pub est_cost: f64,
    /// Transactions actually added to the bill by this query.
    pub paid_transactions: u64,
    /// Plan-search effort: plans costed and Theorem 2/3 pruning.
    pub counters: PlanCounters,
    /// Spend ledger, SQR statistics, operator spans, counters, histograms.
    pub telemetry: TelemetrySnapshot,
}

impl QueryReport {
    /// Total money spent by this query (sum of the ledger's priced pages).
    pub fn total_price(&self) -> f64 {
        self.telemetry.total_price()
    }

    /// Total pages (transactions) in the ledger. For a correctly wired
    /// pipeline this equals [`QueryReport::paid_transactions`].
    pub fn total_pages(&self) -> u64 {
        self.telemetry.total_pages()
    }

    /// Per-dataset spend rollup, in first-purchase order.
    pub fn spend_by_dataset(&self) -> Vec<DatasetSpend> {
        self.telemetry.spend_by_dataset()
    }

    /// SQR cache effectiveness for this query.
    pub fn sqr(&self) -> &SqrStats {
        &self.telemetry.sqr
    }

    /// Machine-readable form, consumed by the bench figure binaries and by
    /// `--trace`'s JSON output.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "phases",
                Json::obj([
                    ("analyze_nanos", self.analyze_nanos.to_json()),
                    ("optimize_nanos", self.optimize_nanos.to_json()),
                    ("execute_nanos", self.execute_nanos.to_json()),
                ]),
            ),
            ("est_cost", self.est_cost.to_json()),
            ("paid_transactions", self.paid_transactions.to_json()),
            (
                "plan_search",
                Json::obj([
                    ("plans_considered", self.counters.plans_considered.to_json()),
                    ("boxes_enumerated", self.counters.boxes_enumerated.to_json()),
                    ("boxes_kept", self.counters.boxes_kept.to_json()),
                    ("theorem2_hoisted", self.counters.theorem2_hoisted.to_json()),
                    (
                        "theorem3_composed",
                        self.counters.theorem3_composed.to_json(),
                    ),
                ]),
            ),
            ("telemetry", self.telemetry.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_has_all_sections() {
        let report = QueryReport {
            analyze_nanos: 1,
            optimize_nanos: 2,
            execute_nanos: 3,
            est_cost: 4.5,
            paid_transactions: 6,
            ..Default::default()
        };
        let json = report.to_json();
        for key in [
            "phases",
            "est_cost",
            "paid_transactions",
            "plan_search",
            "telemetry",
        ] {
            assert!(json.get_opt(key).is_some(), "missing `{key}`");
        }
        assert_eq!(
            json.get_opt("phases").unwrap().get_opt("optimize_nanos"),
            Some(&Json::Int(2))
        );
        // The report round-trips through text as valid JSON.
        let text = json.to_string_pretty();
        payless_json::parse(&text).unwrap();
    }
}
