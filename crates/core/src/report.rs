//! The per-query report: what a query cost, where the money went, and what
//! the optimizer and executor did to keep it low.
//!
//! A [`QueryReport`] is assembled by [`crate::PayLess`] after each traced
//! query from three sources: the session's own phase timers, the
//! optimizer's [`PlanCounters`], and the drained
//! [`payless_telemetry::TelemetrySnapshot`] (spend ledger, SQR hit/miss
//! statistics, operator spans, counters, histograms). The ledger inside is
//! auditable: its totals equal the billing meter's deltas for the query.

use payless_json::{Json, ToJson};
use payless_optimizer::PlanCounters;
use payless_stats::{QErrorAccumulator, QErrorSummary};
use payless_telemetry::{DatasetSpend, OperatorTrace, SpendCell, SqrStats, TelemetrySnapshot};

/// Everything observable about one executed query.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    /// Parse + bind + analyze wall time (nanoseconds).
    pub analyze_nanos: u64,
    /// Plan-search wall time (nanoseconds).
    pub optimize_nanos: u64,
    /// Execution wall time (nanoseconds), including market calls.
    pub execute_nanos: u64,
    /// The optimizer's estimated cost (transactions, or calls in MinCalls
    /// mode).
    pub est_cost: f64,
    /// Transactions actually added to the bill by this query.
    pub paid_transactions: u64,
    /// Plan-search effort: plans costed and Theorem 2/3 pruning.
    pub counters: PlanCounters,
    /// Spend ledger, SQR statistics, operator spans, counters, histograms.
    pub telemetry: TelemetrySnapshot,
    /// Per-operator estimate-vs-actual traces, in the plan's pre-order
    /// (`EXPLAIN ANALYZE`). Empty when introspection was off.
    pub ops: Vec<OperatorTrace>,
    /// What the optimizer would have estimated with SQR disabled — the
    /// counterfactual price the store's coverage saved.
    pub est_no_sqr_cost: Option<f64>,
    /// The ideal Download-All price for the query's market tables (Eq. (1)
    /// over their full cardinalities): the paper's upper-bound baseline.
    pub download_all_cost: Option<f64>,
}

impl QueryReport {
    /// Total money spent by this query (sum of the ledger's priced pages).
    pub fn total_price(&self) -> f64 {
        self.telemetry.total_price()
    }

    /// Total pages (transactions) in the ledger. For a correctly wired
    /// pipeline this equals [`QueryReport::paid_transactions`].
    pub fn total_pages(&self) -> u64 {
        self.telemetry.total_pages()
    }

    /// Per-dataset spend rollup, in first-purchase order.
    pub fn spend_by_dataset(&self) -> Vec<DatasetSpend> {
        self.telemetry.spend_by_dataset()
    }

    /// SQR cache effectiveness for this query.
    pub fn sqr(&self) -> &SqrStats {
        &self.telemetry.sqr
    }

    /// Pages billed to operators (delivered + wasted), summed over the plan.
    /// Reconciles with [`QueryReport::total_pages`] when every call the
    /// query made belongs to an operator (i.e. not Download All's prefetch).
    pub fn operator_pages(&self) -> u64 {
        self.ops.iter().map(|o| o.actual.billed_pages()).sum()
    }

    /// Q-error summaries grouped by estimator backend, first-seen order.
    pub fn q_error_by_estimator(&self) -> Vec<(&'static str, QErrorSummary)> {
        let mut groups: Vec<(&'static str, QErrorAccumulator)> = Vec::new();
        for rec in &self.telemetry.qerrors {
            match groups.iter_mut().find(|(k, _)| *k == rec.estimator) {
                Some((_, acc)) => acc.record(rec.q),
                None => {
                    let mut acc = QErrorAccumulator::new();
                    acc.record(rec.q);
                    groups.push((rec.estimator, acc));
                }
            }
        }
        groups.into_iter().map(|(k, a)| (k, a.summary())).collect()
    }

    /// Q-error summaries grouped by table, first-seen order.
    pub fn q_error_by_table(&self) -> Vec<(String, QErrorSummary)> {
        let mut groups: Vec<(String, QErrorAccumulator)> = Vec::new();
        for rec in &self.telemetry.qerrors {
            match groups.iter_mut().find(|(k, _)| *k == *rec.table) {
                Some((_, acc)) => acc.record(rec.q),
                None => {
                    let mut acc = QErrorAccumulator::new();
                    acc.record(rec.q);
                    groups.push((rec.table.to_string(), acc));
                }
            }
        }
        groups.into_iter().map(|(k, a)| (k, a.summary())).collect()
    }

    /// Spend attribution: dataset × call-kind cells, first-purchase order.
    pub fn spend_rollup(&self) -> Vec<SpendCell> {
        self.telemetry.spend_by_dataset_kind()
    }

    /// Estimated pages SQR saved this query (no-SQR estimate minus the
    /// chosen plan's estimate); `None` when the counterfactual wasn't costed.
    pub fn est_sqr_savings(&self) -> Option<f64> {
        self.est_no_sqr_cost.map(|n| n - self.est_cost)
    }

    /// Pages paid minus the ideal Download-All price: negative means the
    /// pay-as-you-go plan beat the download-everything baseline.
    pub fn regret_vs_download_all(&self) -> Option<f64> {
        self.download_all_cost
            .map(|d| self.paid_transactions as f64 - d)
    }

    /// Machine-readable form, consumed by the bench figure binaries and by
    /// `--trace`'s JSON output.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "phases",
                Json::obj([
                    ("analyze_nanos", self.analyze_nanos.to_json()),
                    ("optimize_nanos", self.optimize_nanos.to_json()),
                    ("execute_nanos", self.execute_nanos.to_json()),
                ]),
            ),
            ("est_cost", self.est_cost.to_json()),
            ("paid_transactions", self.paid_transactions.to_json()),
            (
                "plan_search",
                Json::obj([
                    ("plans_considered", self.counters.plans_considered.to_json()),
                    ("boxes_enumerated", self.counters.boxes_enumerated.to_json()),
                    ("boxes_kept", self.counters.boxes_kept.to_json()),
                    ("theorem2_hoisted", self.counters.theorem2_hoisted.to_json()),
                    (
                        "theorem3_composed",
                        self.counters.theorem3_composed.to_json(),
                    ),
                ]),
            ),
            ("telemetry", self.telemetry.to_json()),
            ("operators", self.ops.to_json()),
            (
                "q_error",
                Json::obj([
                    ("samples", (self.telemetry.qerrors.len() as u64).to_json()),
                    (
                        "by_estimator",
                        Json::Arr(
                            self.q_error_by_estimator()
                                .into_iter()
                                .map(|(k, s)| tagged_summary("estimator", k.to_string(), s))
                                .collect(),
                        ),
                    ),
                    (
                        "by_table",
                        Json::Arr(
                            self.q_error_by_table()
                                .into_iter()
                                .map(|(k, s)| tagged_summary("table", k, s))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "rollup",
                Json::obj([
                    ("spend", self.spend_rollup().to_json()),
                    ("est_cost", self.est_cost.to_json()),
                    ("est_no_sqr_cost", self.est_no_sqr_cost.to_json()),
                    ("est_sqr_savings", self.est_sqr_savings().to_json()),
                    ("download_all_cost", self.download_all_cost.to_json()),
                    (
                        "regret_vs_download_all",
                        self.regret_vs_download_all().to_json(),
                    ),
                ]),
            ),
        ])
    }
}

/// A [`QErrorSummary`] object with a `{tag: name}` discriminator merged in.
fn tagged_summary(tag: &'static str, name: String, summary: QErrorSummary) -> Json {
    Json::obj([
        (tag, Json::Str(name)),
        ("count", summary.count.to_json()),
        ("geo_mean", summary.geo_mean.to_json()),
        ("p50", summary.p50.to_json()),
        ("p95", summary.p95.to_json()),
        ("max", summary.max.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_has_all_sections() {
        let report = QueryReport {
            analyze_nanos: 1,
            optimize_nanos: 2,
            execute_nanos: 3,
            est_cost: 4.5,
            paid_transactions: 6,
            ..Default::default()
        };
        let json = report.to_json();
        for key in [
            "phases",
            "est_cost",
            "paid_transactions",
            "plan_search",
            "telemetry",
        ] {
            assert!(json.get_opt(key).is_some(), "missing `{key}`");
        }
        assert_eq!(
            json.get_opt("phases").unwrap().get_opt("optimize_nanos"),
            Some(&Json::Int(2))
        );
        // The report round-trips through text as valid JSON.
        let text = json.to_string_pretty();
        payless_json::parse(&text).unwrap();
    }
}
