//! The PayLess session: parser + optimizer + executor + stores, wired
//! together exactly as in the paper's Figure 3.

use std::sync::Arc;
use std::time::Instant;

use payless_exec::{ensure_downloaded, ExecConfig, Executor, QueryResult, RetryPolicy};
use payless_geometry::QuerySpace;
use payless_json::{FromJson, Json, ToJson};
use payless_market::DataMarket;
use payless_metrics::MetricsHub;
use payless_optimizer::{optimize, OptimizerConfig, PlanCounters, PlanNode};
use payless_semantic::{Consistency, RewriteConfig, SemanticStore, StoreConfig};
use payless_sql::{analyze, parse, AnalyzedQuery, Catalog, MapCatalog, SelectStmt, TableLocation};
use payless_stats::{StatsBackend, StatsRegistry};
use payless_storage::{Database, LocalTable};
use payless_telemetry::Recorder;
use payless_types::{Result, Value};
use payless_workload::QueryWorkload;

use crate::report::QueryReport;

/// Which system variant a session runs — the four lines of the paper's
/// Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full PayLess: theorems + semantic query rewriting.
    PayLess,
    /// PayLess with semantic query rewriting disabled.
    PayLessNoSqr,
    /// The calls-minimizing optimizer of prior work (bushy plans, no SQR).
    MinCalls,
    /// Download every referenced market table up front, answer locally.
    DownloadAll,
    /// Ablation for Figure 14: SQR off *and* search-space pruning off
    /// (exhaustive bushy enumeration).
    DisableAll,
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct PayLessConfig {
    /// System variant.
    pub mode: Mode,
    /// Store-freshness policy (Section 4.3's consistency levels).
    pub consistency: Consistency,
    /// Algorithm 1 knobs.
    pub rewrite: RewriteConfig,
    /// Which updatable statistic backs cardinality estimation (the paper's
    /// "amenable for any updatable statistic" knob).
    pub stats_backend: StatsBackend,
    /// Retry/backoff/budget policy for market calls (the resilient call
    /// layer). The default retries transient failures a few times with
    /// millisecond backoff; see [`RetryPolicy::from_env`] for the
    /// environment knobs.
    pub retry: RetryPolicy,
    /// Semantic-store tuning: per-table view cap and compaction toggle
    /// (the CLI maps `PAYLESS_STORE_MAX_VIEWS` / `PAYLESS_STORE_COMPACT`
    /// here). Coverage is a cache — the cap bounds memory, never answers.
    pub store: StoreConfig,
}

impl Default for PayLessConfig {
    fn default() -> Self {
        PayLessConfig {
            mode: Mode::PayLess,
            consistency: Consistency::Weak,
            rewrite: RewriteConfig::default(),
            stats_backend: StatsBackend::default(),
            retry: RetryPolicy::default(),
            store: StoreConfig::default(),
        }
    }
}

impl PayLessConfig {
    /// Configuration for a given mode with defaults elsewhere.
    pub fn mode(mode: Mode) -> Self {
        PayLessConfig {
            mode,
            ..Default::default()
        }
    }
}

/// Everything a query run reports besides its rows.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result relation.
    pub result: QueryResult,
    /// Rendered plan (`None` for unsatisfiable queries and Download All).
    pub plan: Option<String>,
    /// The optimizer's estimated cost (transactions or calls by mode).
    pub est_cost: f64,
    /// Search-effort counters for this query.
    pub counters: PlanCounters,
    /// Optimization wall time in nanoseconds.
    pub optimize_nanos: u64,
    /// Execution wall time in nanoseconds.
    pub execute_nanos: u64,
    /// Full query report — present when tracing is enabled
    /// ([`PayLess::enable_tracing`]).
    pub report: Option<QueryReport>,
}

/// The result of a batch run: per-query outcomes (original order) plus the
/// execution order the scheduler chose.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One outcome per submitted query, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// The order the queries were actually executed in.
    pub execution_order: Vec<usize>,
}

/// One line of the session's query log.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// Logical time the query ran at.
    pub at: u64,
    /// The SQL (as rendered by the template; parameter-bound).
    pub summary: String,
    /// Rendered plan, if one was produced.
    pub plan: Option<String>,
    /// Estimated cost at optimization time.
    pub est_cost: f64,
    /// Actual transactions this query added to the bill.
    pub paid: u64,
    /// Rows returned.
    pub rows: usize,
}

/// Everything a session has learned, for persistence across restarts.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// Logical clock at capture time.
    pub now: u64,
    /// Local tables plus the mirror of every retrieved market tuple.
    pub db: Database,
    /// Semantic-store coverage (regions + freshness).
    pub store: SemanticStore,
    /// Refined statistics.
    pub stats: StatsRegistry,
}

impl ToJson for SessionSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("now", self.now.to_json()),
            ("db", self.db.to_json()),
            ("store", self.store.to_json()),
            ("stats", self.stats.to_json()),
        ])
    }
}

impl FromJson for SessionSnapshot {
    fn from_json(json: &Json) -> std::result::Result<Self, payless_json::JsonError> {
        Ok(SessionSnapshot {
            now: u64::from_json(json.get("now")?)?,
            db: Database::from_json(json.get("db")?)?,
            store: SemanticStore::from_json(json.get("store")?)?,
            stats: StatsRegistry::from_json(json.get("stats")?)?,
        })
    }
}

/// A PayLess installation at one data buyer.
pub struct PayLess {
    market: Arc<DataMarket>,
    catalog: MapCatalog,
    db: Database,
    store: SemanticStore,
    stats: StatsRegistry,
    cfg: PayLessConfig,
    /// Logical clock: advanced once per executed query; drives X-week
    /// consistency windows.
    now: u64,
    /// Per-query log (not persisted in snapshots).
    history: Vec<HistoryEntry>,
    /// Telemetry sink shared with the market and executor. Disabled by
    /// default; [`PayLess::enable_tracing`] turns it on.
    recorder: Arc<Recorder>,
    /// Live metrics hub, if one was attached ([`PayLess::attach_metrics`]).
    metrics: Option<Arc<MetricsHub>>,
    /// Flight recorder, if one was attached ([`PayLess::attach_events`]).
    events: Option<Arc<payless_events::EventJournal>>,
}

impl PayLess {
    /// Install PayLess over a market: registers every hosted table's schema,
    /// cardinality and query space (the "basic statistics" of Section 2.1).
    pub fn new(market: Arc<DataMarket>, cfg: PayLessConfig) -> Self {
        let mut catalog = MapCatalog::new();
        let mut stats = StatsRegistry::new().with_backend(cfg.stats_backend);
        let mut store = SemanticStore::new();
        store.set_config(cfg.store);
        for name in market.table_names() {
            let schema = market.schema(&name).expect("listed table").clone();
            let cardinality = market.cardinality(&name).expect("listed table");
            catalog.add(schema.clone(), TableLocation::Market);
            stats.register(&schema, cardinality);
            store.register(QuerySpace::of(&schema));
        }
        let recorder = Arc::new(Recorder::default());
        market.attach_recorder(recorder.clone());
        store.attach_recorder(recorder.clone());
        PayLess {
            market,
            catalog,
            db: Database::new(),
            store,
            stats,
            cfg,
            now: 0,
            history: Vec::new(),
            recorder,
            metrics: None,
            events: None,
        }
    }

    /// Attach a live metrics hub: every market call this session makes
    /// reports latency, page, and retry metrics into it
    /// (`payless_market_*`). The CLI attaches one hub to the session and
    /// to any serve layer it starts, so `\metrics` shows both.
    pub fn attach_metrics(&mut self, hub: Arc<MetricsHub>) {
        self.metrics = Some(hub);
    }

    /// Attach a flight-recorder journal: every query this session runs
    /// journals its lifecycle, call attempts/faults/retries, and store
    /// events with the query's causal id (its logical-clock tick). The CLI
    /// maps the `PAYLESS_EVENTS*` knobs onto this; the library itself
    /// never reads the environment.
    pub fn attach_events(&mut self, journal: Arc<payless_events::EventJournal>) {
        self.store.attach_events(journal.clone());
        self.events = Some(journal);
    }

    /// The attached flight-recorder journal, if any (`\why` reads it).
    pub fn events_journal(&self) -> Option<&Arc<payless_events::EventJournal>> {
        self.events.as_ref()
    }

    /// Turn per-query tracing on or off. While on, every
    /// [`QueryOutcome`] carries a [`QueryReport`] with the spend ledger,
    /// SQR statistics, plan-search counters, and phase timings. While off,
    /// the telemetry path costs one atomic load per event and allocates
    /// nothing.
    pub fn enable_tracing(&mut self, on: bool) {
        self.recorder.set_enabled(on);
    }

    /// Is per-query tracing currently on?
    pub fn tracing_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// The session's telemetry recorder (shared with the market).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Register a table in the buyer's local DBMS.
    pub fn register_local(&mut self, table: LocalTable) {
        self.catalog.add(table.schema.clone(), TableLocation::Local);
        self.stats.register(&table.schema, table.len() as u64);
        self.db.register(table);
    }

    /// The market this session fronts.
    pub fn market(&self) -> &DataMarket {
        &self.market
    }

    /// Cumulative bill so far (the paper's headline metric).
    pub fn bill(&self) -> payless_market::BillingReport {
        self.market.bill()
    }

    /// The session's logical clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Read-only view of the refined statistics (for tooling and
    /// experiments).
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Read-only view of the semantic store.
    pub fn store(&self) -> &SemanticStore {
        &self.store
    }

    /// The session's query log, oldest first.
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// Advance the logical clock by `ticks` (e.g. to simulate weeks passing
    /// for X-week consistency experiments).
    pub fn advance_clock(&mut self, ticks: u64) {
        self.now += ticks;
    }

    /// Parse a (possibly parameterized) statement into a reusable template.
    pub fn prepare(&self, sql: &str) -> Result<SelectStmt> {
        parse(sql)
    }

    /// Parse, optimize, and execute a parameter-free SQL string.
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome> {
        let stmt = self.prepare(sql)?;
        self.execute_template(&stmt, &[])
    }

    /// Optimize a parameter-free SQL string *without executing it*: returns
    /// the rendered plan and its estimated cost (transactions, or calls in
    /// MinCalls mode). Nothing is fetched and nothing is charged.
    pub fn explain(&self, sql: &str) -> Result<(String, f64)> {
        let stmt = self.prepare(sql)?;
        let bound = stmt.bind(&[])?;
        let query = analyze(&bound, &self.catalog)?;
        if query.unsatisfiable {
            return Ok(("<unsatisfiable: empty result, no plan needed>".into(), 0.0));
        }
        let optimized = optimize(
            &query,
            &self.stats,
            &self.store,
            self.market.as_ref(),
            &self.optimizer_config(),
            self.now,
        )?;
        let names = |t: usize| query.tables[t].name.to_string();
        Ok((optimized.plan.render(&names), optimized.cost.primary))
    }

    /// `EXPLAIN ANALYZE`: run `sql` with tracing forced on and return the
    /// outcome, whose report carries per-operator estimate-vs-actual traces
    /// ([`QueryReport::ops`]), q-error scores, and the spend rollup.
    ///
    /// Unlike [`PayLess::explain`] this *executes* the plan, so the market
    /// is called and money is spent — actuals cannot exist otherwise. The
    /// session's tracing flag is restored afterwards.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<QueryOutcome> {
        let was_on = self.recorder.is_enabled();
        self.recorder.set_enabled(true);
        let out = self.query(sql);
        self.recorder.set_enabled(was_on);
        out
    }

    /// The optimizer's estimate for `query` with semantic rewriting
    /// disabled: the counterfactual "what would this cost if the store's
    /// coverage didn't exist". Skipped (None) for modes that never rewrite.
    fn est_no_sqr_cost(&self, query: &AnalyzedQuery) -> Option<f64> {
        let mut cfg = self.optimizer_config();
        if !cfg.sqr {
            return None;
        }
        cfg.sqr = false;
        cfg.introspect = false;
        optimize(
            query,
            &self.stats,
            &self.store,
            self.market.as_ref(),
            &cfg,
            self.now,
        )
        .ok()
        .map(|o| o.cost.primary)
    }

    /// The ideal Download-All price for `query`: one full scan of every
    /// referenced market table at its page size (Eq. (1)), ignoring what the
    /// session has already downloaded.
    fn query_download_all_cost(&self, query: &AnalyzedQuery) -> Option<f64> {
        let mut total = 0u64;
        let mut any = false;
        for t in &query.tables {
            if t.location != TableLocation::Market {
                continue;
            }
            any = true;
            let cardinality = self.market.cardinality(&t.name)?;
            let page = self.market.page_size(&t.name)?;
            total += payless_optimizer::download_all_cost(cardinality, page);
        }
        any.then_some(total as f64)
    }

    /// Bind `params` into a template, then optimize and execute it.
    pub fn execute_template(
        &mut self,
        template: &SelectStmt,
        params: &[Value],
    ) -> Result<QueryOutcome> {
        let t_analyze = Instant::now();
        let bound = template.bind(params)?;
        let query = analyze(&bound, &self.catalog)?;
        let analyze_nanos = t_analyze.elapsed().as_nanos() as u64;
        let paid_before = self.market.bill().transactions();
        let mut out = self.run(&query)?;
        if let Some(report) = out.report.as_mut() {
            report.analyze_nanos = analyze_nanos;
        }
        self.history.push(HistoryEntry {
            at: self.now,
            summary: bound.to_string(),
            plan: out.plan.clone(),
            est_cost: out.est_cost,
            paid: self.market.bill().transactions() - paid_before,
            rows: out.result.rows.len(),
        });
        Ok(out)
    }

    fn run(&mut self, query: &AnalyzedQuery) -> Result<QueryOutcome> {
        self.now += 1;
        let qid = self.now;
        if let Some(j) = &self.events {
            j.emit(Some(qid), payless_events::Severity::Info, || {
                payless_events::EventKind::QueryStart
            });
        }
        let billed_before = self.market.bill().transactions();
        let out = self.run_inner(query);
        if let Some(j) = &self.events {
            let ok = out.is_ok();
            // Billed pages from the meter delta: a session attributes every
            // charge in this window to the one query it is running.
            let pages = self.market.bill().transactions() - billed_before;
            let sev = if ok {
                payless_events::Severity::Info
            } else {
                payless_events::Severity::Warn
            };
            j.emit(Some(qid), sev, || payless_events::EventKind::QueryDone {
                ok,
                pages,
                wasted_pages: 0,
            });
        }
        out
    }

    fn run_inner(&mut self, query: &AnalyzedQuery) -> Result<QueryOutcome> {
        let tracing = self.recorder.is_enabled();
        // Start a fresh per-query epoch *unconditionally*: a previous query
        // that failed mid-flight, or ran while tracing was toggled, must not
        // leak its ledger (wasted/delivered partition) into this one.
        self.recorder.begin_epoch();
        let paid_before = self.market.bill().transactions();
        let exec_cfg = ExecConfig {
            sqr: matches!(self.cfg.mode, Mode::PayLess | Mode::DownloadAll),
            rewrite: self.cfg.rewrite.clone(),
            consistency: self.cfg.consistency,
            recorder: Some(self.recorder.clone()),
            retry: self.cfg.retry.clone(),
            // The market's attached recorder writes this session's ledger.
            synthesize_ledger: false,
            metrics: self.metrics.clone(),
            events: self.events.clone(),
        };

        // Unsatisfiable queries cost nothing.
        if query.unsatisfiable {
            let executor = Executor::new(
                query,
                &self.market,
                &mut self.db,
                &mut self.store,
                &mut self.stats,
                &exec_cfg,
                self.now,
            );
            return Ok(QueryOutcome {
                result: executor.empty_result()?,
                plan: None,
                est_cost: 0.0,
                counters: PlanCounters::default(),
                optimize_nanos: 0,
                execute_nanos: 0,
                report: tracing.then(|| QueryReport {
                    telemetry: self.recorder.take(),
                    ..Default::default()
                }),
            });
        }

        // Download All: make every referenced market table local-complete
        // first; the optimizer then finds a zero-cost plan.
        if self.cfg.mode == Mode::DownloadAll {
            let _span = self.recorder.span("phase.download-all", || None);
            let scope = self
                .events
                .as_deref()
                .map(|j| payless_events::EventScope::new(j, self.now));
            for t in &query.tables {
                if t.location == TableLocation::Market {
                    ensure_downloaded(
                        &t.schema,
                        &self.market,
                        &mut self.db,
                        &mut self.store,
                        &mut self.stats,
                        self.now,
                        Some(self.recorder.as_ref()),
                        &self.cfg.retry,
                        self.metrics.as_deref(),
                        scope.as_ref(),
                    )?;
                }
            }
        }

        let mut opt_cfg = self.optimizer_config();
        opt_cfg.introspect = tracing;
        let t0 = Instant::now();
        let optimized = optimize(
            query,
            &self.stats,
            &self.store,
            self.market.as_ref(),
            &opt_cfg,
            self.now,
        )?;
        let optimize_nanos = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let mut executor = Executor::new(
            query,
            &self.market,
            &mut self.db,
            &mut self.store,
            &mut self.stats,
            &exec_cfg,
            self.now,
        );
        let result = executor.execute(&optimized.plan)?;
        let execute_nanos = t1.elapsed().as_nanos() as u64;
        let actuals = executor.op_actuals().to_vec();

        let names = |t: usize| query.tables[t].name.to_string();
        let report = if tracing {
            // Zip the optimizer's estimates with the executor's actuals:
            // both sides number operators in pre-order.
            let mut ops = optimized.ops.clone();
            for (trace, actual) in ops.iter_mut().zip(actuals) {
                trace.actual = actual;
            }
            Some(QueryReport {
                analyze_nanos: 0, // patched in by execute_template
                optimize_nanos,
                execute_nanos,
                est_cost: optimized.cost.primary,
                paid_transactions: self.market.bill().transactions() - paid_before,
                counters: optimized.counters,
                telemetry: self.recorder.take(),
                ops,
                est_no_sqr_cost: self.est_no_sqr_cost(query),
                download_all_cost: self.query_download_all_cost(query),
            })
        } else {
            None
        };
        Ok(QueryOutcome {
            result,
            plan: Some(render_plan(&optimized.plan, &names)),
            est_cost: optimized.cost.primary,
            counters: optimized.counters,
            optimize_nanos,
            execute_nanos,
            report,
        })
    }

    // ------------------------------------------------------------------
    // Multi-query (batch) optimization — the paper's future work
    // ------------------------------------------------------------------

    /// Execute a batch of queries in a cost-aware order.
    ///
    /// The paper's conclusion sketches this: "we will incorporate
    /// multi-query optimization in PayLess if users are willing to defer
    /// theirs to become a batch". The total money for a batch is the price
    /// of the *union* of regions fetched plus per-call page-rounding
    /// overhead; fetching large regions first lets smaller overlapping
    /// queries ride for free instead of pre-fragmenting the space into many
    /// partially-filled transactions. The scheduler therefore runs queries
    /// in descending order of estimated retrieval volume (estimated cost as
    /// tiebreak), re-using everything earlier queries stored.
    ///
    /// Results are returned in the *original* batch order, along with the
    /// execution order chosen.
    pub fn query_batch(&mut self, batch: &[(&SelectStmt, Vec<Value>)]) -> Result<BatchOutcome> {
        // Estimate each query against the current store: (idx, records, cost).
        let mut keyed: Vec<(usize, f64, f64)> = Vec::with_capacity(batch.len());
        for (i, (stmt, params)) in batch.iter().enumerate() {
            let bound = stmt.bind(params)?;
            let query = analyze(&bound, &self.catalog)?;
            if query.unsatisfiable {
                keyed.push((i, 0.0, 0.0));
                continue;
            }
            let opt = optimize(
                &query,
                &self.stats,
                &self.store,
                self.market.as_ref(),
                &self.optimizer_config(),
                self.now,
            )?;
            keyed.push((i, opt.cost.secondary, opt.cost.primary));
        }
        // Descending volume, then descending cost, then original order.
        keyed.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.0.cmp(&b.0))
        });
        let execution_order: Vec<usize> = keyed.iter().map(|(i, _, _)| *i).collect();

        let mut outcomes: Vec<Option<QueryOutcome>> = (0..batch.len()).map(|_| None).collect();
        for &i in &execution_order {
            let (stmt, params) = &batch[i];
            outcomes[i] = Some(self.execute_template(stmt, params)?);
        }
        Ok(BatchOutcome {
            outcomes: outcomes.into_iter().map(|o| o.expect("all ran")).collect(),
            execution_order,
        })
    }

    // ------------------------------------------------------------------
    // Session persistence
    // ------------------------------------------------------------------

    /// Capture everything the session has learned and retrieved: the local
    /// mirror (all rows ever fetched), the semantic-store coverage, the
    /// refined statistics, and the logical clock.
    ///
    /// PayLess "deliberately uses cheap storage space to store all
    /// intermediate results" (Section 3) — a real installation persists this
    /// state across restarts so the organization keeps the data it paid for.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            now: self.now,
            db: self.db.clone(),
            store: self.store.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Rebuild a session from a snapshot. Tables present in the snapshot's
    /// database but not hosted by the market are re-registered as local.
    pub fn restore(market: Arc<DataMarket>, cfg: PayLessConfig, snapshot: SessionSnapshot) -> Self {
        let mut pl = PayLess::new(market, cfg);
        for name in snapshot.db.table_names() {
            if pl.catalog.schema(&name).is_none() {
                let table = snapshot.db.table(&name).expect("listed table");
                pl.catalog.add(table.schema.clone(), TableLocation::Local);
                pl.stats.register(&table.schema, table.len() as u64);
            }
        }
        pl.db = snapshot.db;
        pl.store = snapshot.store;
        // The snapshot carries neither config nor recorder — both belong to
        // the session, not the persisted coverage. Re-apply this session's.
        pl.store.set_config(pl.cfg.store);
        pl.store.attach_recorder(pl.recorder.clone());
        pl.stats = snapshot.stats;
        pl.now = snapshot.now;
        pl
    }

    /// Serialize the session state to JSON.
    pub fn to_json(&self) -> Result<String> {
        Ok(ToJson::to_json(&self.snapshot()).to_string_compact())
    }

    /// Restore a session from [`PayLess::to_json`] output.
    pub fn from_json(market: Arc<DataMarket>, cfg: PayLessConfig, json: &str) -> Result<Self> {
        let parsed = payless_json::parse(json)
            .map_err(|e| payless_types::PaylessError::Internal(format!("deserialize: {e}")))?;
        let snapshot = SessionSnapshot::from_json(&parsed)
            .map_err(|e| payless_types::PaylessError::Internal(format!("deserialize: {e}")))?;
        Ok(Self::restore(market, cfg, snapshot))
    }

    fn optimizer_config(&self) -> OptimizerConfig {
        let mut cfg = match self.cfg.mode {
            Mode::PayLess | Mode::DownloadAll => OptimizerConfig::payless(),
            Mode::PayLessNoSqr => OptimizerConfig::payless_no_sqr(),
            Mode::MinCalls => OptimizerConfig::min_calls(),
            Mode::DisableAll => OptimizerConfig::disable_all(),
        };
        cfg.rewrite = self.cfg.rewrite.clone();
        cfg.consistency = self.cfg.consistency;
        cfg
    }
}

fn render_plan(plan: &PlanNode, names: &dyn Fn(usize) -> String) -> String {
    plan.render(names)
}

/// Bundle a workload's market tables into a single-dataset [`DataMarket`]
/// with the given page size `t` (tuples per transaction).
pub fn build_market(workload: &(dyn QueryWorkload + '_), page_size: u64) -> DataMarket {
    let mut dataset = payless_market::Dataset::new("market").with_page_size(page_size);
    for t in workload.market_tables() {
        dataset = dataset.with_table(t.clone());
    }
    DataMarket::new(vec![dataset])
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_workload::{RealWorkload, WhwConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session(mode: Mode) -> (Arc<DataMarket>, PayLess, RealWorkload) {
        let workload = RealWorkload::generate(&WhwConfig {
            stations: 48,
            countries: 4,
            cities_per_country: 3,
            days: 60,
            zips: 60,
            ranks: 100,
            seed: 3,
        });
        let market = Arc::new(build_market(&workload, 100));
        let mut pl = PayLess::new(market.clone(), PayLessConfig::mode(mode));
        for t in QueryWorkload::local_tables(&workload) {
            pl.register_local(t.clone());
        }
        (market, pl, workload)
    }

    #[test]
    fn simple_select_returns_rows_and_charges() {
        let (market, mut pl, _) = session(Mode::PayLess);
        let out = pl
            .query(
                "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
                 Weather.Date >= 5 AND Weather.Date <= 9",
            )
            .unwrap();
        // 12 stations per country x 5 days.
        assert_eq!(out.result.rows.len(), 60);
        assert!(market.bill().transactions() > 0);
        assert!(out.plan.is_some());
    }

    #[test]
    fn repeat_query_is_free_with_sqr() {
        let (market, mut pl, _) = session(Mode::PayLess);
        let sql = "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
                   Weather.Date >= 5 AND Weather.Date <= 9";
        let first = pl.query(sql).unwrap();
        let after_first = market.bill().transactions();
        let second = pl.query(sql).unwrap();
        assert_eq!(market.bill().transactions(), after_first);
        assert_eq!(first.result, second.result);
    }

    #[test]
    fn overlapping_query_fetches_only_remainder() {
        let (market, mut pl, _) = session(Mode::PayLess);
        pl.query(
            "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
             Weather.Date >= 10 AND Weather.Date <= 29",
        )
        .unwrap();
        let mid = market.bill();
        // Extend the window on both sides: only days 5-9 and 30-34 are new.
        let out = pl
            .query(
                "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
                 Weather.Date >= 5 AND Weather.Date <= 34",
            )
            .unwrap();
        assert_eq!(out.result.rows.len(), 12 * 30);
        let added_records = market.bill().records() - mid.records();
        assert_eq!(added_records, 12 * 10); // only the two remainder slices
    }

    #[test]
    fn no_sqr_mode_pays_again() {
        let (market, mut pl, _) = session(Mode::PayLessNoSqr);
        let sql = "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
                   Weather.Date >= 5 AND Weather.Date <= 9";
        pl.query(sql).unwrap();
        let after_first = market.bill().transactions();
        pl.query(sql).unwrap();
        assert_eq!(market.bill().transactions(), 2 * after_first);
    }

    #[test]
    fn download_all_pays_once_per_table() {
        let (market, mut pl, _) = session(Mode::DownloadAll);
        let sql = "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
                   Weather.Date >= 5 AND Weather.Date <= 9";
        let out = pl.query(sql).unwrap();
        assert_eq!(out.result.rows.len(), 60);
        let full = market.bill().transactions();
        // Whole Weather table: 48 stations x 60 days / page 100.
        assert_eq!(full, (48u64 * 60).div_ceil(100));
        pl.query(sql).unwrap();
        assert_eq!(market.bill().transactions(), full);
    }

    #[test]
    fn templates_and_params() {
        let (_, mut pl, workload) = session(Mode::PayLess);
        let mut rng = StdRng::seed_from_u64(1);
        for (i, tmpl) in workload.templates().iter().enumerate() {
            let stmt = pl.prepare(tmpl).unwrap();
            let params = workload.sample_params(i, &mut rng);
            let out = pl.execute_template(&stmt, &params).unwrap();
            assert!(
                !out.result.rows.is_empty(),
                "template {i} returned empty for {params:?}"
            );
        }
    }

    #[test]
    fn aggregate_query_shapes() {
        let (_, mut pl, _) = session(Mode::PayLess);
        let out = pl
            .query(
                "SELECT AVG(Temperature) FROM Station, Weather WHERE \
                 Station.Country = Weather.Country = 'Country2' AND \
                 Weather.Date >= 1 AND Weather.Date <= 10 AND \
                 Station.StationID = Weather.StationID GROUP BY City",
            )
            .unwrap();
        assert_eq!(out.result.columns, vec!["AVG(Temperature)".to_string()]);
        // Country2 has 3 cities.
        assert_eq!(out.result.rows.len(), 3);
    }

    #[test]
    fn unsatisfiable_query_is_free_and_empty() {
        let (market, mut pl, _) = session(Mode::PayLess);
        let out = pl
            .query("SELECT * FROM Station WHERE City = 'City0' AND City = 'City1'")
            .unwrap();
        assert!(out.result.rows.is_empty());
        assert!(out.plan.is_none());
        assert_eq!(market.bill().transactions(), 0);
    }

    #[test]
    fn min_calls_mode_runs_and_costs_more() {
        let (mc_market, mut mc, workload) = session(Mode::MinCalls);
        let (pl_market, mut pl, _) = session(Mode::PayLess);
        let mut rng = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        for (i, tmpl) in workload.templates().iter().enumerate() {
            let stmt = mc.prepare(tmpl).unwrap();
            for _ in 0..3 {
                let p1 = workload.sample_params(i, &mut rng);
                let p2 = workload.sample_params(i, &mut rng2);
                assert_eq!(p1, p2);
                let a = mc.execute_template(&stmt, &p1).unwrap();
                let b = pl.execute_template(&stmt, &p2).unwrap();
                // Same answers from both systems.
                let mut ra = a.result.rows.clone();
                let mut rb = b.result.rows.clone();
                ra.sort();
                rb.sort();
                assert_eq!(ra, rb, "template {i} result mismatch");
            }
        }
        assert!(
            pl_market.bill().transactions() <= mc_market.bill().transactions(),
            "PayLess {} should not exceed MinCalls {}",
            pl_market.bill().transactions(),
            mc_market.bill().transactions()
        );
    }

    #[test]
    fn strong_consistency_disables_reuse() {
        let workload = RealWorkload::generate(&WhwConfig {
            stations: 24,
            countries: 2,
            cities_per_country: 3,
            days: 30,
            zips: 40,
            ranks: 100,
            seed: 3,
        });
        let market = Arc::new(build_market(&workload, 100));
        let cfg = PayLessConfig {
            consistency: Consistency::Strong,
            ..Default::default()
        };
        let mut pl = PayLess::new(market.clone(), cfg);
        let sql = "SELECT * FROM Weather WHERE Weather.Country = 'Country0' AND \
                   Weather.Date >= 1 AND Weather.Date <= 5";
        pl.query(sql).unwrap();
        let first = market.bill().transactions();
        pl.query(sql).unwrap();
        assert_eq!(market.bill().transactions(), 2 * first);
    }

    #[test]
    fn batch_runs_big_queries_first_and_saves_transactions() {
        // Small ⊂ big with page rounding: small-first costs two partially
        // filled transactions; big-first costs one full call, and the small
        // query rides for free.
        use payless_market::MarketTable;
        use payless_types::{row, Column, Domain, Row, Schema};
        let schema = Schema::new(
            "R",
            vec![
                Column::free("a", Domain::int(0, 99)),
                Column::output("v", Domain::int(0, 10_000)),
            ],
        );
        let rows: Vec<Row> = (0..100).map(|i| row!(i as i64, i as i64)).collect();
        let build = || {
            Arc::new(DataMarket::new(vec![payless_market::Dataset::new("DS")
                .with_page_size(100)
                .with_table(MarketTable::new(schema.clone(), rows.clone()))]))
        };
        let small = "SELECT * FROM R WHERE a >= 0 AND a <= 49";
        let big = "SELECT * FROM R WHERE a >= 0 AND a <= 99";

        // Sequential in submission order (small first): 1 + 1 transactions.
        let market_seq = build();
        let mut seq = PayLess::new(market_seq.clone(), PayLessConfig::default());
        seq.query(small).unwrap();
        seq.query(big).unwrap();
        assert_eq!(market_seq.bill().transactions(), 2);

        // Batched: the scheduler runs `big` first; total is 1 transaction.
        let market_batch = build();
        let mut batch = PayLess::new(market_batch.clone(), PayLessConfig::default());
        let s_small = batch.prepare(small).unwrap();
        let s_big = batch.prepare(big).unwrap();
        let out = batch
            .query_batch(&[(&s_small, vec![]), (&s_big, vec![])])
            .unwrap();
        assert_eq!(out.execution_order, vec![1, 0]);
        assert_eq!(market_batch.bill().transactions(), 1);
        // Results come back in submission order.
        assert_eq!(out.outcomes[0].result.rows.len(), 50);
        assert_eq!(out.outcomes[1].result.rows.len(), 100);
    }

    #[test]
    fn explain_analyze_pairs_estimates_with_actuals() {
        let (market, mut pl, _) = session(Mode::PayLess);
        assert!(!pl.tracing_enabled());
        let out = pl
            .explain_analyze(
                "SELECT Temperature FROM Station, Weather WHERE \
                 Station.Country = 'Country1' AND \
                 Weather.Date >= 5 AND Weather.Date <= 9 AND \
                 Station.StationID = Weather.StationID",
            )
            .unwrap();
        // The flag is restored, the query really executed and paid.
        assert!(!pl.tracing_enabled());
        assert!(market.bill().transactions() > 0);
        let report = out.report.expect("explain analyze always traces");
        assert!(!report.ops.is_empty());
        // Every operator carries both sides; ids are pre-order.
        for (i, op) in report.ops.iter().enumerate() {
            assert_eq!(op.id, i);
            assert!(!op.label.is_empty());
        }
        // The plan bought pages, and they reconcile with the ledger.
        assert!(report.operator_pages() > 0);
        assert_eq!(report.operator_pages(), report.total_pages());
        assert_eq!(report.paid_transactions, report.total_pages());
        // Estimates were scored against actuals at the feedback chokepoint.
        assert!(!report.telemetry.qerrors.is_empty());
        for q in &report.telemetry.qerrors {
            assert!(q.q >= 1.0 && q.q.is_finite());
        }
        // Counterfactuals: SQR savings and the Download-All baseline.
        assert!(report.est_no_sqr_cost.is_some());
        let da = report.download_all_cost.expect("market tables referenced");
        assert!(da > 0.0);
        // Report JSON carries the new sections.
        let json = report.to_json();
        assert!(!json.get("operators").unwrap().as_arr().unwrap().is_empty());
        assert!(json.get("q_error").is_ok());
        assert!(json.get("rollup").is_ok());
    }

    #[test]
    fn sequential_queries_report_independent_ledgers() {
        // Satellite regression: the second query's report must not inherit
        // the first one's wasted/delivered partition.
        let (_, mut pl, _) = session(Mode::PayLess);
        pl.enable_tracing(true);
        let first = pl
            .query(
                "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
                 Weather.Date >= 5 AND Weather.Date <= 9",
            )
            .unwrap()
            .report
            .unwrap();
        let second = pl
            .query(
                "SELECT * FROM Weather WHERE Weather.Country = 'Country2' AND \
                 Weather.Date >= 5 AND Weather.Date <= 9",
            )
            .unwrap()
            .report
            .unwrap();
        assert!(first.total_pages() > 0);
        assert!(second.total_pages() > 0);
        // Each ledger holds only its own query's lines.
        assert_eq!(
            first.total_pages() + second.total_pages(),
            first.paid_transactions + second.paid_transactions
        );
        // The epoch reset restarts the ledger's sequence numbering.
        assert_eq!(second.telemetry.ledger[0].seq, 0);
    }

    #[test]
    fn session_round_trips_through_json() {
        let (market, mut pl, workload) = session(Mode::PayLess);
        let sql = "SELECT * FROM Weather WHERE Weather.Country = 'Country1' AND \
                   Weather.Date >= 5 AND Weather.Date <= 9";
        let first = pl.query(sql).unwrap();
        let paid = market.bill().transactions();
        let json = pl.to_json().unwrap();
        drop(pl);

        // A restored session reuses everything the old one paid for.
        let mut restored =
            PayLess::from_json(market.clone(), PayLessConfig::default(), &json).unwrap();
        let again = restored.query(sql).unwrap();
        assert_eq!(market.bill().transactions(), paid);
        assert_eq!(first.result, again.result);
        // Local tables survive too.
        let zips = restored
            .query("SELECT * FROM ZipMap WHERE City = 'City0'")
            .unwrap();
        let direct = workload.local_tables()[0]
            .rows()
            .iter()
            .filter(|r| r.get(1).as_str() == Some("City0"))
            .count();
        assert_eq!(zips.result.rows.len(), direct);
        assert_eq!(market.bill().transactions(), paid);
    }

    #[test]
    fn snapshot_preserves_clock_for_window_consistency() {
        let (market, _, workload) = session(Mode::PayLess);
        let cfg = PayLessConfig {
            consistency: Consistency::Window(3),
            ..Default::default()
        };
        let mut pl = PayLess::new(market.clone(), cfg.clone());
        for t in QueryWorkload::local_tables(&workload) {
            pl.register_local(t.clone());
        }
        let sql = "SELECT * FROM Weather WHERE Weather.Country = 'Country2' AND \
                   Weather.Date >= 1 AND Weather.Date <= 5";
        pl.query(sql).unwrap();
        pl.advance_clock(10);
        let snap = pl.snapshot();
        assert!(snap.now >= 10);
        let mut restored = PayLess::restore(market.clone(), cfg, snap);
        // The stored view is stale relative to the restored clock; the query
        // must pay again.
        let before = market.bill().transactions();
        restored.query(sql).unwrap();
        assert!(market.bill().transactions() > before);
    }

    #[test]
    fn window_consistency_expires_coverage() {
        let workload = RealWorkload::generate(&WhwConfig {
            stations: 24,
            countries: 2,
            cities_per_country: 3,
            days: 30,
            zips: 40,
            ranks: 100,
            seed: 3,
        });
        let market = Arc::new(build_market(&workload, 100));
        let cfg = PayLessConfig {
            consistency: Consistency::Window(5),
            ..Default::default()
        };
        let mut pl = PayLess::new(market.clone(), cfg);
        let sql = "SELECT * FROM Weather WHERE Weather.Country = 'Country0' AND \
                   Weather.Date >= 1 AND Weather.Date <= 5";
        pl.query(sql).unwrap();
        let first = market.bill().transactions();
        // Within the window: free.
        pl.query(sql).unwrap();
        assert_eq!(market.bill().transactions(), first);
        // After the window: refetch.
        pl.advance_clock(10);
        pl.query(sql).unwrap();
        assert_eq!(market.bill().transactions(), 2 * first);
    }
}
