//! # PayLess — pay-less query optimization over cloud data markets
//!
//! A complete implementation of the system described in *Query Optimization
//! over Cloud Data Market* (Li, Lo, Yiu, Xu — EDBT 2015).
//!
//! A [`PayLess`] session fronts a [`payless_market::DataMarket`] with a SQL
//! interface. Queries may mix local tables with market tables; PayLess
//! optimizes each query to minimize the **money paid to data sellers**
//! (market *transactions*, not calls or latency), by combining:
//!
//! * a cost-based dynamic-programming optimizer restricted (losslessly) to
//!   left-deep plans with bind joins as an access path;
//! * a *semantic store* retaining every retrieved result, so later queries
//!   are rewritten to fetch only the missing *remainder* regions;
//! * feedback-driven statistics that refine with every retrieval.
//!
//! ```
//! use payless_core::{PayLess, PayLessConfig};
//! use payless_workload::{QueryWorkload, RealWorkload, WhwConfig};
//! use std::sync::Arc;
//!
//! // A synthetic weather data market (the paper's running example).
//! let workload = RealWorkload::generate(&WhwConfig::scaled(0.01));
//! let market = Arc::new(payless_core::build_market(&workload, 100));
//! let mut payless = PayLess::new(market.clone(), PayLessConfig::default());
//! for t in workload.local_tables() {
//!     payless.register_local(t.clone());
//! }
//!
//! let out = payless
//!     .query("SELECT * FROM Weather WHERE Weather.Country = 'Country0' \
//!             AND Weather.Date >= 10 AND Weather.Date <= 12")
//!     .unwrap();
//! assert!(!out.result.rows.is_empty());
//! // Asking again is free: the semantic store already covers the region.
//! let before = market.bill().transactions();
//! payless.query("SELECT * FROM Weather WHERE Weather.Country = 'Country0' \
//!                AND Weather.Date >= 10 AND Weather.Date <= 12").unwrap();
//! assert_eq!(market.bill().transactions(), before);
//! ```

#![warn(missing_docs)]

pub mod report;
pub mod session;

pub use payless_events::{
    known_queries, provenance, render_provenance, Event, EventJournal, EventKind, EventsConfig,
    Provenance, Severity,
};
pub use payless_exec::{
    CallBudget, CallCoalescer, CallOutcome, ExecState, QueryResult, RetryPolicy, SharedState,
};
pub use payless_market::{BillingReport, DataMarket, Dataset, FaultInjector, FaultKind, FaultPlan};
pub use payless_metrics::{enabled_from_env, MetricsConfig, MetricsHub};
pub use payless_optimizer::PlanCounters;
pub use payless_semantic::{Consistency, RewriteConfig, SharedSemanticStore, StoreConfig};
pub use payless_sql::SelectStmt;
pub use payless_stats::StatsBackend;
pub use payless_stats::{q_error, QErrorAccumulator, QErrorSummary};
pub use payless_telemetry::{
    CallKind, ChromeTraceBuilder, DatasetSpend, OperatorActual, OperatorEstimate, OperatorTrace,
    QErrorRecord, Recorder, SpendCell, SqrStats, TelemetrySnapshot, TransactionRecord,
};
pub use report::QueryReport;
pub use session::{
    build_market, BatchOutcome, HistoryEntry, Mode, PayLess, PayLessConfig, QueryOutcome,
    SessionSnapshot,
};
