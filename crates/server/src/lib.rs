//! Network serving front end: a std-only HTTP/1.1 listener over the
//! concurrent serve layer, plus snapshot + append-log durability of the
//! shared semantic store.
//!
//! The REST surface mirrors the CLI's session commands:
//!
//! | endpoint            | maps to                                        |
//! |---------------------|------------------------------------------------|
//! | `POST /v1/query`    | query submit (binary rows + `X-Payless-*` spend headers) |
//! | `GET /v1/report`    | `\report` — billing meter + server config      |
//! | `GET /v1/metrics`   | `\metrics` — exposition text                   |
//! | `GET /v1/why?query=N` | `\why N` — flight-recorder provenance        |
//! | `GET /v1/store`     | durability status (ledger vs meter, recovery)  |
//! | `GET /v1/health`    | liveness probe                                 |
//! | `POST /v1/shutdown` | graceful drain + final snapshot                |
//!
//! Query results ride the existing market wire codec
//! ([`payless_market::encode_rows`]); spend telemetry rides response
//! headers, so a driver can reconcile Σ ledger == meter without a second
//! round trip. Every settled purchase is appended to the write-ahead log
//! before the server answers more traffic (see [`persist`]).

#![warn(missing_docs)]

pub mod http;
pub mod persist;

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use payless_core::{
    build_market, known_queries, render_provenance, DataMarket, EventJournal, EventsConfig,
    FaultInjector, FaultPlan, MetricsConfig, MetricsHub, RetryPolicy, SelectStmt,
};
use payless_geometry::QuerySpace;
use payless_json::{Json, ToJson};
use payless_serve::{Serve, ServeConfig};
use payless_types::Value;
use payless_workload::{QueryWorkload, RealWorkload, WhwConfig};

use http::{read_request, write_response, Request};
use persist::{DurableStore, PersistConfig};

/// Everything the server needs to boot. Libraries never read the
/// environment — `main.rs` maps `PAYLESS_*` knobs onto this struct.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (tests, CI).
    pub listen: String,
    /// Market page size in records (spend granularity).
    pub page_size: u64,
    /// WHW generator scale (must match the oracle's for digest parity).
    pub scale: f64,
    /// Single-flight call coalescing across concurrent clients.
    pub coalesce: bool,
    /// Chaos-inject the market at this seed (retries become unlimited).
    pub fault_seed: Option<u64>,
    /// Cross-query batch purchasing, if enabled.
    pub batch: Option<payless_serve::BatchConfig>,
    /// Data directory for WAL + snapshot; `None` serves memory-only.
    pub data_dir: Option<PathBuf>,
    /// Durability tuning + crash injection (ignored without `data_dir`).
    pub persist: PersistConfig,
    /// How often the background snapshotter polls the append count.
    pub snapshot_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            page_size: 1,
            scale: 0.02,
            coalesce: true,
            fault_seed: None,
            batch: None,
            data_dir: None,
            persist: PersistConfig::default(),
            snapshot_poll: Duration::from_millis(25),
        }
    }
}

struct Shared {
    serve: Serve,
    market: Arc<DataMarket>,
    templates: Vec<SelectStmt>,
    durable: Option<Arc<DurableStore>>,
    hub: Arc<MetricsHub>,
    journal: Arc<EventJournal>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    queries_served: AtomicU64,
    active_conns: AtomicU64,
}

/// A running server: listener bound, store recovered, snapshotter armed.
/// Call [`Server::run`] to serve until a graceful shutdown is requested.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    snapshotter: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Build the market + serve layer (recovering the semantic store from
    /// `cfg.data_dir` when set) and bind the listener. Fails loudly on an
    /// unrecoverable store — never serve from corrupt money math.
    pub fn start(cfg: ServerConfig) -> Result<Server, String> {
        let w = RealWorkload::generate(&WhwConfig::scaled(cfg.scale));
        let market = Arc::new(build_market(&w, cfg.page_size));
        if let Some(fs) = cfg.fault_seed {
            market.attach_fault_injector(FaultInjector::new(FaultPlan::chaos(fs)));
        }
        let hub = Arc::new(MetricsHub::new(MetricsConfig::default()));
        let journal = EventJournal::from_config(&EventsConfig::default());

        let (durable, warm_store, warm_mirror) = match &cfg.data_dir {
            Some(dir) => {
                let spaces: Vec<QuerySpace> = market
                    .table_names()
                    .iter()
                    .map(|name| QuerySpace::of(market.schema(name).expect("listed table")))
                    .collect();
                let (durable, store, mirror) = DurableStore::open(dir, cfg.persist, &spaces)?;
                let status = durable.status();
                if !status.reconciles() {
                    return Err("recovered store does not reconcile".into());
                }
                (Some(Arc::new(durable)), store, mirror)
            }
            None => (None, payless_semantic::SemanticStore::new(), Vec::new()),
        };

        let serve_cfg = ServeConfig {
            coalesce: cfg.coalesce,
            retry: if cfg.fault_seed.is_some() {
                RetryPolicy::unlimited()
            } else {
                RetryPolicy::default()
            },
            metrics: Some(Arc::clone(&hub)),
            events: Some(Arc::clone(&journal)),
            batch: cfg.batch,
            ..ServeConfig::default()
        };
        let serve = Serve::with_store(Arc::clone(&market), w.local_tables(), serve_cfg, warm_store);
        // Seed the recovered mirror rows before any traffic: a store that
        // claims coverage must also have the data behind it.
        for (table, rows) in warm_mirror {
            serve
                .seed_mirror(&table, rows)
                .map_err(|e| format!("seed recovered mirror for {table}: {e}"))?;
        }
        if let Some(d) = &durable {
            d.attach(serve.shared_store());
            let me = Arc::clone(d);
            serve.attach_row_observer(Arc::new(move |table, rows| me.append_rows(table, rows)));
        }
        let templates = w
            .templates()
            .iter()
            .map(|sql| serve.prepare(sql))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("workload template: {e}"))?;

        let listener =
            TcpListener::bind(&cfg.listen).map_err(|e| format!("bind {}: {e}", cfg.listen))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;

        let shared = Arc::new(Shared {
            serve,
            market,
            templates,
            durable,
            hub,
            journal,
            cfg,
            shutdown: AtomicBool::new(false),
            queries_served: AtomicU64::new(0),
            active_conns: AtomicU64::new(0),
        });

        // Background snapshotter: compacts the log whenever the append
        // threshold is crossed, then one final snapshot at shutdown.
        let snapshotter = shared.durable.as_ref().map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let durable = shared.durable.as_ref().expect("spawned only when durable");
                while !shared.shutdown.load(Ordering::SeqCst) {
                    let dump = || shared.serve.mirror_dump();
                    if let Err(e) = durable.maybe_snapshot(shared.serve.shared_store(), &dump) {
                        eprintln!("payless-server: snapshot failed: {e}");
                    }
                    std::thread::park_timeout(shared.cfg.snapshot_poll);
                }
            })
        });

        Ok(Server {
            listener,
            addr,
            shared,
            snapshotter,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept and serve connections until `POST /v1/shutdown` (one thread
    /// per connection; the serve layer is built for exactly this kind of
    /// concurrency). Drains in-flight connections, stops the snapshotter,
    /// and takes a final snapshot before returning.
    pub fn run(self) -> Result<(), String> {
        let mut workers = Vec::new();
        for conn in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("payless-server: accept failed: {e}");
                    continue;
                }
            };
            let shared = Arc::clone(&self.shared);
            shared.active_conns.fetch_add(1, Ordering::SeqCst);
            workers.push(std::thread::spawn(move || {
                let peer = stream.peer_addr().ok();
                if let Err(e) = serve_connection(&shared, stream) {
                    eprintln!(
                        "payless-server: connection {} dropped: {e}",
                        peer.map(|p| p.to_string()).unwrap_or_default()
                    );
                }
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            }));
            // Reap finished workers so a long-lived server does not
            // accumulate join handles.
            workers.retain(|h| !h.is_finished());
        }
        for h in workers {
            let _ = h.join();
        }
        if let Some(h) = self.snapshotter {
            h.thread().unpark();
            let _ = h.join();
        }
        if let Some(d) = &self.shared.durable {
            d.snapshot(self.shared.serve.shared_store(), &|| {
                self.shared.serve.mirror_dump()
            })?;
        }
        Ok(())
    }
}

/// Handle one connection: parse requests until the peer closes or asks to,
/// answering parse failures with their mapped status before giving up.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) -> Result<(), String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(e) => {
                let (status, reason) = e.status();
                let body = format!("{e}\n");
                let _ = write_response(
                    &mut writer,
                    status,
                    reason,
                    &[],
                    "text/plain",
                    body.as_bytes(),
                    false,
                );
                return Err(e.to_string());
            }
        };
        let keep_alive = req.keep_alive();
        let shutdown_after = req.method == "POST" && req.path == "/v1/shutdown";
        let resp = route(shared, &req);
        write_response(
            &mut writer,
            resp.status,
            resp.reason,
            &resp.headers,
            resp.content_type,
            &resp.body,
            keep_alive && !shutdown_after,
        )
        .map_err(|e| e.to_string())?;
        if shutdown_after {
            shared.shutdown.store(true, Ordering::SeqCst);
            // The accept loop blocks in `incoming()`; poke it awake so it
            // observes the flag without waiting for outside traffic.
            let _ = TcpStream::connect(writer.local_addr().map_err(|e| e.to_string())?);
            return Ok(());
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

struct Response {
    status: u16,
    reason: &'static str,
    headers: Vec<(String, String)>,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn text(status: u16, reason: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            reason,
            headers: Vec::new(),
            content_type: "text/plain",
            body: body.into().into_bytes(),
        }
    }

    fn json(j: &Json) -> Response {
        Response {
            status: 200,
            reason: "OK",
            headers: Vec::new(),
            content_type: "application/json",
            body: j.to_string_pretty().into_bytes(),
        }
    }
}

fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/health") => Response::text(200, "OK", "ok\n"),
        ("POST", "/v1/query") => run_query(shared, req),
        ("GET", "/v1/report") => report(shared),
        ("GET", "/v1/metrics") => {
            shared.hub.roll();
            Response::text(200, "OK", shared.hub.exposition())
        }
        ("GET", "/v1/why") => why(shared, req),
        ("GET", "/v1/store") => store_status(shared),
        ("POST", "/v1/shutdown") => Response::text(200, "OK", "shutting down\n"),
        _ => Response::text(
            404,
            "Not Found",
            format!("no route {} {}\n", req.method, req.path),
        ),
    }
}

/// `POST /v1/query`: body `{"template": N, "params": [...]}`, answer is
/// the binary row codec plus per-query spend telemetry in headers — the
/// same numbers the in-process driver reads off its recorder snapshot.
fn run_query(shared: &Arc<Shared>, req: &Request) -> Response {
    let parsed = std::str::from_utf8(&req.body)
        .map_err(|e| format!("body not UTF-8: {e}"))
        .and_then(|text| payless_json::parse(text).map_err(|e| format!("body not JSON: {e}")));
    let j = match parsed {
        Ok(j) => j,
        Err(e) => return Response::text(400, "Bad Request", format!("{e}\n")),
    };
    let template = match j.get("template").and_then(|v| v.as_u64()) {
        Ok(t) => t as usize,
        Err(e) => return Response::text(400, "Bad Request", format!("template: {e}\n")),
    };
    if template >= shared.templates.len() {
        return Response::text(
            400,
            "Bad Request",
            format!(
                "template {template} out of range ({} templates)\n",
                shared.templates.len()
            ),
        );
    }
    let params: Vec<Value> = match j
        .get("params")
        .map_err(|e| format!("params: {e}"))
        .and_then(|v| payless_json::FromJson::from_json(v).map_err(|e| format!("params: {e}")))
    {
        Ok(p) => p,
        Err(e) => return Response::text(400, "Bad Request", format!("{e}\n")),
    };

    let (query_id, outcome) = shared
        .serve
        .run_query_traced(&shared.templates[template], &params);
    let (result, snap) = match outcome {
        Ok(ok) => ok,
        Err(e) => return Response::text(500, "Internal Server Error", format!("query: {e}\n")),
    };
    shared.queries_served.fetch_add(1, Ordering::SeqCst);
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let headers = vec![
        ("X-Payless-Query-Id".to_string(), query_id.to_string()),
        (
            "X-Payless-Pages".to_string(),
            snap.total_pages().to_string(),
        ),
        (
            "X-Payless-Wasted-Pages".to_string(),
            snap.wasted_pages().to_string(),
        ),
        (
            "X-Payless-Records".to_string(),
            snap.total_records().to_string(),
        ),
        (
            "X-Payless-Price".to_string(),
            format!("{}", snap.total_price()),
        ),
        (
            "X-Payless-Coalesce-Waits".to_string(),
            counter("coalesce.waits").to_string(),
        ),
        (
            "X-Payless-Saved-Pages".to_string(),
            counter("coalesce.saved_pages").to_string(),
        ),
        (
            "X-Payless-Batch-Joins".to_string(),
            counter("batch.joins").to_string(),
        ),
        (
            "X-Payless-Shared-Pages".to_string(),
            counter("batch.shared_pages").to_string(),
        ),
        ("X-Payless-Rows".to_string(), result.rows.len().to_string()),
        ("X-Payless-Columns".to_string(), result.columns.join(",")),
    ];
    Response {
        status: 200,
        reason: "OK",
        headers,
        content_type: "application/octet-stream",
        body: payless_market::encode_rows(&result.rows),
    }
}

/// `GET /v1/report`: the billing meter plus enough server config for a
/// remote driver to fill a [`payless_serve::ServeReport`] it can validate
/// against the in-process oracle.
fn report(shared: &Arc<Shared>) -> Response {
    let bill = shared.market.bill();
    let mut by_table: Vec<Json> = Vec::new();
    let mut names: Vec<_> = bill.by_table.keys().cloned().collect();
    names.sort();
    for name in names {
        let t = &bill.by_table[&name];
        by_table.push(Json::obj([
            ("table", Json::Str(name.to_string())),
            ("calls", Json::Int(t.calls as i64)),
            ("transactions", Json::Int(t.transactions as i64)),
            ("records", Json::Int(t.records as i64)),
        ]));
    }
    Response::json(&Json::obj([
        ("page_size", Json::Int(shared.cfg.page_size as i64)),
        ("coalesce", Json::Bool(shared.cfg.coalesce)),
        ("batch", Json::Bool(shared.cfg.batch.is_some())),
        (
            "fault_seed",
            match shared.cfg.fault_seed {
                Some(fs) => Json::Int(fs as i64),
                None => Json::Null,
            },
        ),
        ("templates", Json::Int(shared.templates.len() as i64)),
        (
            "queries_served",
            Json::Int(shared.queries_served.load(Ordering::SeqCst) as i64),
        ),
        ("meter_calls", Json::Int(bill.calls() as i64)),
        ("meter_transactions", Json::Int(bill.transactions() as i64)),
        ("meter_records", Json::Int(bill.records() as i64)),
        ("by_table", Json::Arr(by_table)),
    ]))
}

/// `GET /v1/why?query=N`: the flight recorder's provenance tree; without
/// the parameter, the query ids the journal still remembers.
fn why(shared: &Arc<Shared>, req: &Request) -> Response {
    let events = shared.journal.snapshot();
    match req.query_param("query") {
        Some(q) => match q.parse::<u64>() {
            Ok(id) => Response::text(200, "OK", render_provenance(&events, id)),
            Err(_) => Response::text(400, "Bad Request", format!("bad query id {q:?}\n")),
        },
        None => {
            let known = known_queries(&events);
            let list = known
                .iter()
                .map(|q| q.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            Response::text(200, "OK", format!("queries with recorded events: {list}\n"))
        }
    }
}

/// `GET /v1/store`: durability status — per-table ledger vs meter, what
/// recovery found, snapshot progress. `{"durable": false}` without a data
/// directory.
fn store_status(shared: &Arc<Shared>) -> Response {
    match &shared.durable {
        Some(d) => Response::json(&d.status().to_json()),
        None => Response::json(&Json::obj([("durable", Json::Bool(false))])),
    }
}
