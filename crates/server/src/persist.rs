//! Snapshot + append-log persistence of the shared semantic store.
//!
//! At real market prices, losing the semantic store is losing money: every
//! purchased region the store forgets is a region a restarted server buys
//! again. This module makes settled purchases durable with the classic
//! write-ahead pair:
//!
//! - **Append log** (`wal.log`): every settled purchase appends one framed
//!   record — `[u32 len LE][JSON payload][u32 crc32 LE]` — carrying the
//!   table, region, logical time, pages spent, and the table's *absolute*
//!   cumulative spend after this record (`meter`). Appends are serialized
//!   under one mutex, so `meter` is exact.
//! - **Mirror log** (`mirror.log`): coverage alone is not enough — the
//!   rows behind it live in the serving layer's local mirror, and a
//!   recovered store that claims coverage without data answers queries
//!   wrong (worse than re-buying). Every market delivery appends one
//!   framed `{table, rows}` record here, via the executor's
//!   [`payless_exec::RowObserver`] hook. The executor inserts into the
//!   mirror *before* notifying, and purchase frames are appended before
//!   their spend records, so the mirror log always covers every spend
//!   record that survives a crash.
//! - **Snapshot** (`snapshot.json`): a background snapshotter periodically
//!   writes the whole store (plus the ledger, the mirror rows, and the
//!   sequence number it covers) to `snapshot.json.tmp`, atomically renames
//!   it over `snapshot.json`, then truncates both logs. A crash between
//!   those steps is safe: rename is atomic, and replay skips records the
//!   snapshot already covers.
//!
//! **Recovery** loads the snapshot, then replays the log front to back,
//! validating each frame (length bound, CRC, JSON shape, strictly
//! increasing sequence). The first invalid frame — a torn tail from a
//! crash mid-append — truncates the log there; everything before it is
//! kept. Two independent spend paths cross-check each other: the ledger is
//! re-derived by *summing* replayed spends, and each record also carries
//! the *absolute* meter written at append time. Any divergence (a
//! double-applied or skipped record) fails recovery loudly rather than
//! silently corrupting the money math.
//!
//! Mirror recovery dedupes at **frame** granularity: each frame's rows
//! were inserted by one atomic `insert_all` under the mirror's write lock,
//! so a snapshot taken concurrently holds either all of a frame's rows or
//! none of them. A leftover frame whose rows the snapshot already contains
//! (crash after snapshot rename, before mirror-log truncation) is skipped
//! whole; any other frame is replayed whole. Purchased regions are
//! disjoint (remainders exclude prior coverage), so equal rows across
//! *different* frames cannot occur and multiset matching is exact.
//!
//! Lock order: the spend observer runs with **no shard lock held** (see
//! [`payless_semantic::SharedSemanticStore::attach_observer`]), so the
//! persist mutex never nests inside a shard guard. The snapshotter holds
//! the persist mutex while reading the shards (read locks), which is the
//! only nesting and always in that one direction. The in-memory store may
//! momentarily be *ahead* of the log (insert settled, append pending) —
//! harmless, because coverage re-insert is idempotent and spend accounting
//! lives entirely in this layer; the log is never ahead of the store.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use payless_geometry::Region;
use payless_json::{FromJson, Json, ToJson};
use payless_semantic::SemanticStore;
use payless_semantic::SharedSemanticStore;
use payless_types::Row;

/// Rows recovered for the serving layer's local mirror, per table.
pub type MirrorRows = Vec<(String, Vec<Row>)>;

/// A frame larger than this is treated as log corruption, not a record.
const MAX_RECORD_BYTES: u32 = 1 << 20;

/// IEEE CRC-32 (the zip/PNG polynomial), table-driven.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 of `data` — the per-frame checksum recovery validates.
pub fn crc32(data: &[u8]) -> u32 {
    !data.iter().fold(!0u32, |c, &b| {
        (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xff) as usize]
    })
}

/// Durability tuning and deterministic crash injection.
#[derive(Debug, Clone, Copy)]
pub struct PersistConfig {
    /// Snapshot (and truncate the log) after this many appends; `0`
    /// disables automatic snapshots (graceful shutdown still snapshots).
    pub snapshot_every: u64,
    /// Abort the process on the N-th append, leaving a deliberately torn
    /// frame (length header + half the payload) at the log's tail — the
    /// crash the truncate-and-recover path must survive.
    pub crash_after_appends: Option<u64>,
    /// Abort mid-snapshot: `1` after writing `snapshot.json.tmp` but
    /// before the atomic rename, `2` after the rename but before the log
    /// truncation. Both windows must recover exactly.
    pub crash_in_snapshot: u8,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            snapshot_every: 64,
            crash_after_appends: None,
            crash_in_snapshot: 0,
        }
    }
}

/// What recovery found on disk — surfaced via `/v1/store` so smokes can
/// assert on it without groveling through server logs.
#[derive(Debug, Clone, Default)]
pub struct RecoveryInfo {
    /// Sequence number the loaded snapshot covered (0 = no snapshot).
    pub snapshot_seq: u64,
    /// Valid log records replayed on top of the snapshot.
    pub replayed: u64,
    /// Bytes cut off the log tail (a torn frame from a crash mid-append).
    pub truncated_bytes: u64,
    /// Mirror rows recovered (snapshot rows plus replayed mirror frames).
    pub mirror_rows: u64,
    /// Bytes cut off the mirror log's torn tail.
    pub mirror_truncated_bytes: u64,
}

/// Per-table reconciliation row: the two independently derived totals that
/// must agree (summed ledger vs absolute meter of the last record).
#[derive(Debug, Clone)]
pub struct TableLedger {
    /// Market table name.
    pub table: String,
    /// Pages attributed by summing every applied record's spend.
    pub ledger_pages: u64,
    /// Absolute cumulative meter carried by the table's last record.
    pub meter_pages: u64,
}

/// Point-in-time durability status for `/v1/store`.
#[derive(Debug, Clone)]
pub struct PersistStatus {
    /// Last sequence number assigned to an append.
    pub last_seq: u64,
    /// Sequence number covered by the snapshot on disk.
    pub applied_seq: u64,
    /// Appends since the server opened the log.
    pub appends: u64,
    /// Snapshots taken since the server opened the log.
    pub snapshots: u64,
    /// What recovery found at startup.
    pub recovery: RecoveryInfo,
    /// Per-table ledger/meter pairs (sorted by table name).
    pub tables: Vec<TableLedger>,
}

impl PersistStatus {
    /// `true` iff every table's summed ledger equals its absolute meter.
    pub fn reconciles(&self) -> bool {
        self.tables.iter().all(|t| t.ledger_pages == t.meter_pages)
    }
}

struct Inner {
    wal: File,
    mirror: File,
    /// Last sequence number assigned (snapshot-covered or logged).
    seq: u64,
    /// Sequence number the on-disk snapshot covers.
    applied_seq: u64,
    /// Per-table cumulative pages, derived by summation.
    ledger: BTreeMap<String, u64>,
    /// Per-table absolute meter from the last record (== ledger always,
    /// kept separate so recovery can cross-check the two derivations).
    meter: BTreeMap<String, u64>,
    appends_since_snapshot: u64,
    appends_total: u64,
    snapshots: u64,
}

/// The durable store: owns the data directory and serializes every append
/// and snapshot under one mutex. Construct with [`DurableStore::open`]
/// (which recovers), then wire into the serving layer with
/// [`DurableStore::attach`].
pub struct DurableStore {
    dir: PathBuf,
    cfg: PersistConfig,
    inner: Mutex<Inner>,
    recovery: RecoveryInfo,
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.json")
}

fn mirror_path(dir: &Path) -> PathBuf {
    dir.join("mirror.log")
}

fn io_err<T>(what: &str, e: impl std::fmt::Display) -> Result<T, String> {
    Err(format!("{what}: {e}"))
}

/// One parsed log record.
struct WalRecord {
    seq: u64,
    table: String,
    at: u64,
    spend: u64,
    meter: u64,
    region: Region,
}

impl WalRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::Int(self.seq as i64)),
            ("table", Json::Str(self.table.clone())),
            ("at", Json::Int(self.at as i64)),
            ("spend", Json::Int(self.spend as i64)),
            ("meter", Json::Int(self.meter as i64)),
            ("region", self.region.to_json()),
        ])
    }

    fn from_json(j: &Json) -> payless_json::Result<WalRecord> {
        Ok(WalRecord {
            seq: j.get("seq")?.as_u64()?,
            table: j.get("table")?.as_str()?.to_string(),
            at: j.get("at")?.as_u64()?,
            spend: j.get("spend")?.as_u64()?,
            meter: j.get("meter")?.as_u64()?,
            region: Region::from_json(j.get("region")?)?,
        })
    }
}

/// One parsed mirror-log record: the rows one market delivery inserted.
struct MirrorRecord {
    table: String,
    rows: Vec<Row>,
}

impl MirrorRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("table", Json::Str(self.table.clone())),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    fn from_json(j: &Json) -> payless_json::Result<MirrorRecord> {
        Ok(MirrorRecord {
            table: j.get("table")?.as_str()?.to_string(),
            rows: FromJson::from_json(j.get("rows")?)?,
        })
    }
}

/// Frame `payload` as `[u32 len][payload][u32 crc]`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Scan `bytes` front to back, yielding valid payloads and the byte offset
/// where validity ends (the truncation point for a torn tail). Shared by
/// recovery and the prefix-truncation proptest.
pub fn scan_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut payloads = Vec::new();
    let mut off = 0usize;
    while let Some(header) = bytes.get(off..off + 4) {
        let len = u32::from_le_bytes(header.try_into().expect("4 bytes")) as usize;
        if len as u32 > MAX_RECORD_BYTES {
            break;
        }
        let Some(payload) = bytes.get(off + 4..off + 4 + len) else {
            break;
        };
        let Some(crc_bytes) = bytes.get(off + 4 + len..off + 8 + len) else {
            break;
        };
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc != crc32(payload) {
            break;
        }
        payloads.push(payload.to_vec());
        off += 8 + len;
    }
    (payloads, off)
}

impl DurableStore {
    /// Open (creating if needed) the data directory, recover
    /// snapshot + logs into a warm [`SemanticStore`] plus the mirror rows
    /// backing its coverage, and return the durable store positioned to
    /// append. `spaces` pre-registers the market tables so log records can
    /// replay even before the first snapshot. Fails loudly when the two
    /// independently derived spend totals (summed ledger vs recorded
    /// absolute meter) disagree — never serve from corrupt money math.
    pub fn open(
        dir: &Path,
        cfg: PersistConfig,
        spaces: &[payless_geometry::QuerySpace],
    ) -> Result<(DurableStore, SemanticStore, MirrorRows), String> {
        std::fs::create_dir_all(dir)
            .or_else(|e| io_err(&format!("create data dir {}", dir.display()), e))?;
        // A leftover .tmp is a snapshot that never committed; drop it.
        let _ = std::fs::remove_file(snapshot_path(dir).with_extension("json.tmp"));

        let mut store = SemanticStore::new();
        let mut ledger: BTreeMap<String, u64> = BTreeMap::new();
        let mut meter: BTreeMap<String, u64> = BTreeMap::new();
        // Mirror rows in recovery order plus a per-table multiset of the
        // same rows, used to recognize log frames the snapshot covers.
        let mut mirror_rows: BTreeMap<String, Vec<Row>> = BTreeMap::new();
        let mut mirror_seen: HashMap<String, HashMap<Row, usize>> = HashMap::new();
        let mut applied_seq = 0u64;
        let snap_path = snapshot_path(dir);
        if snap_path.exists() {
            let text =
                std::fs::read_to_string(&snap_path).or_else(|e| io_err("read snapshot.json", e))?;
            let j = payless_json::parse(&text).map_err(|e| {
                format!("snapshot.json corrupt (rename is atomic, so this is real corruption): {e}")
            })?;
            applied_seq = j
                .get("applied_seq")
                .and_then(|v| v.as_u64())
                .map_err(|e| format!("snapshot.json applied_seq: {e}"))?;
            for (table, pages) in j
                .get("ledger")
                .and_then(|v| v.as_obj())
                .map_err(|e| format!("snapshot.json ledger: {e}"))?
            {
                let pages = pages
                    .as_u64()
                    .map_err(|e| format!("snapshot.json ledger[{table}]: {e}"))?;
                ledger.insert(table.clone(), pages);
                meter.insert(table.clone(), pages);
            }
            store = SemanticStore::from_json(
                j.get("store")
                    .map_err(|e| format!("snapshot.json store: {e}"))?,
            )
            .map_err(|e| format!("snapshot.json store: {e}"))?;
            // Mirror section is optional so pre-mirror snapshots still load.
            if let Some(mirror) = j.get_opt("mirror") {
                for (table, rows) in mirror
                    .as_obj()
                    .map_err(|e| format!("snapshot.json mirror: {e}"))?
                {
                    let rows: Vec<Row> = FromJson::from_json(rows)
                        .map_err(|e| format!("snapshot.json mirror[{table}]: {e}"))?;
                    let seen = mirror_seen.entry(table.clone()).or_default();
                    for row in &rows {
                        *seen.entry(row.clone()).or_insert(0) += 1;
                    }
                    mirror_rows.entry(table.clone()).or_default().extend(rows);
                }
            }
        }
        for space in spaces {
            store.register(space.clone());
        }

        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(wal_path(dir))
            .or_else(|e| io_err("open wal.log", e))?;
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)
            .or_else(|e| io_err("read wal.log", e))?;
        let (payloads, valid_len) = scan_frames(&bytes);
        let truncated = bytes.len() - valid_len;
        if truncated > 0 {
            // Torn tail from a crash mid-append: cut it off so the next
            // append starts on a frame boundary.
            wal.set_len(valid_len as u64)
                .or_else(|e| io_err("truncate wal.log tail", e))?;
        }
        wal.seek(SeekFrom::Start(valid_len as u64))
            .or_else(|e| io_err("seek wal.log", e))?;

        let mut seq = applied_seq;
        let mut replayed = 0u64;
        for payload in &payloads {
            let text = std::str::from_utf8(payload)
                .map_err(|e| format!("wal record not UTF-8 despite valid CRC: {e}"))?;
            let j = payless_json::parse(text).map_err(|e| format!("wal record JSON: {e}"))?;
            let rec = WalRecord::from_json(&j).map_err(|e| format!("wal record shape: {e}"))?;
            if rec.seq <= applied_seq {
                // Snapshot already covers it (crash between rename and
                // truncation leaves such records behind) — skip, or we
                // would double-count its spend.
                continue;
            }
            if rec.seq != seq + 1 {
                return Err(format!(
                    "wal sequence gap: expected {}, found {} (log reordered or spliced)",
                    seq + 1,
                    rec.seq
                ));
            }
            if store.space(&rec.table).is_none() {
                return Err(format!(
                    "wal seq {} references unregistered table {}",
                    rec.seq, rec.table
                ));
            }
            seq = rec.seq;
            let entry = ledger.entry(rec.table.clone()).or_insert(0);
            *entry += rec.spend;
            if *entry != rec.meter {
                return Err(format!(
                    "spend mismatch replaying seq {} for table {}: summed ledger {} != recorded meter {} \
                     (a record was double-applied or lost)",
                    rec.seq, rec.table, *entry, rec.meter
                ));
            }
            meter.insert(rec.table.clone(), rec.meter);
            store.record_spend(&rec.table, rec.region, rec.at, rec.spend);
            replayed += 1;
        }

        // Mirror log: same open/scan/truncate dance, then frame-level
        // dedupe against the snapshot's multiset (see module docs).
        let mut mirror = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(mirror_path(dir))
            .or_else(|e| io_err("open mirror.log", e))?;
        let mut mirror_bytes = Vec::new();
        mirror
            .read_to_end(&mut mirror_bytes)
            .or_else(|e| io_err("read mirror.log", e))?;
        let (mirror_payloads, mirror_valid) = scan_frames(&mirror_bytes);
        let mirror_truncated = mirror_bytes.len() - mirror_valid;
        if mirror_truncated > 0 {
            mirror
                .set_len(mirror_valid as u64)
                .or_else(|e| io_err("truncate mirror.log tail", e))?;
        }
        mirror
            .seek(SeekFrom::Start(mirror_valid as u64))
            .or_else(|e| io_err("seek mirror.log", e))?;
        for payload in &mirror_payloads {
            let text = std::str::from_utf8(payload)
                .map_err(|e| format!("mirror record not UTF-8 despite valid CRC: {e}"))?;
            let j = payless_json::parse(text).map_err(|e| format!("mirror record JSON: {e}"))?;
            let rec =
                MirrorRecord::from_json(&j).map_err(|e| format!("mirror record shape: {e}"))?;
            let seen = mirror_seen.entry(rec.table.clone()).or_default();
            // A frame whose rows the snapshot already holds (with
            // multiplicity) is a leftover the snapshot covered — skip it
            // whole, consuming its rows so a genuinely re-delivered frame
            // later in the log still replays.
            let mut need: HashMap<&Row, usize> = HashMap::new();
            for row in &rec.rows {
                *need.entry(row).or_insert(0) += 1;
            }
            let covered = !rec.rows.is_empty()
                && need
                    .iter()
                    .all(|(row, n)| seen.get(*row).copied().unwrap_or(0) >= *n);
            if covered {
                for (row, n) in need {
                    if let Some(have) = seen.get_mut(row) {
                        *have -= n;
                        if *have == 0 {
                            seen.remove(row);
                        }
                    }
                }
                continue;
            }
            drop(need);
            mirror_rows.entry(rec.table).or_default().extend(rec.rows);
        }

        let recovered: MirrorRows = mirror_rows.into_iter().collect();
        let recovery = RecoveryInfo {
            snapshot_seq: applied_seq,
            replayed,
            truncated_bytes: truncated as u64,
            mirror_rows: recovered.iter().map(|(_, rows)| rows.len() as u64).sum(),
            mirror_truncated_bytes: mirror_truncated as u64,
        };
        let durable = DurableStore {
            dir: dir.to_path_buf(),
            cfg,
            inner: Mutex::new(Inner {
                wal,
                mirror,
                seq,
                applied_seq,
                ledger,
                meter,
                appends_since_snapshot: payloads.len() as u64,
                appends_total: 0,
                snapshots: 0,
            }),
            recovery,
        };
        Ok((durable, store, recovered))
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryInfo {
        &self.recovery
    }

    /// Wire this store into `shared` as its spend observer: every settled
    /// purchase appends one durable record. Call once, after
    /// [`DurableStore::open`]'s warm store has been handed to the serving
    /// layer.
    pub fn attach(self: &std::sync::Arc<Self>, shared: &SharedSemanticStore) {
        let me = std::sync::Arc::clone(self);
        shared.attach_observer(std::sync::Arc::new(move |table, region, now, spend| {
            me.append(table, region, now, spend);
        }));
    }

    /// Append one settled purchase. Serialized under the persist mutex so
    /// the absolute `meter` field is exact; panics on I/O failure (a
    /// half-working durability layer is worse than a dead server).
    pub fn append(&self, table: &str, region: &Region, now: u64, spend: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.seq += 1;
        let entry = inner.ledger.entry(table.to_string()).or_insert(0);
        *entry += spend;
        let meter_after = *entry;
        inner.meter.insert(table.to_string(), meter_after);
        let rec = WalRecord {
            seq: inner.seq,
            table: table.to_string(),
            at: now,
            spend,
            meter: meter_after,
            region: region.clone(),
        };
        let payload = rec.to_json().to_string_compact().into_bytes();
        let framed = frame(&payload);
        inner.appends_total += 1;
        if self.cfg.crash_after_appends == Some(inner.appends_total) {
            // Deterministic torn write: half a frame, then die. Recovery
            // must truncate exactly here and lose only this record.
            let torn = &framed[..4 + payload.len() / 2];
            let _ = inner.wal.write_all(torn);
            let _ = inner.wal.flush();
            eprintln!(
                "payless-server: injected crash mid-append (seq {})",
                rec.seq
            );
            std::process::abort();
        }
        inner
            .wal
            .write_all(&framed)
            .unwrap_or_else(|e| panic!("wal append failed: {e}"));
        inner
            .wal
            .flush()
            .unwrap_or_else(|e| panic!("wal flush failed: {e}"));
        inner.appends_since_snapshot += 1;
    }

    /// Append one market delivery's rows to the mirror log. Called by the
    /// executor's row observer *after* the rows landed in the serving
    /// layer's local mirror and *before* the purchase's spend record is
    /// appended — so every spend record that survives a crash has its rows
    /// earlier in this log. Panics on I/O failure, like [`DurableStore::append`].
    pub fn append_rows(&self, table: &str, rows: &[Row]) {
        if rows.is_empty() {
            return;
        }
        let rec = MirrorRecord {
            table: table.to_string(),
            rows: rows.to_vec(),
        };
        let payload = rec.to_json().to_string_compact().into_bytes();
        let framed = frame(&payload);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .mirror
            .write_all(&framed)
            .unwrap_or_else(|e| panic!("mirror append failed: {e}"));
        inner
            .mirror
            .flush()
            .unwrap_or_else(|e| panic!("mirror flush failed: {e}"));
    }

    /// Snapshot now iff the append threshold has been reached.
    pub fn maybe_snapshot(
        &self,
        shared: &SharedSemanticStore,
        mirror_dump: &dyn Fn() -> MirrorRows,
    ) -> Result<bool, String> {
        if self.cfg.snapshot_every == 0 {
            return Ok(false);
        }
        let due = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.appends_since_snapshot >= self.cfg.snapshot_every
        };
        if due {
            self.snapshot(shared, mirror_dump)?;
        }
        Ok(due)
    }

    /// Write a full snapshot and truncate both logs. Holds the persist
    /// mutex across the store and mirror reads, so the snapshot covers
    /// exactly the appends with `seq <= applied_seq` — an insert racing
    /// this snapshot has not yet taken a sequence number, and will land in
    /// the fresh log. `mirror_dump` must read the serving layer's live
    /// mirror (it runs under the persist mutex; see the lock-order note in
    /// the module docs).
    pub fn snapshot(
        &self,
        shared: &SharedSemanticStore,
        mirror_dump: &dyn Fn() -> MirrorRows,
    ) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let applied_seq = inner.seq;
        let ledger_json = Json::Obj(
            inner
                .ledger
                .iter()
                .map(|(t, p)| (t.clone(), Json::Int(*p as i64)))
                .collect(),
        );
        // Shard/mirror read locks nest inside the persist mutex here;
        // observers never hold either lock while appending, so this cannot
        // cycle. Rows whose mirror frame is still waiting on this mutex
        // are already in the dump (insert-before-notify); recovery dedupes
        // their leftover frames against the snapshot.
        let store = shared.snapshot();
        let mirror_json = Json::Obj(
            mirror_dump()
                .into_iter()
                .map(|(table, rows)| (table, Json::Arr(rows.iter().map(|r| r.to_json()).collect())))
                .collect(),
        );
        let snap = Json::obj([
            ("applied_seq", Json::Int(applied_seq as i64)),
            ("ledger", ledger_json),
            ("store", store.to_json()),
            ("mirror", mirror_json),
        ]);
        let path = snapshot_path(&self.dir);
        let tmp = path.with_extension("json.tmp");
        {
            let mut f = File::create(&tmp).or_else(|e| io_err("create snapshot tmp", e))?;
            f.write_all(snap.to_string_compact().as_bytes())
                .or_else(|e| io_err("write snapshot tmp", e))?;
            f.flush().or_else(|e| io_err("flush snapshot tmp", e))?;
        }
        if self.cfg.crash_in_snapshot == 1 && inner.appends_total > 0 {
            eprintln!("payless-server: injected crash before snapshot rename");
            std::process::abort();
        }
        std::fs::rename(&tmp, &path).or_else(|e| io_err("rename snapshot", e))?;
        if self.cfg.crash_in_snapshot == 2 && inner.appends_total > 0 {
            eprintln!("payless-server: injected crash before wal truncation");
            std::process::abort();
        }
        inner
            .wal
            .set_len(0)
            .or_else(|e| io_err("truncate wal after snapshot", e))?;
        inner
            .wal
            .seek(SeekFrom::Start(0))
            .or_else(|e| io_err("rewind wal after snapshot", e))?;
        // Mirror truncation comes last; a crash in between leaves frames
        // the snapshot covers, which recovery's frame dedupe skips.
        inner
            .mirror
            .set_len(0)
            .or_else(|e| io_err("truncate mirror after snapshot", e))?;
        inner
            .mirror
            .seek(SeekFrom::Start(0))
            .or_else(|e| io_err("rewind mirror after snapshot", e))?;
        inner.applied_seq = applied_seq;
        inner.appends_since_snapshot = 0;
        inner.snapshots += 1;
        Ok(())
    }

    /// Current durability status (for `/v1/store` and the smokes).
    pub fn status(&self) -> PersistStatus {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let tables = inner
            .ledger
            .iter()
            .map(|(table, pages)| TableLedger {
                table: table.clone(),
                ledger_pages: *pages,
                meter_pages: inner.meter.get(table).copied().unwrap_or(0),
            })
            .collect();
        PersistStatus {
            last_seq: inner.seq,
            applied_seq: inner.applied_seq,
            appends: inner.appends_total,
            snapshots: inner.snapshots,
            recovery: self.recovery.clone(),
            tables,
        }
    }
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("cfg", &self.cfg)
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl payless_json::ToJson for PersistStatus {
    fn to_json(&self) -> Json {
        Json::obj([
            ("durable", Json::Bool(true)),
            ("last_seq", Json::Int(self.last_seq as i64)),
            ("applied_seq", Json::Int(self.applied_seq as i64)),
            ("appends", Json::Int(self.appends as i64)),
            ("snapshots", Json::Int(self.snapshots as i64)),
            (
                "recovery",
                Json::obj([
                    ("snapshot_seq", Json::Int(self.recovery.snapshot_seq as i64)),
                    ("replayed", Json::Int(self.recovery.replayed as i64)),
                    (
                        "truncated_bytes",
                        Json::Int(self.recovery.truncated_bytes as i64),
                    ),
                    ("mirror_rows", Json::Int(self.recovery.mirror_rows as i64)),
                    (
                        "mirror_truncated_bytes",
                        Json::Int(self.recovery.mirror_truncated_bytes as i64),
                    ),
                ]),
            ),
            (
                "tables",
                Json::Arr(
                    self.tables
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("table", Json::Str(t.table.clone())),
                                ("ledger_pages", Json::Int(t.ledger_pages as i64)),
                                ("meter_pages", Json::Int(t.meter_pages as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_geometry::{Interval, QuerySpace};
    use payless_types::{Column, Domain, Schema};

    fn space() -> QuerySpace {
        QuerySpace::of(&Schema::new(
            "T",
            vec![Column::free("A", Domain::int(0, 999))],
        ))
    }

    fn r(lo: i64, hi: i64) -> Region {
        Region::new(vec![Interval::new(lo, hi)])
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("payless-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_recover_roundtrip_reconciles() {
        let dir = tmpdir("roundtrip");
        let cfg = PersistConfig {
            snapshot_every: 0,
            ..PersistConfig::default()
        };
        {
            let (durable, store, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
            assert_eq!(store.view_count("T"), 0);
            durable.append("T", &r(0, 9), 1, 10);
            durable.append("T", &r(10, 19), 2, 10);
            durable.append("T", &r(100, 149), 3, 50);
        }
        let (durable, mut store, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
        store.register(space());
        let status = durable.status();
        assert!(status.reconciles());
        assert_eq!(status.recovery.replayed, 3);
        assert_eq!(status.recovery.truncated_bytes, 0);
        assert_eq!(status.tables.len(), 1);
        assert_eq!(status.tables[0].ledger_pages, 70);
        assert!(store.covers("T", &r(0, 19), payless_semantic::Consistency::Weak, 4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_and_loses_only_the_tail() {
        let dir = tmpdir("torn");
        let cfg = PersistConfig {
            snapshot_every: 0,
            ..PersistConfig::default()
        };
        {
            let (durable, _, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
            durable.append("T", &r(0, 9), 1, 10);
            durable.append("T", &r(10, 19), 2, 7);
        }
        // Tear the last frame by chopping 5 bytes off the file.
        let path = wal_path(&dir);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (durable, _store, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
        let status = durable.status();
        assert!(status.reconciles());
        assert_eq!(
            status.recovery.replayed, 1,
            "only the intact record survives"
        );
        assert!(status.recovery.truncated_bytes > 0);
        assert_eq!(status.tables[0].ledger_pages, 10);
        // The truncated log appends cleanly afterwards.
        durable.append("T", &r(10, 19), 3, 7);
        drop(durable);
        let (durable, _, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
        assert_eq!(durable.status().tables[0].ledger_pages, 17);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_log_and_replay_skips_covered_records() {
        let dir = tmpdir("snapshot");
        let cfg = PersistConfig {
            snapshot_every: 0,
            ..PersistConfig::default()
        };
        {
            let (durable, _, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
            let mut base = SemanticStore::new();
            base.register(space());
            let shared = SharedSemanticStore::new(base);
            let durable = std::sync::Arc::new(durable);
            durable.attach(&shared);
            shared.record_spend("T", r(0, 9), 1, 10);
            shared.record_spend("T", r(50, 59), 2, 10);
            durable.snapshot(&shared, &|| Vec::new()).unwrap();
            assert_eq!(std::fs::metadata(wal_path(&dir)).unwrap().len(), 0);
            // Post-snapshot appends land in the fresh log.
            shared.record_spend("T", r(100, 109), 3, 10);
        }
        let (durable, store, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
        let status = durable.status();
        assert!(status.reconciles());
        assert_eq!(status.recovery.snapshot_seq, 2);
        assert_eq!(status.recovery.replayed, 1);
        assert_eq!(status.tables[0].ledger_pages, 30);
        assert!(store.covers("T", &r(0, 9), payless_semantic::Consistency::Weak, 4));
        assert!(store.covers("T", &r(100, 109), payless_semantic::Consistency::Weak, 4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mirror_rows_survive_restart_and_dedupe_snapshot_leftovers() {
        let dir = tmpdir("mirror");
        let cfg = PersistConfig {
            snapshot_every: 0,
            ..PersistConfig::default()
        };
        let frame_a = vec![payless_types::row!(0), payless_types::row!(1)];
        let frame_b = vec![payless_types::row!(10)];
        {
            let (durable, _, recovered) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
            assert!(recovered.is_empty());
            durable.append_rows("T", &frame_a);
        }
        {
            // Plain restart: logged rows come back.
            let (durable, _, recovered) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
            assert_eq!(recovered, vec![("T".to_string(), frame_a.clone())]);
            assert_eq!(durable.recovery().mirror_rows, 2);
            // Snapshot covering frame_a, then a leftover duplicate of
            // frame_a (the crash window between snapshot rename and
            // mirror-log truncation) plus a genuinely new frame.
            let mut base = SemanticStore::new();
            base.register(space());
            let shared = SharedSemanticStore::new(base);
            durable.snapshot(&shared, &|| recovered.clone()).unwrap();
            assert_eq!(std::fs::metadata(mirror_path(&dir)).unwrap().len(), 0);
            durable.append_rows("T", &frame_a);
            durable.append_rows("T", &frame_b);
        }
        let (durable, _, recovered) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
        let rows: Vec<Row> = recovered.iter().flat_map(|(_, r)| r.clone()).collect();
        assert_eq!(rows, [frame_a, frame_b].concat());
        assert_eq!(durable.recovery().mirror_rows, 3, "duplicate frame deduped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicated_frame_fails_recovery_loudly() {
        let dir = tmpdir("dup");
        let cfg = PersistConfig {
            snapshot_every: 0,
            ..PersistConfig::default()
        };
        {
            let (durable, _, _) = DurableStore::open(&dir, cfg, &[space()]).unwrap();
            durable.append("T", &r(0, 9), 1, 10);
        }
        // Replay-splice attack / filesystem duplication: the same frame
        // twice must not silently double the ledger.
        let path = wal_path(&dir);
        let bytes = std::fs::read(&path).unwrap();
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes);
        std::fs::write(&path, &doubled).unwrap();
        let err = DurableStore::open(&dir, cfg, &[space()]).unwrap_err();
        assert!(
            err.contains("sequence gap") || err.contains("spend mismatch"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
