//! `payless-server`: boot the network front end from `PAYLESS_*` knobs.
//!
//! | knob                        | meaning                                  | default        |
//! |-----------------------------|------------------------------------------|----------------|
//! | `PAYLESS_LISTEN`            | bind address (`host:port`, port 0 = any) | 127.0.0.1:7878 |
//! | `PAYLESS_DATA_DIR`          | WAL + snapshot directory (unset = memory only) | unset    |
//! | `PAYLESS_SNAPSHOT_EVERY`    | appends between log compactions (0 = never) | 64          |
//! | `PAYLESS_PAGE`              | market page size in records              | 1              |
//! | `PAYLESS_SCALE`             | WHW generator scale                      | 0.02           |
//! | `PAYLESS_COALESCE`          | `0` disables single-flight coalescing    | on             |
//! | `PAYLESS_FAULT_SEED`        | chaos-inject the market at this seed     | unset          |
//! | `PAYLESS_BATCH`             | enable cross-query batch purchasing      | off            |
//! | `PAYLESS_ADDR_FILE`         | write the bound address here after bind  | unset          |
//! | `PAYLESS_CRASH_AFTER`       | abort on the N-th WAL append (tests)     | unset          |
//! | `PAYLESS_CRASH_IN_SNAPSHOT` | abort mid-snapshot: 1 pre-rename, 2 pre-truncate | unset  |

use std::time::Duration;

use payless_server::persist::PersistConfig;
use payless_server::{Server, ServerConfig};

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

fn main() {
    let cfg = ServerConfig {
        listen: std::env::var("PAYLESS_LISTEN").unwrap_or_else(|_| "127.0.0.1:7878".into()),
        page_size: env_u64("PAYLESS_PAGE").unwrap_or(1).max(1),
        scale: env_f64("PAYLESS_SCALE")
            .filter(|s| *s > 0.0)
            .unwrap_or(0.02),
        coalesce: std::env::var("PAYLESS_COALESCE")
            .map(|v| v != "0")
            .unwrap_or(true),
        fault_seed: env_u64("PAYLESS_FAULT_SEED"),
        batch: payless_serve::BatchConfig::from_env(),
        data_dir: std::env::var("PAYLESS_DATA_DIR").ok().map(Into::into),
        persist: PersistConfig {
            snapshot_every: env_u64("PAYLESS_SNAPSHOT_EVERY").unwrap_or(64),
            crash_after_appends: env_u64("PAYLESS_CRASH_AFTER"),
            crash_in_snapshot: env_u64("PAYLESS_CRASH_IN_SNAPSHOT").unwrap_or(0) as u8,
        },
        snapshot_poll: Duration::from_millis(25),
    };

    let durable = cfg.data_dir.is_some();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("payless-server: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    println!("payless-server listening on {addr} (durable: {durable})");
    if let Ok(path) = std::env::var("PAYLESS_ADDR_FILE") {
        if let Err(e) = std::fs::write(&path, addr.to_string()) {
            eprintln!("payless-server: write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = server.run() {
        eprintln!("payless-server: {e}");
        std::process::exit(1);
    }
    println!("payless-server: graceful shutdown complete");
}
