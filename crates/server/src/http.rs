//! Minimal std-only HTTP/1.1 server-side codec.
//!
//! Parses requests off any `BufRead` (a `TcpStream` in production, a
//! scripted partial reader in tests) with hard limits — request-line and
//! header-line length, header count, body size — and writes responses with
//! explicit `Content-Length`. Supports exactly what the REST front end
//! needs: methods, paths with query strings (percent-decoded), headers,
//! `Content-Length` bodies, and keep-alive.

use std::io::{BufRead, Write};

/// Longest accepted request line or header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8192;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Why a request could not be parsed — each maps to a distinct status.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure or mid-request EOF.
    Io(std::io::Error),
    /// Syntactically invalid request (400).
    Malformed(String),
    /// A line or header block past the limits (431).
    TooLarge(String),
    /// A body past `MAX_BODY_BYTES` (413).
    BodyTooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::BodyTooLarge(n) => write!(f, "body of {n} bytes exceeds limit"),
        }
    }
}

impl HttpError {
    /// The status line this error answers with before closing.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Io(_) => (400, "Bad Request"),
            HttpError::Malformed(_) => (400, "Bad Request"),
            HttpError::TooLarge(_) => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge(_) => (413, "Payload Too Large"),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string stripped (`/v1/query`).
    pub path: String,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs; names lowercased for lookup.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the client asked to keep the connection open
    /// (HTTP/1.1 default; an explicit `Connection: close` wins).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Read one CRLF-terminated line (tolerating bare LF), enforcing
/// `MAX_LINE_BYTES`. Returns `None` on clean EOF at a line boundary.
fn read_line(r: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof mid-line",
                )));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map(Some)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(HttpError::TooLarge(format!(
                        "line exceeds {MAX_LINE_BYTES} bytes"
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Percent-decode `s`; invalid escapes pass through literally.
fn pct_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
            if let Some(v) = hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                out.push(v);
                i += 3;
                continue;
            }
        }
        if bytes[i] == b'+' {
            out.push(b' ');
        } else {
            out.push(bytes[i]);
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse `a=1&b=two` into decoded pairs.
fn parse_query(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (pct_decode(k), pct_decode(v)),
            None => (pct_decode(pair), String::new()),
        })
        .collect()
}

/// Read and parse one request. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive teardown).
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "request line {line:?} is not `METHOD TARGET VERSION`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!(
            "method {method:?} is not an uppercase token"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!(
            "target {target:?} is not an absolute path"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, qs)) => (p.to_string(), parse_query(qs)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| {
            HttpError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof in header block",
            ))
        })?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line {line:?} has no colon")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {len:?}")))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge(len));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body).map_err(HttpError::Io)?;
        req.body = body;
    }
    Ok(Some(req))
}

/// Write a response with explicit `Content-Length` and the given extra
/// headers. `keep_alive` controls the `Connection` header.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    extra_headers: &[(String, String)],
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    /// A reader that yields its bytes one at a time — the pathological
    /// partial-read schedule a slow or adversarial client produces.
    struct TrickleReader {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for TrickleReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn trickle(data: &str) -> BufReader<TrickleReader> {
        BufReader::new(TrickleReader {
            data: data.as_bytes().to_vec(),
            pos: 0,
        })
    }

    fn parse(data: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut trickle(data))
    }

    #[test]
    fn parses_get_with_query_under_partial_reads() {
        let req = parse("GET /v1/why?query=7&tag=a%20b HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/why");
        assert_eq!(req.query_param("query"), Some("7"));
        assert_eq!(req.query_param("tag"), Some("a b"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse(
            "POST /v1/query HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\nhello world",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"hello world");
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x SPDY/9\r\n\r\n",
            " / HTTP/1.1\r\n\r\n",
        ] {
            match parse(bad) {
                Err(HttpError::Malformed(_)) => {}
                other => panic!("{bad:?} parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn header_without_colon_is_rejected() {
        match parse("GET / HTTP/1.1\r\nBadHeader\r\n\r\n") {
            Err(HttpError::Malformed(m)) => assert!(m.contains("no colon")),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 1));
        match parse(&long) {
            Err(HttpError::TooLarge(_)) => {}
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn oversized_header_line_is_rejected() {
        let long = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "v".repeat(MAX_LINE_BYTES + 1)
        );
        match parse(&long) {
            Err(HttpError::TooLarge(_)) => {}
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn too_many_headers_are_rejected() {
        let mut req = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            req.push_str(&format!("X-H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        match parse(&req) {
            Err(HttpError::TooLarge(_)) => {}
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let req = format!(
            "POST /v1/query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse(&req) {
            Err(HttpError::BodyTooLarge(_)) => {}
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn eof_mid_line_and_mid_body_are_io_errors() {
        match parse("GET / HT") {
            Err(HttpError::Io(_)) => {}
            other => panic!("parsed as {other:?}"),
        }
        match parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort") {
            Err(HttpError::Io(_)) => {}
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn keep_alive_reads_back_to_back_requests() {
        let mut r = trickle("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
        let a = read_request(&mut r).unwrap().unwrap();
        let b = read_request(&mut r).unwrap().unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert!(read_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn response_has_exact_content_length() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "OK",
            &[("X-Payless-Pages".into(), "3".into())],
            "application/octet-stream",
            b"abc",
            true,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("X-Payless-Pages: 3\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nabc"));
    }
}
