use crate::{err, Json, JsonError, Result};

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| JsonError("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => err(format!(
                "unexpected byte {:?} at {}",
                other as char, self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-scan the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
            );
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return err("invalid low surrogate");
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| JsonError("invalid surrogate pair".into()))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| JsonError("invalid escape codepoint".into()))?
                            };
                            out.push(c);
                            // hex4 leaves pos after the 4 digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        other => {
                            return err(format!("bad escape {:?}", other as char));
                        }
                    }
                    self.pos += 1;
                }
                other => {
                    return err(format!("raw control byte {other:#x} in string"));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError("bad \\u escape".into()))?;
        let cp = u32::from_str_radix(digits, 16)
            .map_err(|_| JsonError(format!("bad \\u escape {digits:?}")))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            match text.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(Json::Float(v)),
                _ => err(format!("bad number {text:?}")),
            }
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| JsonError(format!("bad integer {text:?}")))
        }
    }
}
