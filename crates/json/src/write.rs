use crate::Json;

pub(crate) fn write_compact(j: &Json, out: &mut String) {
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(v) => out.push_str(&v.to_string()),
        Json::Float(v) => write_f64(*v, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(j: &Json, indent: usize, out: &mut String) {
    match j {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push(']');
        }
        Json::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    debug_assert!(v.is_finite(), "non-finite floats are encoded as strings");
    // Rust's Display for f64 is shortest-round-trip; ensure the token stays
    // a JSON number (Display prints integral values without a dot).
    let s = v.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
