//! Dependency-free JSON for PayLess.
//!
//! The offline build environment cannot fetch `serde`/`serde_json`, so
//! session persistence, telemetry reports, and benchmark output all go
//! through this small crate instead: a [`Json`] value tree, a strict
//! parser, compact and pretty writers, and [`ToJson`]/[`FromJson`]
//! conversion traits with impls for the std types the workspace uses.
//!
//! Integers are kept as `i64` (not `f64`) because domain bounds in the
//! repo reach `±2^62`, beyond exact `f64` range.

mod parse;
mod write;

pub use parse::parse;

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

pub type Result<T> = std::result::Result<T, JsonError>;

pub fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(JsonError(msg.into()))
}

impl Json {
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }

    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Json::Int(v) => Ok(*v),
            other => err(format!("expected integer, got {other:?}")),
        }
    }

    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Ok(*v as u64),
            other => err(format!("expected unsigned integer, got {other:?}")),
        }
    }

    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Float(v) => Ok(*v),
            Json::Int(v) => Ok(*v as f64),
            Json::Str(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                _ => err(format!("expected number, got string {s:?}")),
            },
            other => err(format!("expected number, got {other:?}")),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(v) => Ok(v),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    pub fn as_obj(&self) -> Result<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Ok(v),
            other => err(format!("expected object, got {other:?}")),
        }
    }

    /// Field lookup on an object; errors if missing or not an object.
    pub fn get(&self, key: &str) -> Result<&Json> {
        let fields = self.as_obj()?;
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError(format!("missing field {key:?}")))
    }

    /// Field lookup that tolerates absence (for optional fields).
    pub fn get_opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write::write_compact(self, &mut out);
        out
    }

    /// Human-friendly two-space-indented encoding.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write::write_pretty(self, 0, &mut out);
        out
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// Fallible reconstruction from a [`Json`] tree.
pub trait FromJson: Sized {
    fn from_json(j: &Json) -> Result<Self>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(j: &Json) -> Result<Self> {
        Ok(j.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self> {
        j.as_bool()
    }
}

macro_rules! json_int {
    ($($t:ty),* $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self> {
                let v = j.as_i64()?;
                <$t>::try_from(v).map_err(|_| JsonError(format!(
                    "{} out of range for {}", v, stringify!($t)
                )))
            }
        }
    )*};
}

json_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

// u64 values beyond i64::MAX do not occur in this workspace (cardinalities
// and timestamps), so they round-trip through Int; overflow is an error.
impl ToJson for u64 {
    fn to_json(&self) -> Json {
        match i64::try_from(*self) {
            Ok(v) => Json::Int(v),
            Err(_) => Json::Str(self.to_string()),
        }
    }
}

impl FromJson for u64 {
    fn from_json(j: &Json) -> Result<Self> {
        match j {
            Json::Int(v) if *v >= 0 => Ok(*v as u64),
            Json::Str(s) => s
                .parse()
                .map_err(|_| JsonError(format!("bad u64 literal {s:?}"))),
            other => err(format!("expected u64, got {other:?}")),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        // JSON has no non-finite literals; encode them as tagged strings so
        // snapshots survive a round trip.
        if self.is_finite() {
            Json::Float(*self)
        } else if self.is_nan() {
            Json::str("NaN")
        } else if *self > 0.0 {
            Json::str("inf")
        } else {
            Json::str("-inf")
        }
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self> {
        j.as_f64()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self> {
        Ok(j.as_str()?.to_string())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for Arc<str> {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Arc<str> {
    fn from_json(j: &Json) -> Result<Self> {
        Ok(Arc::from(j.as_str()?))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self> {
        j.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for VecDeque<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: FromJson> FromJson for VecDeque<T> {
    fn from_json(j: &Json) -> Result<Self> {
        j.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self> {
        match j {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(j: &Json) -> Result<Self> {
        match j.as_arr()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            other => err(format!("expected pair, got {} elements", other.len())),
        }
    }
}

impl<V: ToJson> ToJson for HashMap<Arc<str>, V> {
    fn to_json(&self) -> Json {
        // Deterministic output: sort keys.
        let mut keys: Vec<&Arc<str>> = self.keys().collect();
        keys.sort();
        Json::Obj(
            keys.into_iter()
                .map(|k| (k.to_string(), self[k].to_json()))
                .collect(),
        )
    }
}

impl<V: FromJson> FromJson for HashMap<Arc<str>, V> {
    fn from_json(j: &Json) -> Result<Self> {
        j.as_obj()?
            .iter()
            .map(|(k, v)| Ok((Arc::from(k.as_str()), V::from_json(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for j in [
            Json::Null,
            Json::Bool(true),
            Json::Int(-(1 << 62)),
            Json::Int((1 << 62) - 1),
            Json::Float(3.5),
            Json::Float(-0.0),
            Json::str("he\"llo\n\t\\ world ✓"),
        ] {
            let s = j.to_string_compact();
            assert_eq!(parse(&s).unwrap(), j, "round trip of {s}");
        }
    }

    #[test]
    fn nested_round_trips_pretty_and_compact() {
        let j = Json::obj([
            (
                "a",
                Json::Arr(vec![Json::Int(1), Json::Null, Json::str("x")]),
            ),
            ("b", Json::obj([("inner", Json::Float(0.25))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(parse(&j.to_string_compact()).unwrap(), j);
        assert_eq!(parse(&j.to_string_pretty()).unwrap(), j);
    }

    #[test]
    fn floats_round_trip_shortest() {
        for v in [0.1, 1e300, -2.5e-10, 1.0 / 3.0, f64::MIN_POSITIVE] {
            let j = v.to_json();
            let back = f64::from_json(&parse(&j.to_string_compact()).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn non_finite_floats_round_trip_tagged() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let j = v.to_json();
            let back = f64::from_json(&parse(&j.to_string_compact()).unwrap()).unwrap();
            assert_eq!(
                back.to_bits().count_ones() > 0,
                v.to_bits().count_ones() > 0
            );
            assert_eq!(back.is_nan(), v.is_nan());
            if !v.is_nan() {
                assert_eq!(back, v);
            }
        }
    }

    #[test]
    fn containers_round_trip() {
        let mut m: HashMap<Arc<str>, Vec<(u64, String)>> = HashMap::new();
        m.insert(Arc::from("b"), vec![(7, "x".into())]);
        m.insert(Arc::from("a"), vec![]);
        let j = m.to_json();
        let back: HashMap<Arc<str>, Vec<(u64, String)>> =
            FromJson::from_json(&parse(&j.to_string_compact()).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1e",
            "\"unterminated",
            "{}extra",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_beyond_i64_survives() {
        let v = u64::MAX;
        let back = u64::from_json(&parse(&v.to_json().to_string_compact()).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn get_reports_missing_fields() {
        let j = Json::obj([("present", Json::Int(1))]);
        assert!(j.get("present").is_ok());
        assert!(j.get("absent").is_err());
        assert!(j.get_opt("absent").is_none());
    }
}
