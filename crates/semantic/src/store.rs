//! The semantic store: which regions of each table have been retrieved, and
//! when.
//!
//! Row data itself lives in the buyer's local DBMS (the execution engine
//! mirrors every retrieved tuple there); the store tracks *coverage* — the
//! regions of each table's query space whose tuples are locally complete —
//! plus a timestamp per region for the consistency levels of Section 4.3.

use std::collections::HashMap;
use std::sync::Arc;

use payless_geometry::{QuerySpace, Region};

/// Result-freshness policy (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// Reuse any stored result, however old. Semantic query rewriting is
    /// always enabled.
    Weak,
    /// Reuse results retrieved within the last `n` time units (the paper
    /// phrases it as "X-week consistency"; the unit is whatever clock the
    /// caller advances).
    Window(u64),
    /// Never reuse stored results — semantic query rewriting is disabled and
    /// every query goes to the market.
    Strong,
}

impl Consistency {
    /// The minimum `stored_at` timestamp a view must have to be reusable at
    /// time `now`, or `None` when nothing is reusable.
    pub fn min_stored_at(&self, now: u64) -> Option<u64> {
        match self {
            Consistency::Weak => Some(0),
            Consistency::Window(w) => Some(now.saturating_sub(*w)),
            Consistency::Strong => None,
        }
    }
}

/// One stored view: a retrieved region and when it was retrieved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredView {
    /// The covered region of the table's query space.
    pub region: Region,
    /// Logical retrieval time.
    pub stored_at: u64,
}

/// Cap on stored view boxes per table. Coverage is an optimization, not a
/// correctness requirement: when a table's coverage fragments beyond this,
/// the oldest views are forgotten (their data stays in the mirror; the
/// affected regions may simply be re-fetched later).
pub const MAX_VIEWS_PER_TABLE: usize = 256;

/// Per-table coverage.
#[derive(Debug, Clone)]
struct TableStore {
    space: QuerySpace,
    views: Vec<StoredView>,
}

impl TableStore {
    /// Insert a region, dropping views it contains and coalescing mergeable
    /// neighbours (two views whose union is a single box and whose
    /// timestamps may be conservatively merged to the older one).
    fn insert(&mut self, region: Region, now: u64) {
        // Already fully covered by a newer-or-equal view: nothing to do.
        if self
            .views
            .iter()
            .any(|v| v.stored_at >= now && v.region.contains(&region))
        {
            return;
        }
        // Drop older views that the new region swallows.
        self.views
            .retain(|v| !(region.contains(&v.region) && v.stored_at <= now));

        let mut current = StoredView {
            region,
            stored_at: now,
        };
        // Coalesce until fixpoint.
        loop {
            let mut merged = false;
            let mut i = 0;
            while i < self.views.len() {
                if let Some(union) = box_union(&self.views[i].region, &current.region) {
                    let old = self.views.swap_remove(i);
                    current = StoredView {
                        region: union,
                        // Conservative freshness: the union is only as fresh
                        // as its stalest part.
                        stored_at: old.stored_at.min(current.stored_at),
                    };
                    merged = true;
                } else {
                    i += 1;
                }
            }
            if !merged {
                break;
            }
        }
        self.views.push(current);
        if self.views.len() > MAX_VIEWS_PER_TABLE {
            // Forget the stalest views first.
            self.views.sort_by_key(|v| std::cmp::Reverse(v.stored_at));
            self.views.truncate(MAX_VIEWS_PER_TABLE / 2);
        }
    }

    fn usable_views(&self, min_stored_at: u64) -> Vec<Region> {
        self.views
            .iter()
            .filter(|v| v.stored_at >= min_stored_at)
            .map(|v| v.region.clone())
            .collect()
    }
}

/// The union of two regions if it is exactly one box, else `None`.
///
/// True when one contains the other, or when they differ on a single
/// dimension where their intervals are adjacent/overlapping and agree
/// everywhere else.
fn box_union(a: &Region, b: &Region) -> Option<Region> {
    if a.contains(b) {
        return Some(a.clone());
    }
    if b.contains(a) {
        return Some(b.clone());
    }
    let mut differing = None;
    for d in 0..a.arity() {
        if a.dim(d) != b.dim(d) {
            if differing.is_some() {
                return None;
            }
            differing = Some(d);
        }
    }
    let d = differing?;
    let (ia, ib) = (a.dim(d), b.dim(d));
    if !ia.mergeable(&ib) {
        return None;
    }
    let mut dims = a.dims().to_vec();
    dims[d] = ia.merge(&ib);
    Some(Region::new(dims))
}

/// Coverage for every market table PayLess has touched.
#[derive(Debug, Clone, Default)]
pub struct SemanticStore {
    tables: HashMap<Arc<str>, TableStore>,
}

impl SemanticStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table's query space (idempotent).
    pub fn register(&mut self, space: QuerySpace) {
        self.tables
            .entry(space.table.clone())
            .or_insert_with(|| TableStore {
                space,
                views: Vec::new(),
            });
    }

    /// The query space of `table`, if registered.
    pub fn space(&self, table: &str) -> Option<&QuerySpace> {
        self.tables.get(table).map(|t| &t.space)
    }

    /// Record that `region` of `table` has been fully retrieved at time
    /// `now`.
    pub fn record(&mut self, table: &str, region: Region, now: u64) {
        let entry = self
            .tables
            .get_mut(table)
            .unwrap_or_else(|| panic!("table `{table}` not registered in semantic store"));
        entry.insert(region, now);
    }

    /// The stored regions of `table` usable under `consistency` at `now`.
    /// Strong consistency yields no views (rewriting disabled).
    pub fn views(&self, table: &str, consistency: Consistency, now: u64) -> Vec<Region> {
        let Some(min) = consistency.min_stored_at(now) else {
            return Vec::new();
        };
        self.tables
            .get(table)
            .map(|t| t.usable_views(min))
            .unwrap_or_default()
    }

    /// Number of stored view boxes for `table` (after coalescing).
    pub fn view_count(&self, table: &str) -> usize {
        self.tables.get(table).map(|t| t.views.len()).unwrap_or(0)
    }

    /// Fraction of `table`'s whole query space covered by stored views
    /// (freshness-agnostic). Diagnostic for the shell and experiments.
    pub fn coverage_fraction(&self, table: &str) -> f64 {
        let Some(t) = self.tables.get(table) else {
            return 0.0;
        };
        let full = t.space.full_region().volume();
        if full == 0 {
            return 0.0;
        }
        let views: Vec<Region> = t.views.iter().map(|v| v.region.clone()).collect();
        let covered = payless_geometry::union_volume(&views);
        (covered as f64 / full as f64).clamp(0.0, 1.0)
    }

    /// `true` if `region` of `table` is fully covered by usable views.
    pub fn covers(&self, table: &str, region: &Region, consistency: Consistency, now: u64) -> bool {
        let views = self.views(table, consistency, now);
        region.subtract_all(&views).is_empty()
    }
}

/// How well the store covers a region under a consistency policy — the
/// telemetry classification behind SQR hit/miss counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverClass {
    /// Entirely answerable from stored views: nothing to purchase.
    Full,
    /// Some usable views overlap the region: only remainders are purchased.
    Partial,
    /// No usable coverage: the whole region must be purchased.
    Miss,
}

impl SemanticStore {
    /// Classify how much of `region` the usable views cover.
    pub fn classify(
        &self,
        table: &str,
        region: &Region,
        consistency: Consistency,
        now: u64,
    ) -> CoverClass {
        let views = self.views(table, consistency, now);
        if views.is_empty() {
            return CoverClass::Miss;
        }
        if region.subtract_all(&views).is_empty() {
            CoverClass::Full
        } else if views.iter().any(|v| v.overlaps(region)) {
            CoverClass::Partial
        } else {
            CoverClass::Miss
        }
    }
}

impl payless_json::ToJson for Consistency {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        match self {
            Consistency::Weak => Json::str("weak"),
            Consistency::Strong => Json::str("strong"),
            Consistency::Window(w) => Json::obj([("window", w.to_json())]),
        }
    }
}

impl payless_json::FromJson for Consistency {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::Json;
        match j {
            Json::Str(s) if s == "weak" => Ok(Consistency::Weak),
            Json::Str(s) if s == "strong" => Ok(Consistency::Strong),
            _ => Ok(Consistency::Window(j.get("window")?.as_u64()?)),
        }
    }
}

impl payless_json::ToJson for StoredView {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        Json::obj([
            ("region", self.region.to_json()),
            ("stored_at", self.stored_at.to_json()),
        ])
    }
}

impl payless_json::FromJson for StoredView {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::FromJson;
        Ok(StoredView {
            region: FromJson::from_json(j.get("region")?)?,
            stored_at: FromJson::from_json(j.get("stored_at")?)?,
        })
    }
}

impl payless_json::ToJson for TableStore {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        Json::obj([
            ("space", self.space.to_json()),
            ("views", self.views.to_json()),
        ])
    }
}

impl payless_json::FromJson for TableStore {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::FromJson;
        Ok(TableStore {
            space: FromJson::from_json(j.get("space")?)?,
            views: FromJson::from_json(j.get("views")?)?,
        })
    }
}

impl payless_json::ToJson for SemanticStore {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        Json::obj([("tables", self.tables.to_json())])
    }
}

impl payless_json::FromJson for SemanticStore {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::FromJson;
        Ok(SemanticStore {
            tables: FromJson::from_json(j.get("tables")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_geometry::region;
    use payless_types::{Column, Domain, Schema};

    fn space_1d() -> QuerySpace {
        QuerySpace::of(&Schema::new(
            "R",
            vec![Column::free("A", Domain::int(0, 100))],
        ))
    }

    fn store_1d() -> SemanticStore {
        let mut s = SemanticStore::new();
        s.register(space_1d());
        s
    }

    #[test]
    fn consistency_windows() {
        assert_eq!(Consistency::Weak.min_stored_at(100), Some(0));
        assert_eq!(Consistency::Window(10).min_stored_at(100), Some(90));
        assert_eq!(Consistency::Window(200).min_stored_at(100), Some(0));
        assert_eq!(Consistency::Strong.min_stored_at(100), None);
    }

    #[test]
    fn record_and_cover() {
        let mut s = store_1d();
        s.record("R", region![(10, 20)], 1);
        assert!(s.covers("R", &region![(12, 18)], Consistency::Weak, 2));
        assert!(!s.covers("R", &region![(5, 15)], Consistency::Weak, 2));
        assert!(!s.covers("R", &region![(12, 18)], Consistency::Strong, 2));
    }

    #[test]
    fn window_consistency_expires_views() {
        let mut s = store_1d();
        s.record("R", region![(10, 20)], 1);
        assert!(s.covers("R", &region![(10, 20)], Consistency::Window(5), 4));
        assert!(!s.covers("R", &region![(10, 20)], Consistency::Window(5), 10));
    }

    #[test]
    fn adjacent_views_coalesce() {
        let mut s = store_1d();
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(10, 19)], 2);
        assert_eq!(s.view_count("R"), 1);
        assert!(s.covers("R", &region![(0, 19)], Consistency::Weak, 3));
        // Conservative freshness: the union carries the older timestamp
        // (1), so a window reaching back only to t=2 cannot use it.
        assert!(!s.covers("R", &region![(0, 19)], Consistency::Window(1), 3));
    }

    #[test]
    fn contained_views_are_absorbed() {
        let mut s = store_1d();
        s.record("R", region![(10, 20)], 1);
        s.record("R", region![(0, 50)], 2);
        assert_eq!(s.view_count("R"), 1);
        assert_eq!(s.views("R", Consistency::Weak, 3), vec![region![(0, 50)]]);
    }

    #[test]
    fn disjoint_views_stay_separate() {
        let mut s = store_1d();
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(50, 59)], 2);
        assert_eq!(s.view_count("R"), 2);
    }

    #[test]
    fn chained_coalescing_reaches_fixpoint() {
        let mut s = store_1d();
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(20, 29)], 1);
        // The middle piece bridges both.
        s.record("R", region![(10, 19)], 2);
        assert_eq!(s.view_count("R"), 1);
        assert!(s.covers("R", &region![(0, 29)], Consistency::Weak, 3));
    }

    #[test]
    fn box_union_2d() {
        // Same extent on dim 1, adjacent on dim 0 -> merges.
        let a = region![(0, 4), (0, 9)];
        let b = region![(5, 9), (0, 9)];
        assert_eq!(box_union(&a, &b), Some(region![(0, 9), (0, 9)]));
        // Differ on two dims -> no box union.
        let c = region![(5, 9), (10, 19)];
        assert_eq!(box_union(&a, &c), None);
        // Disjoint on the differing dim -> none.
        let d = region![(6, 9), (0, 9)];
        assert_eq!(box_union(&a, &d), None);
    }

    #[test]
    fn unregistered_table_has_no_views() {
        let s = SemanticStore::new();
        assert!(s.views("X", Consistency::Weak, 0).is_empty());
        assert_eq!(s.view_count("X"), 0);
        assert!(s.space("X").is_none());
    }

    #[test]
    fn coverage_fraction_tracks_union() {
        let mut s = store_1d();
        assert_eq!(s.coverage_fraction("R"), 0.0);
        s.record("R", region![(0, 49)], 1);
        assert!((s.coverage_fraction("R") - 50.0 / 101.0).abs() < 1e-9);
        // Overlapping view counts once.
        s.record("R", region![(25, 74)], 2);
        assert!((s.coverage_fraction("R") - 75.0 / 101.0).abs() < 1e-9);
        assert_eq!(s.coverage_fraction("unknown"), 0.0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn recording_unregistered_table_panics() {
        let mut s = SemanticStore::new();
        s.record("X", region![(0, 1)], 0);
    }
}
