//! The semantic store: which regions of each table have been retrieved, and
//! when.
//!
//! Row data itself lives in the buyer's local DBMS (the execution engine
//! mirrors every retrieved tuple there); the store tracks *coverage* — the
//! regions of each table's query space whose tuples are locally complete —
//! plus a timestamp per region for the consistency levels of Section 4.3.
//!
//! Regions are stored behind `Arc` and handed out by handle, so the hot
//! query path never deep-copies coverage geometry. Each table additionally
//! keeps a grid index over its first dimension (see [`TableStore`]): probes
//! for the views overlapping one query region touch only the index buckets
//! the region spans instead of scanning every stored view.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use payless_geometry::{Interval, QuerySpace, Region};
use payless_telemetry::Recorder;

/// Result-freshness policy (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// Reuse any stored result, however old. Semantic query rewriting is
    /// always enabled.
    Weak,
    /// Reuse results retrieved within the last `n` time units (the paper
    /// phrases it as "X-week consistency"; the unit is whatever clock the
    /// caller advances).
    Window(u64),
    /// Never reuse stored results — semantic query rewriting is disabled and
    /// every query goes to the market.
    Strong,
}

impl Consistency {
    /// The minimum `stored_at` timestamp a view must have to be reusable at
    /// time `now`, or `None` when nothing is reusable.
    pub fn min_stored_at(&self, now: u64) -> Option<u64> {
        match self {
            Consistency::Weak => Some(0),
            Consistency::Window(w) => Some(now.saturating_sub(*w)),
            Consistency::Strong => None,
        }
    }
}

/// One stored view: a retrieved region and when it was retrieved.
///
/// The region sits behind an `Arc` so probes can hand out handles without
/// copying the geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredView {
    /// The covered region of the table's query space.
    pub region: Arc<Region>,
    /// Logical retrieval time.
    pub stored_at: u64,
}

/// Cap on stored view boxes per table. Coverage is an optimization, not a
/// correctness requirement: when a table's coverage fragments beyond this,
/// the oldest views are forgotten (their data stays in the mirror; the
/// affected regions may simply be re-fetched later).
pub const MAX_VIEWS_PER_TABLE: usize = 256;

/// Number of grid buckets in each table's dim-0 index.
const INDEX_BUCKETS: usize = 64;

/// Probes against tables with fewer views than this skip the index: a short
/// linear scan beats the bucket gather.
const INDEX_MIN_VIEWS: usize = 8;

/// Per-table coverage plus a grid index over the first dimension.
///
/// `buckets[b]` lists the positions (into `views`) of the views whose dim-0
/// interval overlaps grid bucket `b` of the table's dim-0 domain. The index
/// is rebuilt eagerly on every mutation — mutations are rare (one per
/// market purchase) and bounded by [`MAX_VIEWS_PER_TABLE`], while probes
/// happen for every candidate plan the optimizer costs — so all reads stay
/// `&self` and thread-safe.
#[derive(Debug, Clone)]
struct TableStore {
    space: QuerySpace,
    views: Vec<StoredView>,
    buckets: Vec<Vec<u32>>,
    /// dim-0 domain of the space, cached for bucket arithmetic.
    axis: Interval,
}

impl TableStore {
    fn new(space: QuerySpace) -> Self {
        let axis = space.full_region().dim(0);
        TableStore {
            space,
            views: Vec::new(),
            buckets: vec![Vec::new(); INDEX_BUCKETS],
            axis,
        }
    }

    /// The grid bucket containing coordinate `x`, clamping coordinates
    /// outside the domain to the edge buckets (clamping is monotone, so two
    /// overlapping intervals always share at least one bucket).
    fn bucket_of(&self, x: i64) -> usize {
        let x = x.clamp(self.axis.lo, self.axis.hi);
        let off = (x - self.axis.lo) as u128;
        let span = self.axis.width() as u128;
        ((off * INDEX_BUCKETS as u128 / span) as usize).min(INDEX_BUCKETS - 1)
    }

    /// Bucket span `[first, last]` of a dim-0 interval.
    fn bucket_range(&self, iv: Interval) -> (usize, usize) {
        (self.bucket_of(iv.lo), self.bucket_of(iv.hi))
    }

    fn rebuild_index(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        for (id, v) in self.views.iter().enumerate() {
            let (first, last) = self.bucket_range(v.region.dim(0));
            for b in first..=last {
                self.buckets[b].push(id as u32);
            }
        }
    }

    /// Insert a region, dropping views it contains and coalescing mergeable
    /// neighbours (two views whose union is a single box and whose
    /// timestamps may be conservatively merged to the older one).
    fn insert(&mut self, region: Region, now: u64) {
        // Already fully covered by a newer-or-equal view: nothing to do.
        if self
            .views
            .iter()
            .any(|v| v.stored_at >= now && v.region.contains(&region))
        {
            return;
        }
        // Drop older views that the new region swallows.
        self.views
            .retain(|v| !(region.contains(&v.region) && v.stored_at <= now));

        let mut current = StoredView {
            region: Arc::new(region),
            stored_at: now,
        };
        // Coalesce until fixpoint.
        loop {
            let mut merged = false;
            let mut i = 0;
            while i < self.views.len() {
                if let Some(union) = box_union(&self.views[i].region, &current.region) {
                    let old = self.views.swap_remove(i);
                    current = StoredView {
                        region: Arc::new(union),
                        // Conservative freshness: the union is only as fresh
                        // as its stalest part.
                        stored_at: old.stored_at.min(current.stored_at),
                    };
                    merged = true;
                } else {
                    i += 1;
                }
            }
            if !merged {
                break;
            }
        }
        self.views.push(current);
        if self.views.len() > MAX_VIEWS_PER_TABLE {
            // Forget the stalest views first.
            self.views.sort_by_key(|v| std::cmp::Reverse(v.stored_at));
            self.views.truncate(MAX_VIEWS_PER_TABLE / 2);
        }
        self.rebuild_index();
    }

    fn usable_views(&self, min_stored_at: u64) -> Vec<Arc<Region>> {
        self.views
            .iter()
            .filter(|v| v.stored_at >= min_stored_at)
            .map(|v| v.region.clone())
            .collect()
    }

    /// The usable views overlapping `probe`, via the grid index when it can
    /// narrow the scan. Returns views in stored order (identical to the
    /// linear scan) and reports whether the index was used.
    fn probe(&self, probe: &Region, min_stored_at: u64) -> (Vec<Arc<Region>>, bool) {
        let (first, last) = self.bucket_range(probe.dim(0));
        let use_index =
            self.views.len() >= INDEX_MIN_VIEWS && (last - first + 1) < INDEX_BUCKETS / 2;
        if !use_index {
            let out = self
                .views
                .iter()
                .filter(|v| v.stored_at >= min_stored_at && v.region.overlaps(probe))
                .map(|v| v.region.clone())
                .collect();
            return (out, false);
        }
        // Gather candidate ids over the bucket span; ascending-id iteration
        // reproduces stored order exactly.
        let mut ids: Vec<u32> = self.buckets[first..=last].concat();
        ids.sort_unstable();
        ids.dedup();
        let out = ids
            .into_iter()
            .map(|id| &self.views[id as usize])
            .filter(|v| v.stored_at >= min_stored_at && v.region.overlaps(probe))
            .map(|v| v.region.clone())
            .collect();
        (out, true)
    }
}

/// The union of two regions if it is exactly one box, else `None`.
///
/// True when one contains the other, or when they differ on a single
/// dimension where their intervals are adjacent/overlapping and agree
/// everywhere else.
fn box_union(a: &Region, b: &Region) -> Option<Region> {
    if a.contains(b) {
        return Some(a.clone());
    }
    if b.contains(a) {
        return Some(b.clone());
    }
    let mut differing = None;
    for d in 0..a.arity() {
        if a.dim(d) != b.dim(d) {
            if differing.is_some() {
                return None;
            }
            differing = Some(d);
        }
    }
    let d = differing?;
    let (ia, ib) = (a.dim(d), b.dim(d));
    if !ia.mergeable(&ib) {
        return None;
    }
    let mut dims = a.dims().to_vec();
    dims[d] = ia.merge(&ib);
    Some(Region::new(dims))
}

/// Coverage for every market table PayLess has touched.
#[derive(Debug, Clone, Default)]
pub struct SemanticStore {
    tables: HashMap<Arc<str>, TableStore>,
    /// Telemetry sink for probe timings and index hit/fallback counters.
    /// Shared, not serialized; a restored store starts unattached.
    recorder: Option<Arc<Recorder>>,
}

impl SemanticStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a telemetry recorder; subsequent probes report
    /// `store.index_probe` durations and `store.index_hits` /
    /// `store.index_full_scans` counters into it.
    ///
    /// These counters are a property of the *store*, not of any one query:
    /// when the store is shared across sessions (the serving layer), every
    /// session's probes land in this recorder, so per-query recorders must
    /// never be attached here. The `\report` renderer tags them
    /// "store-level" for the same reason.
    pub fn attach_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Register a table's query space (idempotent).
    pub fn register(&mut self, space: QuerySpace) {
        self.tables
            .entry(space.table.clone())
            .or_insert_with(|| TableStore::new(space));
    }

    /// Split the store into independent single-table stores — the building
    /// block of [`crate::shared::SharedSemanticStore`]'s per-table shards.
    /// The recorder handle (if any) is shared by every shard.
    pub(crate) fn split_shards(self) -> Vec<(Arc<str>, SemanticStore)> {
        let recorder = self.recorder;
        self.tables
            .into_iter()
            .map(|(name, ts)| {
                let mut tables = HashMap::new();
                tables.insert(name.clone(), ts);
                (
                    name,
                    SemanticStore {
                        tables,
                        recorder: recorder.clone(),
                    },
                )
            })
            .collect()
    }

    /// Move every table of `other` into `self`, replacing tables already
    /// present — reassembles a point-in-time snapshot from shared shards.
    pub(crate) fn absorb(&mut self, other: SemanticStore) {
        for (name, ts) in other.tables {
            self.tables.insert(name, ts);
        }
    }

    /// The query space of `table`, if registered.
    pub fn space(&self, table: &str) -> Option<&QuerySpace> {
        self.tables.get(table).map(|t| &t.space)
    }

    /// Record that `region` of `table` has been fully retrieved at time
    /// `now`.
    pub fn record(&mut self, table: &str, region: Region, now: u64) {
        let entry = self
            .tables
            .get_mut(table)
            .unwrap_or_else(|| panic!("table `{table}` not registered in semantic store"));
        entry.insert(region, now);
    }

    /// The stored regions of `table` usable under `consistency` at `now`.
    /// Strong consistency yields no views (rewriting disabled).
    pub fn views(&self, table: &str, consistency: Consistency, now: u64) -> Vec<Arc<Region>> {
        let Some(min) = consistency.min_stored_at(now) else {
            return Vec::new();
        };
        self.tables
            .get(table)
            .map(|t| t.usable_views(min))
            .unwrap_or_default()
    }

    /// The usable views of `table` that overlap `probe`, served from the
    /// per-table grid index when it can narrow the scan. Views that do not
    /// overlap the probe region cannot contribute to its decomposition or
    /// remainder, so this is interchangeable with [`SemanticStore::views`]
    /// for per-region work — and what the optimizer's hot path should call.
    pub fn views_overlapping(
        &self,
        table: &str,
        probe: &Region,
        consistency: Consistency,
        now: u64,
    ) -> Vec<Arc<Region>> {
        let Some(min) = consistency.min_stored_at(now) else {
            return Vec::new();
        };
        let Some(t) = self.tables.get(table) else {
            return Vec::new();
        };
        let timer = self
            .recorder
            .as_deref()
            .filter(|r| r.is_enabled())
            .map(|_| Instant::now());
        let (out, used_index) = t.probe(probe, min);
        if let (Some(rec), Some(t0)) = (self.recorder.as_deref(), timer) {
            rec.record_duration("store.index_probe", t0.elapsed().as_nanos() as u64);
            rec.count(
                if used_index {
                    "store.index_hits"
                } else {
                    "store.index_full_scans"
                },
                1,
            );
            rec.record_size("store.probe_views", out.len() as u64);
        }
        out
    }

    /// Number of stored view boxes for `table` (after coalescing).
    pub fn view_count(&self, table: &str) -> usize {
        self.tables.get(table).map(|t| t.views.len()).unwrap_or(0)
    }

    /// Fraction of `table`'s whole query space covered by stored views
    /// (freshness-agnostic). Diagnostic for the shell and experiments.
    pub fn coverage_fraction(&self, table: &str) -> f64 {
        let Some(t) = self.tables.get(table) else {
            return 0.0;
        };
        let full = t.space.full_region().volume();
        if full == 0 {
            return 0.0;
        }
        let views: Vec<Arc<Region>> = t.views.iter().map(|v| v.region.clone()).collect();
        let covered = payless_geometry::union_volume(&views);
        (covered as f64 / full as f64).clamp(0.0, 1.0)
    }

    /// `true` if `region` of `table` is fully covered by usable views.
    pub fn covers(&self, table: &str, region: &Region, consistency: Consistency, now: u64) -> bool {
        let views = self.views_overlapping(table, region, consistency, now);
        region.subtract_all(&views).is_empty()
    }
}

/// How well the store covers a region under a consistency policy — the
/// telemetry classification behind SQR hit/miss counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverClass {
    /// Entirely answerable from stored views: nothing to purchase.
    Full,
    /// Some usable views overlap the region: only remainders are purchased.
    Partial,
    /// No usable coverage: the whole region must be purchased.
    Miss,
}

impl SemanticStore {
    /// Classify how much of `region` the usable views cover.
    pub fn classify(
        &self,
        table: &str,
        region: &Region,
        consistency: Consistency,
        now: u64,
    ) -> CoverClass {
        // Probe for overlapping views only: anything disjoint from the
        // region is a Miss regardless, which the empty-overlap check covers.
        let views = self.views_overlapping(table, region, consistency, now);
        if views.is_empty() {
            return CoverClass::Miss;
        }
        if region.subtract_all(&views).is_empty() {
            CoverClass::Full
        } else {
            CoverClass::Partial
        }
    }
}

impl payless_json::ToJson for Consistency {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        match self {
            Consistency::Weak => Json::str("weak"),
            Consistency::Strong => Json::str("strong"),
            Consistency::Window(w) => Json::obj([("window", w.to_json())]),
        }
    }
}

impl payless_json::FromJson for Consistency {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::Json;
        match j {
            Json::Str(s) if s == "weak" => Ok(Consistency::Weak),
            Json::Str(s) if s == "strong" => Ok(Consistency::Strong),
            _ => Ok(Consistency::Window(j.get("window")?.as_u64()?)),
        }
    }
}

impl payless_json::ToJson for StoredView {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        Json::obj([
            ("region", self.region.to_json()),
            ("stored_at", self.stored_at.to_json()),
        ])
    }
}

impl payless_json::FromJson for StoredView {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::FromJson;
        Ok(StoredView {
            region: Arc::new(FromJson::from_json(j.get("region")?)?),
            stored_at: FromJson::from_json(j.get("stored_at")?)?,
        })
    }
}

impl payless_json::ToJson for TableStore {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        Json::obj([
            ("space", self.space.to_json()),
            ("views", self.views.to_json()),
        ])
    }
}

impl payless_json::FromJson for TableStore {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::FromJson;
        let mut t = TableStore::new(FromJson::from_json(j.get("space")?)?);
        t.views = FromJson::from_json(j.get("views")?)?;
        t.rebuild_index();
        Ok(t)
    }
}

impl payless_json::ToJson for SemanticStore {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        Json::obj([("tables", self.tables.to_json())])
    }
}

impl payless_json::FromJson for SemanticStore {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::FromJson;
        Ok(SemanticStore {
            tables: FromJson::from_json(j.get("tables")?)?,
            recorder: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_geometry::region;
    use payless_types::{Column, Domain, Schema};

    fn space_1d() -> QuerySpace {
        QuerySpace::of(&Schema::new(
            "R",
            vec![Column::free("A", Domain::int(0, 100))],
        ))
    }

    fn store_1d() -> SemanticStore {
        let mut s = SemanticStore::new();
        s.register(space_1d());
        s
    }

    #[test]
    fn consistency_windows() {
        assert_eq!(Consistency::Weak.min_stored_at(100), Some(0));
        assert_eq!(Consistency::Window(10).min_stored_at(100), Some(90));
        assert_eq!(Consistency::Window(200).min_stored_at(100), Some(0));
        assert_eq!(Consistency::Strong.min_stored_at(100), None);
    }

    #[test]
    fn record_and_cover() {
        let mut s = store_1d();
        s.record("R", region![(10, 20)], 1);
        assert!(s.covers("R", &region![(12, 18)], Consistency::Weak, 2));
        assert!(!s.covers("R", &region![(5, 15)], Consistency::Weak, 2));
        assert!(!s.covers("R", &region![(12, 18)], Consistency::Strong, 2));
    }

    #[test]
    fn window_consistency_expires_views() {
        let mut s = store_1d();
        s.record("R", region![(10, 20)], 1);
        assert!(s.covers("R", &region![(10, 20)], Consistency::Window(5), 4));
        assert!(!s.covers("R", &region![(10, 20)], Consistency::Window(5), 10));
    }

    #[test]
    fn adjacent_views_coalesce() {
        let mut s = store_1d();
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(10, 19)], 2);
        assert_eq!(s.view_count("R"), 1);
        assert!(s.covers("R", &region![(0, 19)], Consistency::Weak, 3));
        // Conservative freshness: the union carries the older timestamp
        // (1), so a window reaching back only to t=2 cannot use it.
        assert!(!s.covers("R", &region![(0, 19)], Consistency::Window(1), 3));
    }

    #[test]
    fn contained_views_are_absorbed() {
        let mut s = store_1d();
        s.record("R", region![(10, 20)], 1);
        s.record("R", region![(0, 50)], 2);
        assert_eq!(s.view_count("R"), 1);
        assert_eq!(
            s.views("R", Consistency::Weak, 3),
            vec![Arc::new(region![(0, 50)])]
        );
    }

    #[test]
    fn disjoint_views_stay_separate() {
        let mut s = store_1d();
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(50, 59)], 2);
        assert_eq!(s.view_count("R"), 2);
    }

    #[test]
    fn chained_coalescing_reaches_fixpoint() {
        let mut s = store_1d();
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(20, 29)], 1);
        // The middle piece bridges both.
        s.record("R", region![(10, 19)], 2);
        assert_eq!(s.view_count("R"), 1);
        assert!(s.covers("R", &region![(0, 29)], Consistency::Weak, 3));
    }

    #[test]
    fn box_union_2d() {
        // Same extent on dim 1, adjacent on dim 0 -> merges.
        let a = region![(0, 4), (0, 9)];
        let b = region![(5, 9), (0, 9)];
        assert_eq!(box_union(&a, &b), Some(region![(0, 9), (0, 9)]));
        // Differ on two dims -> no box union.
        let c = region![(5, 9), (10, 19)];
        assert_eq!(box_union(&a, &c), None);
        // Disjoint on the differing dim -> none.
        let d = region![(6, 9), (0, 9)];
        assert_eq!(box_union(&a, &d), None);
    }

    #[test]
    fn unregistered_table_has_no_views() {
        let s = SemanticStore::new();
        assert!(s.views("X", Consistency::Weak, 0).is_empty());
        assert_eq!(s.view_count("X"), 0);
        assert!(s.space("X").is_none());
    }

    #[test]
    fn coverage_fraction_tracks_union() {
        let mut s = store_1d();
        assert_eq!(s.coverage_fraction("R"), 0.0);
        s.record("R", region![(0, 49)], 1);
        assert!((s.coverage_fraction("R") - 50.0 / 101.0).abs() < 1e-9);
        // Overlapping view counts once.
        s.record("R", region![(25, 74)], 2);
        assert!((s.coverage_fraction("R") - 75.0 / 101.0).abs() < 1e-9);
        assert_eq!(s.coverage_fraction("unknown"), 0.0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn recording_unregistered_table_panics() {
        let mut s = SemanticStore::new();
        s.record("X", region![(0, 1)], 0);
    }

    fn space_2d() -> QuerySpace {
        QuerySpace::of(&Schema::new(
            "G",
            vec![
                Column::free("A", Domain::int(0, 255)),
                Column::free("B", Domain::int(0, 255)),
            ],
        ))
    }

    /// Reference implementation the index must agree with: linear scan,
    /// freshness filter, overlap filter, stored order.
    fn linear_probe(
        s: &SemanticStore,
        table: &str,
        probe: &Region,
        consistency: Consistency,
        now: u64,
    ) -> Vec<Arc<Region>> {
        s.views(table, consistency, now)
            .into_iter()
            .filter(|v| v.overlaps(probe))
            .collect()
    }

    #[test]
    fn indexed_probe_matches_linear_scan_when_fragmented() {
        let mut s = SemanticStore::new();
        s.register(space_2d());
        // Many disjoint views so coalescing leaves them separate and the
        // store is comfortably past the index threshold.
        for i in 0..40i64 {
            s.record("G", region![(i * 6, i * 6 + 3), (0, 10)], i as u64);
        }
        assert!(s.view_count("G") >= INDEX_MIN_VIEWS);
        for probe in [
            region![(0, 5), (0, 255)],
            region![(100, 140), (0, 255)],
            region![(0, 255), (0, 255)],
            region![(250, 255), (0, 255)],
        ] {
            let fast = s.views_overlapping("G", &probe, Consistency::Weak, 100);
            let slow = linear_probe(&s, "G", &probe, Consistency::Weak, 100);
            assert_eq!(fast, slow, "probe {probe} diverged from linear scan");
        }
        // Freshness filtering holds through the index too.
        let fast = s.views_overlapping(
            "G",
            &region![(0, 255), (0, 255)],
            Consistency::Window(5),
            30,
        );
        let slow = linear_probe(
            &s,
            "G",
            &region![(0, 255), (0, 255)],
            Consistency::Window(5),
            30,
        );
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        fn arb_box(span: i64) -> impl Strategy<Value = Region> {
            proptest::collection::vec((0..span).prop_flat_map(move |lo| (Just(lo), lo..span)), 2)
                .prop_map(|dims| {
                    Region::new(dims.into_iter().map(|(l, h)| Interval::new(l, h)).collect())
                })
        }

        proptest! {
            /// The indexed probe returns exactly the linear scan's view set
            /// (same views, same order) for any insert/query sequence.
            #[test]
            fn indexed_probe_equals_linear_scan(
                inserts in proptest::collection::vec((arb_box(256), 0u64..16), 1..24),
                probes in proptest::collection::vec(arb_box(256), 1..6),
                window in 0u64..8,
                now in 8u64..24,
            ) {
                let mut s = SemanticStore::new();
                s.register(space_2d());
                for (r, t) in &inserts {
                    s.record("G", r.clone(), *t);
                }
                // 0 doubles as "no window": exercise Weak too.
                let consistency = match window {
                    0 => Consistency::Weak,
                    w => Consistency::Window(w),
                };
                for probe in &probes {
                    let fast = s.views_overlapping("G", probe, consistency, now);
                    let slow = linear_probe(&s, "G", probe, consistency, now);
                    prop_assert_eq!(&fast, &slow, "probe {} diverged", probe);
                }
            }
        }
    }
}
