//! The semantic store: which regions of each table have been retrieved, and
//! when.
//!
//! Row data itself lives in the buyer's local DBMS (the execution engine
//! mirrors every retrieved tuple there); the store tracks *coverage* — the
//! regions of each table's query space whose tuples are locally complete —
//! plus a timestamp per region for the consistency levels of Section 4.3.
//!
//! Regions are stored behind `Arc` and handed out by handle, so the hot
//! query path never deep-copies coverage geometry. Each table keeps two
//! multidimensional R-trees (see [`TableStore`]):
//!
//! * a **view index** over the stored boxes, so probes for the views
//!   overlapping one query region touch only the tree path the region
//!   intersects instead of scanning every stored view; and
//! * an **incremental remainder cache** — the table's *uncovered* space
//!   maintained as disjoint gap boxes, updated on every insert — so a
//!   query's remainder `Q ∖ ⋃Vᵢ` is a clipped tree lookup instead of a
//!   from-scratch subtraction sweep over all views.
//!
//! Inserts also **compact**: contained views are absorbed, mergeable
//! neighbours coalesce into single boxes (tree-assisted, so coalescing no
//! longer scans the whole table), and past the configured view cap the
//! store evicts by spend-weighted utility — coverage is an optimization,
//! never a correctness requirement, so evicted regions are simply
//! re-purchasable.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use payless_geometry::{QuerySpace, RTree, Region};
use payless_telemetry::Recorder;

/// Result-freshness policy (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// Reuse any stored result, however old. Semantic query rewriting is
    /// always enabled.
    Weak,
    /// Reuse results retrieved within the last `n` time units (the paper
    /// phrases it as "X-week consistency"; the unit is whatever clock the
    /// caller advances).
    Window(u64),
    /// Never reuse stored results — semantic query rewriting is disabled and
    /// every query goes to the market.
    Strong,
}

impl Consistency {
    /// The minimum `stored_at` timestamp a view must have to be reusable at
    /// time `now`, or `None` when nothing is reusable.
    pub fn min_stored_at(&self, now: u64) -> Option<u64> {
        match self {
            Consistency::Weak => Some(0),
            Consistency::Window(w) => Some(now.saturating_sub(*w)),
            Consistency::Strong => None,
        }
    }
}

/// One stored view: a retrieved region, when it was retrieved, and what it
/// cost.
///
/// The region sits behind an `Arc` so probes can hand out handles without
/// copying the geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredView {
    /// The covered region of the table's query space.
    pub region: Arc<Region>,
    /// Logical retrieval time.
    pub stored_at: u64,
    /// Pages billed to retrieve this coverage (0 when unknown). Merges and
    /// absorptions accumulate spend, so the eviction policy can weigh how
    /// expensive a view would be to re-buy.
    pub spend: u64,
}

/// Default cap on stored view boxes per table (see [`StoreConfig`]).
pub const MAX_VIEWS_PER_TABLE: usize = 256;

/// Tuning knobs of the per-table store.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Cap on stored view boxes per table. Coverage is an optimization, not
    /// a correctness requirement: past the cap the store first drops
    /// redundant views (fully covered by the others), then evicts by
    /// spend-weighted utility down to 3/4 of the cap.
    pub max_views: usize,
    /// Compaction on insert: absorb contained views and coalesce mergeable
    /// neighbours into single boxes. Disabling it keeps every purchased box
    /// verbatim (useful for debugging coverage); the cap still bounds the
    /// view count through eviction.
    pub compaction: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_views: MAX_VIEWS_PER_TABLE,
            compaction: true,
        }
    }
}

/// Probes against tables with fewer views than this skip the index: a short
/// linear scan beats the tree walk.
const INDEX_MIN_VIEWS: usize = 8;

/// Per-table coverage plus the view index and the remainder cache.
///
/// Views live in stable slots (`slots[id]`, freed ids reused LIFO) so the
/// R-tree can address them by `u32` id across removals; probes iterate ids
/// ascending, which reproduces the slot-order linear scan exactly. The
/// *gap* structures mirror this for the uncovered pieces.
///
/// All mutation happens through [`TableStore::insert`] and eviction — one
/// per market purchase — while probes happen for every candidate plan the
/// optimizer costs, so reads stay `&self` and thread-safe.
#[derive(Debug, Clone)]
struct TableStore {
    space: QuerySpace,
    slots: Vec<Option<StoredView>>,
    free: Vec<u32>,
    live: usize,
    tree: RTree,
    /// Disjoint uncovered pieces exactly tiling `full ∖ ⋃ views`
    /// (freshness-agnostic: the complement of *all* stored views).
    gaps: Vec<Option<Region>>,
    gap_free: Vec<u32>,
    gap_tree: RTree,
    /// Running Σ volume of the gap pieces (saturating).
    uncovered_volume: u128,
    /// Lower bound on the minimum `stored_at` among live views; never
    /// raised on removal, so it stays a *sound* validity bound for the
    /// remainder cache (see [`TableStore::remainder`]). `u64::MAX` when no
    /// view has ever been inserted.
    oldest: u64,
    cfg: StoreConfig,
    compactions: u64,
    evictions: u64,
    /// Compaction/eviction events not yet drained into a metrics hub by the
    /// shared layer.
    pending_compactions: u64,
    pending_evictions: u64,
}

impl TableStore {
    fn new(space: QuerySpace, cfg: StoreConfig) -> Self {
        let full = space.full_region();
        let mut gap_tree = RTree::new();
        gap_tree.insert(full.clone(), 0);
        let uncovered_volume = full.volume();
        TableStore {
            space,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            tree: RTree::new(),
            gaps: vec![Some(full)],
            gap_free: Vec::new(),
            gap_tree,
            uncovered_volume,
            oldest: u64::MAX,
            cfg,
            compactions: 0,
            evictions: 0,
            pending_compactions: 0,
            pending_evictions: 0,
        }
    }

    fn view(&self, id: u32) -> &StoredView {
        self.slots[id as usize].as_ref().expect("live view slot")
    }

    fn add_view(&mut self, v: StoredView) -> u32 {
        let region = (*v.region).clone();
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(v);
                id
            }
            None => {
                self.slots.push(Some(v));
                (self.slots.len() - 1) as u32
            }
        };
        self.tree.insert(region, id);
        self.live += 1;
        id
    }

    fn remove_view(&mut self, id: u32) -> StoredView {
        let v = self.slots[id as usize].take().expect("live view slot");
        self.tree.remove(&v.region, id);
        self.free.push(id);
        self.live -= 1;
        v
    }

    fn add_gap(&mut self, piece: Region) {
        self.uncovered_volume = self.uncovered_volume.saturating_add(piece.volume());
        let id = match self.gap_free.pop() {
            Some(id) => {
                self.gaps[id as usize] = Some(piece.clone());
                id
            }
            None => {
                self.gaps.push(Some(piece.clone()));
                (self.gaps.len() - 1) as u32
            }
        };
        self.gap_tree.insert(piece, id);
    }

    fn remove_gap(&mut self, id: u32) -> Region {
        let g = self.gaps[id as usize].take().expect("live gap slot");
        self.gap_tree.remove(&g, id);
        self.gap_free.push(id);
        self.uncovered_volume = self.uncovered_volume.saturating_sub(g.volume());
        g
    }

    /// Update the remainder cache for newly covered `region`: every gap it
    /// overlaps is replaced by `gap ∖ region`. Gap boxes are exact (leaf
    /// entries are the pieces themselves), so every query hit truly
    /// overlaps.
    fn cover_gap(&mut self, region: &Region) {
        for id in self.gap_tree.query(region) {
            let g = self.remove_gap(id);
            for piece in g.subtract(region) {
                self.add_gap(piece);
            }
        }
    }

    /// Insert a region, dropping views it contains and coalescing mergeable
    /// neighbours (two views whose union is a single box and whose
    /// timestamps may be conservatively merged to the older one). Both
    /// steps consult only the views the R-tree finds near the new region.
    fn insert(&mut self, region: Region, now: u64, spend: u64) {
        // Already fully covered by a newer-or-equal view: nothing to do.
        // (Inflate by 1 so the same candidate set also serves adjacency
        // coalescing below.)
        let near = self.tree.query(&region.inflate(1));
        if near.iter().any(|&id| {
            let v = self.view(id);
            v.stored_at >= now && v.region.contains(&region)
        }) {
            return;
        }

        let mut current = StoredView {
            region: Arc::new(region.clone()),
            stored_at: now,
            spend,
        };

        if self.cfg.compaction {
            // Drop older views the new region swallows; their coverage (and
            // spend) is absorbed by `current`.
            for &id in &near {
                let v = self.view(id);
                if current.region.contains(&v.region) && v.stored_at <= now {
                    let absorbed = self.remove_view(id);
                    current.spend = current.spend.saturating_add(absorbed.spend);
                    self.note_compaction();
                }
            }
            // Coalesce until fixpoint: each round re-queries around the
            // (possibly grown) current box, so chains of adjacent views
            // collapse just as the full-scan loop did.
            loop {
                let near = self.tree.query(&current.region.inflate(1));
                let mut merged = false;
                for id in near {
                    let v = self.view(id);
                    if let Some(union) = box_union(&v.region, &current.region) {
                        let old = self.remove_view(id);
                        current = StoredView {
                            region: Arc::new(union),
                            // Conservative freshness: the union is only as
                            // fresh as its stalest part.
                            stored_at: old.stored_at.min(current.stored_at),
                            spend: old.spend.saturating_add(current.spend),
                        };
                        self.note_compaction();
                        merged = true;
                        break;
                    }
                }
                if !merged {
                    break;
                }
            }
        }

        // The union of stored views grows by exactly the new `region`
        // (absorptions and merges do not change the union), so the gap
        // cache subtracts only that.
        self.cover_gap(&region);
        self.oldest = self.oldest.min(current.stored_at);
        self.add_view(current);
        if self.live > self.cfg.max_views {
            self.evict();
        }
    }

    fn note_compaction(&mut self) {
        self.compactions += 1;
        self.pending_compactions += 1;
    }

    /// Bound the view count: first drop views whose coverage the remaining
    /// views already provide (coverage-preserving), then evict by ascending
    /// spend-weighted utility down to 3/4 of the cap, returning each
    /// evicted view's now-uncovered part to the gap cache.
    fn evict(&mut self) {
        // Pass 1 — redundancy drops (only meaningful with compaction on;
        // they are a compaction by another trigger).
        if self.cfg.compaction {
            let ids: Vec<u32> = self.live_ids();
            for id in ids {
                if self.live <= self.cfg.max_views {
                    return;
                }
                let region = self.view(id).region.clone();
                let others: Vec<Arc<Region>> = self
                    .tree
                    .query(&region)
                    .into_iter()
                    .filter(|&o| o != id)
                    .map(|o| self.view(o).region.clone())
                    .collect();
                if region.subtract_all(&others).is_empty() {
                    self.remove_view(id);
                    self.note_compaction();
                }
            }
        }
        if self.live <= self.cfg.max_views {
            return;
        }
        // Pass 2 — lossy eviction. Utility = spend (pages it would cost to
        // re-buy; volume stands in when spend was never reported) weighted
        // by recency, so the cheap-and-stale go first. Ties break on slot
        // id for determinism.
        let target = (self.cfg.max_views * 3 / 4).max(1);
        let mut order: Vec<(u128, u32)> = self
            .live_ids()
            .into_iter()
            .map(|id| {
                let v = self.view(id);
                let worth = if v.spend > 0 {
                    v.spend as u128
                } else {
                    v.region.volume().max(1)
                };
                (worth.saturating_mul(v.stored_at as u128 + 1), id)
            })
            .collect();
        order.sort_unstable();
        for (_, id) in order {
            if self.live <= target {
                break;
            }
            let v = self.remove_view(id);
            self.evictions += 1;
            self.pending_evictions += 1;
            // The evicted region may still be partly covered by surviving
            // views; only the truly uncovered part returns to the cache.
            // Gaps stay disjoint: existing gaps never intersect a view, and
            // earlier add-backs in this pass excluded `v` (still a view at
            // the time).
            let survivors: Vec<Arc<Region>> = self
                .tree
                .query(&v.region)
                .into_iter()
                .map(|o| self.view(o).region.clone())
                .collect();
            for piece in v.region.subtract_all(&survivors) {
                self.add_gap(piece);
            }
        }
    }

    fn live_ids(&self) -> Vec<u32> {
        (0..self.slots.len() as u32)
            .filter(|&id| self.slots[id as usize].is_some())
            .collect()
    }

    fn usable_views(&self, min_stored_at: u64) -> Vec<Arc<Region>> {
        self.slots
            .iter()
            .flatten()
            .filter(|v| v.stored_at >= min_stored_at)
            .map(|v| v.region.clone())
            .collect()
    }

    /// The usable views overlapping `probe`, via the R-tree when the table
    /// is big enough for the walk to pay off. Returns views in slot order
    /// (identical to the linear scan) and reports whether the index was
    /// used.
    fn probe(&self, probe: &Region, min_stored_at: u64) -> (Vec<Arc<Region>>, bool) {
        if self.live < INDEX_MIN_VIEWS {
            let out = self
                .slots
                .iter()
                .flatten()
                .filter(|v| v.stored_at >= min_stored_at && v.region.overlaps(probe))
                .map(|v| v.region.clone())
                .collect();
            return (out, false);
        }
        // Leaf entries are the exact stored boxes, so every id returned
        // truly overlaps; ascending-id iteration reproduces slot order.
        let out = self
            .tree
            .query(probe)
            .into_iter()
            .map(|id| self.view(id))
            .filter(|v| v.stored_at >= min_stored_at)
            .map(|v| v.region.clone())
            .collect();
        (out, true)
    }

    /// The cached remainder `probe ∖ ⋃ views` as disjoint pieces clipped to
    /// `probe`, or `None` when the cache is not valid at `min_stored_at`.
    ///
    /// The cache tracks the complement of *all* stored views. That is the
    /// correct remainder exactly when every stored view is usable — i.e.
    /// when `min_stored_at` reaches at least as far back as the oldest
    /// view. Staler probes (tight `Consistency::Window`s) fall back to the
    /// subtraction sweep over the filtered view set.
    fn remainder(&self, probe: &Region, min_stored_at: u64) -> Option<Vec<Region>> {
        if min_stored_at > self.oldest {
            return None;
        }
        Some(
            self.gap_tree
                .query(probe)
                .into_iter()
                .map(|id| {
                    self.gaps[id as usize]
                        .as_ref()
                        .expect("live gap slot")
                        .intersect(probe)
                        .expect("gap leaf entries are exact, so every hit overlaps")
                })
                .collect(),
        )
    }

    /// Drain the not-yet-reported compaction/eviction event counts.
    fn take_pending_events(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.pending_compactions),
            std::mem::take(&mut self.pending_evictions),
        )
    }
}

/// The union of two regions if it is exactly one box, else `None`.
///
/// True when one contains the other, or when they differ on a single
/// dimension where their intervals are adjacent/overlapping and agree
/// everywhere else.
fn box_union(a: &Region, b: &Region) -> Option<Region> {
    if a.contains(b) {
        return Some(a.clone());
    }
    if b.contains(a) {
        return Some(b.clone());
    }
    let mut differing = None;
    for d in 0..a.arity() {
        if a.dim(d) != b.dim(d) {
            if differing.is_some() {
                return None;
            }
            differing = Some(d);
        }
    }
    let d = differing?;
    let (ia, ib) = (a.dim(d), b.dim(d));
    if !ia.mergeable(&ib) {
        return None;
    }
    let mut dims = a.dims().to_vec();
    dims[d] = ia.merge(&ib);
    Some(Region::new(dims))
}

/// Coverage for every market table PayLess has touched.
#[derive(Debug, Clone, Default)]
pub struct SemanticStore {
    tables: HashMap<Arc<str>, TableStore>,
    /// Telemetry sink for probe timings and index hit/fallback counters.
    /// Shared, not serialized; a restored store starts unattached.
    recorder: Option<Arc<Recorder>>,
    /// Flight recorder for store lifecycle events (inserts, compactions,
    /// evictions). Store-level, like `recorder`: events carry no query id.
    events: Option<Arc<payless_events::EventJournal>>,
    /// Config applied to tables registered from here on (existing tables
    /// keep theirs until [`SemanticStore::set_config`]).
    cfg: StoreConfig,
}

impl SemanticStore {
    /// An empty store with the default [`StoreConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a telemetry recorder; subsequent probes report
    /// `store.index_probe` durations and `store.index_hits` /
    /// `store.index_full_scans` counters into it.
    ///
    /// These counters are a property of the *store*, not of any one query:
    /// when the store is shared across sessions (the serving layer), every
    /// session's probes land in this recorder, so per-query recorders must
    /// never be attached here. The `\report` renderer tags them
    /// "store-level" for the same reason.
    pub fn attach_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Attach a flight-recorder journal; subsequent [`record_spend`]
    /// calls journal `store_insert` / `store_compact` / `store_evict`
    /// events. Store-level like [`SemanticStore::attach_recorder`]: the
    /// store is shared across queries, so events carry no query id.
    ///
    /// [`record_spend`]: SemanticStore::record_spend
    pub fn attach_events(&mut self, journal: Arc<payless_events::EventJournal>) {
        self.events = Some(journal);
    }

    /// Apply `cfg` to every registered table and to tables registered later.
    /// Lowering `max_views` evicts immediately.
    pub fn set_config(&mut self, cfg: StoreConfig) {
        self.cfg = cfg;
        for t in self.tables.values_mut() {
            t.cfg = cfg;
            if t.live > t.cfg.max_views {
                t.evict();
            }
        }
    }

    /// The store's current config (the one new tables receive).
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Register a table's query space (idempotent).
    pub fn register(&mut self, space: QuerySpace) {
        let cfg = self.cfg;
        self.tables
            .entry(space.table.clone())
            .or_insert_with(|| TableStore::new(space, cfg));
    }

    /// Split the store into independent single-table stores — the building
    /// block of [`crate::shared::SharedSemanticStore`]'s per-table shards.
    /// The recorder handle (if any) is shared by every shard.
    pub(crate) fn split_shards(self) -> Vec<(Arc<str>, SemanticStore)> {
        let recorder = self.recorder;
        let events = self.events;
        let cfg = self.cfg;
        self.tables
            .into_iter()
            .map(|(name, ts)| {
                let mut tables = HashMap::new();
                tables.insert(name.clone(), ts);
                (
                    name,
                    SemanticStore {
                        tables,
                        recorder: recorder.clone(),
                        events: events.clone(),
                        cfg,
                    },
                )
            })
            .collect()
    }

    /// Move every table of `other` into `self`, replacing tables already
    /// present — reassembles a point-in-time snapshot from shared shards.
    pub(crate) fn absorb(&mut self, other: SemanticStore) {
        for (name, ts) in other.tables {
            self.tables.insert(name, ts);
        }
    }

    /// The query space of `table`, if registered.
    pub fn space(&self, table: &str) -> Option<&QuerySpace> {
        self.tables.get(table).map(|t| &t.space)
    }

    /// Record that `region` of `table` has been fully retrieved at time
    /// `now`.
    pub fn record(&mut self, table: &str, region: Region, now: u64) {
        self.record_spend(table, region, now, 0);
    }

    /// As [`SemanticStore::record`], attributing the pages billed to
    /// retrieve the region — the weight the eviction policy uses.
    pub fn record_spend(&mut self, table: &str, region: Region, now: u64, spend: u64) {
        let entry = self
            .tables
            .get_mut(table)
            .unwrap_or_else(|| panic!("table `{table}` not registered in semantic store"));
        entry.insert(region, now, spend);
        let rec = self.recorder.as_deref().filter(|r| r.is_enabled());
        let journal = self.events.as_deref().filter(|j| j.is_enabled());
        if rec.is_none() && journal.is_none() {
            return;
        }
        let (c, e) = entry.take_pending_events();
        if let Some(rec) = rec {
            if c > 0 {
                rec.count("store.compactions", c);
            }
            if e > 0 {
                rec.count("store.evictions", e);
            }
        }
        if let Some(j) = journal {
            use payless_events::{EventKind, Severity};
            let views = entry.live as u64;
            j.emit(None, Severity::Debug, || EventKind::StoreInsert {
                table: table.to_string(),
                spend_pages: spend,
                views,
            });
            if c > 0 {
                j.emit(None, Severity::Info, || EventKind::StoreCompact {
                    table: table.to_string(),
                    compactions: c,
                });
            }
            if e > 0 {
                j.emit(None, Severity::Info, || EventKind::StoreEvict {
                    table: table.to_string(),
                    evictions: e,
                });
            }
        }
    }

    /// The stored regions of `table` usable under `consistency` at `now`.
    /// Strong consistency yields no views (rewriting disabled).
    pub fn views(&self, table: &str, consistency: Consistency, now: u64) -> Vec<Arc<Region>> {
        let Some(min) = consistency.min_stored_at(now) else {
            return Vec::new();
        };
        self.tables
            .get(table)
            .map(|t| t.usable_views(min))
            .unwrap_or_default()
    }

    /// The usable views of `table` that overlap `probe`, served from the
    /// per-table R-tree. Views that do not overlap the probe region cannot
    /// contribute to its decomposition or remainder, so this is
    /// interchangeable with [`SemanticStore::views`] for per-region work —
    /// and what the optimizer's hot path should call.
    pub fn views_overlapping(
        &self,
        table: &str,
        probe: &Region,
        consistency: Consistency,
        now: u64,
    ) -> Vec<Arc<Region>> {
        let Some(min) = consistency.min_stored_at(now) else {
            return Vec::new();
        };
        let Some(t) = self.tables.get(table) else {
            return Vec::new();
        };
        self.timed_probe(t, probe, min).0
    }

    fn timed_probe(&self, t: &TableStore, probe: &Region, min: u64) -> (Vec<Arc<Region>>, bool) {
        let timer = self
            .recorder
            .as_deref()
            .filter(|r| r.is_enabled())
            .map(|_| Instant::now());
        let (out, used_index) = t.probe(probe, min);
        if let (Some(rec), Some(t0)) = (self.recorder.as_deref(), timer) {
            rec.record_duration("store.index_probe", t0.elapsed().as_nanos() as u64);
            rec.count(
                if used_index {
                    "store.index_hits"
                } else {
                    "store.index_full_scans"
                },
                1,
            );
            rec.record_size("store.probe_views", out.len() as u64);
        }
        (out, used_index)
    }

    /// The cached remainder `probe ∖ ⋃ usable views` of `table` as disjoint
    /// pieces clipped to `probe`, or `None` when the cache cannot answer —
    /// under `Strong` consistency, for unregistered tables, or when a
    /// `Window` excludes stored views (the cache tracks the complement of
    /// *all* views; see [`TableStore::remainder`]). Callers fall back to
    /// the subtraction sweep on `None`.
    pub fn remainder_pieces(
        &self,
        table: &str,
        probe: &Region,
        consistency: Consistency,
        now: u64,
    ) -> Option<Vec<Region>> {
        let min = consistency.min_stored_at(now)?;
        self.tables.get(table)?.remainder(probe, min)
    }

    /// One consistent read of everything a rewrite needs: the overlapping
    /// usable views and (when the cache is valid) the precomputed remainder
    /// pieces. The shared store forwards this under a single shard read
    /// lock, so views and pieces can never disagree about an in-flight
    /// insert.
    pub fn probe_rewrite(
        &self,
        table: &str,
        probe: &Region,
        consistency: Consistency,
        now: u64,
    ) -> (Vec<Arc<Region>>, Option<Vec<Region>>) {
        let Some(min) = consistency.min_stored_at(now) else {
            return (Vec::new(), None);
        };
        let Some(t) = self.tables.get(table) else {
            return (Vec::new(), None);
        };
        let (views, _) = self.timed_probe(t, probe, min);
        let pieces = t.remainder(probe, min);
        (views, pieces)
    }

    /// Number of stored view boxes for `table` (after coalescing), read
    /// from the live counter — no scan.
    pub fn view_count(&self, table: &str) -> usize {
        self.tables.get(table).map(|t| t.live).unwrap_or(0)
    }

    /// Total compaction events (absorbed, coalesced, or redundancy-dropped
    /// views) for `table` since creation.
    pub fn compactions(&self, table: &str) -> u64 {
        self.tables.get(table).map(|t| t.compactions).unwrap_or(0)
    }

    /// Total spend-weighted utility evictions for `table` since creation.
    pub fn evictions(&self, table: &str) -> u64 {
        self.tables.get(table).map(|t| t.evictions).unwrap_or(0)
    }

    /// Drain `table`'s not-yet-reported compaction/eviction event counts —
    /// the shared layer forwards these into the metrics hub after each
    /// record.
    pub fn take_store_events(&mut self, table: &str) -> (u64, u64) {
        self.tables
            .get_mut(table)
            .map(|t| t.take_pending_events())
            .unwrap_or((0, 0))
    }

    /// Fraction of `table`'s whole query space covered by stored views
    /// (freshness-agnostic), read from the remainder cache's running
    /// uncovered volume — no scan, no union sweep.
    pub fn coverage_fraction(&self, table: &str) -> f64 {
        let Some(t) = self.tables.get(table) else {
            return 0.0;
        };
        let full = t.space.full_region().volume();
        if full == 0 {
            return 0.0;
        }
        let covered = full.saturating_sub(t.uncovered_volume);
        (covered as f64 / full as f64).clamp(0.0, 1.0)
    }

    /// `true` if `region` of `table` is fully covered by usable views.
    pub fn covers(&self, table: &str, region: &Region, consistency: Consistency, now: u64) -> bool {
        let Some(min) = consistency.min_stored_at(now) else {
            return false;
        };
        let Some(t) = self.tables.get(table) else {
            return false;
        };
        match t.remainder(region, min) {
            Some(pieces) => pieces.is_empty(),
            None => {
                let (views, _) = self.timed_probe(t, region, min);
                region.subtract_all(&views).is_empty()
            }
        }
    }
}

/// How well the store covers a region under a consistency policy — the
/// telemetry classification behind SQR hit/miss counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverClass {
    /// Entirely answerable from stored views: nothing to purchase.
    Full,
    /// Some usable views overlap the region: only remainders are purchased.
    Partial,
    /// No usable coverage: the whole region must be purchased.
    Miss,
}

impl SemanticStore {
    /// Classify how much of `region` the usable views cover.
    pub fn classify(
        &self,
        table: &str,
        region: &Region,
        consistency: Consistency,
        now: u64,
    ) -> CoverClass {
        // Probe for overlapping views only: anything disjoint from the
        // region is a Miss regardless, which the empty-overlap check covers.
        let Some(min) = consistency.min_stored_at(now) else {
            return CoverClass::Miss;
        };
        let Some(t) = self.tables.get(table) else {
            return CoverClass::Miss;
        };
        let (views, _) = self.timed_probe(t, region, min);
        if views.is_empty() {
            return CoverClass::Miss;
        }
        let fully = match t.remainder(region, min) {
            Some(pieces) => pieces.is_empty(),
            None => region.subtract_all(&views).is_empty(),
        };
        if fully {
            CoverClass::Full
        } else {
            CoverClass::Partial
        }
    }
}

impl payless_json::ToJson for Consistency {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        match self {
            Consistency::Weak => Json::str("weak"),
            Consistency::Strong => Json::str("strong"),
            Consistency::Window(w) => Json::obj([("window", w.to_json())]),
        }
    }
}

impl payless_json::FromJson for Consistency {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::Json;
        match j {
            Json::Str(s) if s == "weak" => Ok(Consistency::Weak),
            Json::Str(s) if s == "strong" => Ok(Consistency::Strong),
            _ => Ok(Consistency::Window(j.get("window")?.as_u64()?)),
        }
    }
}

impl payless_json::ToJson for StoredView {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        Json::obj([
            ("region", self.region.to_json()),
            ("stored_at", self.stored_at.to_json()),
            ("spend", self.spend.to_json()),
        ])
    }
}

impl payless_json::FromJson for StoredView {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::FromJson;
        Ok(StoredView {
            region: Arc::new(FromJson::from_json(j.get("region")?)?),
            stored_at: FromJson::from_json(j.get("stored_at")?)?,
            // Absent in dumps from before spend tracking.
            spend: match j.get_opt("spend") {
                Some(v) => FromJson::from_json(v)?,
                None => 0,
            },
        })
    }
}

impl payless_json::ToJson for TableStore {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        let views = Json::Arr(self.slots.iter().flatten().map(|v| v.to_json()).collect());
        Json::obj([
            ("space", self.space.to_json()),
            ("views", views),
            ("max_views", self.cfg.max_views.to_json()),
            ("compaction", self.cfg.compaction.to_json()),
            ("compactions", self.compactions.to_json()),
            ("evictions", self.evictions.to_json()),
        ])
    }
}

impl payless_json::FromJson for TableStore {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::FromJson;
        let cfg = StoreConfig {
            // Absent in dumps from before the config existed.
            max_views: match j.get_opt("max_views") {
                Some(v) => FromJson::from_json(v)?,
                None => MAX_VIEWS_PER_TABLE,
            },
            compaction: match j.get_opt("compaction") {
                Some(v) => FromJson::from_json(v)?,
                None => true,
            },
        };
        let mut t = TableStore::new(FromJson::from_json(j.get("space")?)?, cfg);
        let views: Vec<StoredView> = FromJson::from_json(j.get("views")?)?;
        // Rebuild slots, the view tree, and the gap cache by replaying the
        // stored boxes; they are already compacted, so insert them raw.
        for v in views {
            t.cover_gap(&v.region);
            t.oldest = t.oldest.min(v.stored_at);
            t.add_view(v);
        }
        t.compactions = match j.get_opt("compactions") {
            Some(v) => FromJson::from_json(v)?,
            None => 0,
        };
        t.evictions = match j.get_opt("evictions") {
            Some(v) => FromJson::from_json(v)?,
            None => 0,
        };
        Ok(t)
    }
}

impl payless_json::ToJson for SemanticStore {
    fn to_json(&self) -> payless_json::Json {
        use payless_json::Json;
        Json::obj([("tables", self.tables.to_json())])
    }
}

impl payless_json::FromJson for SemanticStore {
    fn from_json(j: &payless_json::Json) -> payless_json::Result<Self> {
        use payless_json::FromJson;
        Ok(SemanticStore {
            tables: FromJson::from_json(j.get("tables")?)?,
            recorder: None,
            events: None,
            cfg: StoreConfig::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_geometry::region;
    use payless_types::{Column, Domain, Schema};

    fn space_1d() -> QuerySpace {
        QuerySpace::of(&Schema::new(
            "R",
            vec![Column::free("A", Domain::int(0, 100))],
        ))
    }

    fn store_1d() -> SemanticStore {
        let mut s = SemanticStore::new();
        s.register(space_1d());
        s
    }

    #[test]
    fn consistency_windows() {
        assert_eq!(Consistency::Weak.min_stored_at(100), Some(0));
        assert_eq!(Consistency::Window(10).min_stored_at(100), Some(90));
        assert_eq!(Consistency::Window(200).min_stored_at(100), Some(0));
        assert_eq!(Consistency::Strong.min_stored_at(100), None);
    }

    #[test]
    fn record_and_cover() {
        let mut s = store_1d();
        s.record("R", region![(10, 20)], 1);
        assert!(s.covers("R", &region![(12, 18)], Consistency::Weak, 2));
        assert!(!s.covers("R", &region![(5, 15)], Consistency::Weak, 2));
        assert!(!s.covers("R", &region![(12, 18)], Consistency::Strong, 2));
    }

    #[test]
    fn window_consistency_expires_views() {
        let mut s = store_1d();
        s.record("R", region![(10, 20)], 1);
        assert!(s.covers("R", &region![(10, 20)], Consistency::Window(5), 4));
        assert!(!s.covers("R", &region![(10, 20)], Consistency::Window(5), 10));
    }

    #[test]
    fn adjacent_views_coalesce() {
        let mut s = store_1d();
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(10, 19)], 2);
        assert_eq!(s.view_count("R"), 1);
        assert_eq!(s.compactions("R"), 1);
        assert!(s.covers("R", &region![(0, 19)], Consistency::Weak, 3));
        // Conservative freshness: the union carries the older timestamp
        // (1), so a window reaching back only to t=2 cannot use it.
        assert!(!s.covers("R", &region![(0, 19)], Consistency::Window(1), 3));
    }

    #[test]
    fn contained_views_are_absorbed() {
        let mut s = store_1d();
        s.record("R", region![(10, 20)], 1);
        s.record("R", region![(0, 50)], 2);
        assert_eq!(s.view_count("R"), 1);
        assert_eq!(
            s.views("R", Consistency::Weak, 3),
            vec![Arc::new(region![(0, 50)])]
        );
    }

    #[test]
    fn disjoint_views_stay_separate() {
        let mut s = store_1d();
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(50, 59)], 2);
        assert_eq!(s.view_count("R"), 2);
        assert_eq!(s.compactions("R"), 0);
    }

    #[test]
    fn chained_coalescing_reaches_fixpoint() {
        let mut s = store_1d();
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(20, 29)], 1);
        // The middle piece bridges both.
        s.record("R", region![(10, 19)], 2);
        assert_eq!(s.view_count("R"), 1);
        assert!(s.covers("R", &region![(0, 29)], Consistency::Weak, 3));
    }

    #[test]
    fn box_union_2d() {
        // Same extent on dim 1, adjacent on dim 0 -> merges.
        let a = region![(0, 4), (0, 9)];
        let b = region![(5, 9), (0, 9)];
        assert_eq!(box_union(&a, &b), Some(region![(0, 9), (0, 9)]));
        // Differ on two dims -> no box union.
        let c = region![(5, 9), (10, 19)];
        assert_eq!(box_union(&a, &c), None);
        // Disjoint on the differing dim -> none.
        let d = region![(6, 9), (0, 9)];
        assert_eq!(box_union(&a, &d), None);
    }

    #[test]
    fn unregistered_table_has_no_views() {
        let s = SemanticStore::new();
        assert!(s.views("X", Consistency::Weak, 0).is_empty());
        assert_eq!(s.view_count("X"), 0);
        assert!(s.space("X").is_none());
        assert_eq!(
            s.remainder_pieces("X", &region![(0, 1)], Consistency::Weak, 0),
            None
        );
    }

    #[test]
    fn coverage_fraction_tracks_union() {
        let mut s = store_1d();
        assert_eq!(s.coverage_fraction("R"), 0.0);
        s.record("R", region![(0, 49)], 1);
        assert!((s.coverage_fraction("R") - 50.0 / 101.0).abs() < 1e-9);
        // Overlapping view counts once.
        s.record("R", region![(25, 74)], 2);
        assert!((s.coverage_fraction("R") - 75.0 / 101.0).abs() < 1e-9);
        assert_eq!(s.coverage_fraction("unknown"), 0.0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn recording_unregistered_table_panics() {
        let mut s = SemanticStore::new();
        s.record("X", region![(0, 1)], 0);
    }

    #[test]
    fn remainder_pieces_clip_to_probe() {
        let mut s = store_1d();
        s.record("R", region![(20, 40)], 1);
        let pieces = s
            .remainder_pieces("R", &region![(10, 50)], Consistency::Weak, 2)
            .expect("weak probes always use the cache");
        // Exactly the uncovered parts of the probe, disjoint.
        assert_eq!(
            payless_geometry::union_volume(&pieces),
            region![(10, 19)].volume() + region![(41, 50)].volume()
        );
        for p in &pieces {
            assert!(region![(10, 50)].contains(p));
            assert!(!p.overlaps(&region![(20, 40)]));
        }
        // Fully covered probe -> empty piece set, not None.
        assert_eq!(
            s.remainder_pieces("R", &region![(25, 35)], Consistency::Weak, 2),
            Some(Vec::new())
        );
        // Strong consistency cannot use the cache.
        assert_eq!(
            s.remainder_pieces("R", &region![(10, 50)], Consistency::Strong, 2),
            None
        );
    }

    #[test]
    fn stale_window_invalidates_remainder_cache() {
        let mut s = store_1d();
        s.record("R", region![(0, 30)], 1);
        s.record("R", region![(60, 80)], 10);
        // Window reaching both views: cache valid.
        assert!(s
            .remainder_pieces("R", &region![(0, 100)], Consistency::Window(100), 11)
            .is_some());
        // Window excluding the t=1 view: cache invalid, caller must fall
        // back to the filtered subtraction sweep.
        assert!(s
            .remainder_pieces("R", &region![(0, 100)], Consistency::Window(5), 11)
            .is_none());
        // The fallback paths (covers/classify) still answer correctly.
        assert!(!s.covers("R", &region![(0, 30)], Consistency::Window(5), 11));
        assert!(s.covers("R", &region![(60, 80)], Consistency::Window(5), 11));
    }

    #[test]
    fn probe_rewrite_is_consistent() {
        let mut s = store_1d();
        s.record("R", region![(20, 40)], 1);
        let (views, pieces) = s.probe_rewrite("R", &region![(0, 100)], Consistency::Weak, 2);
        assert_eq!(views.len(), 1);
        let pieces = pieces.expect("weak probes always use the cache");
        let mut all: Vec<Region> = views.iter().map(|v| (**v).clone()).collect();
        all.extend(pieces);
        assert!(region![(0, 100)].subtract_all(&all).is_empty());
    }

    #[test]
    fn eviction_bounds_views_and_returns_coverage_to_gaps() {
        let mut s = SemanticStore::new();
        s.register(space_1d());
        s.set_config(StoreConfig {
            max_views: 8,
            compaction: true,
        });
        // 12 disjoint slivers (gap 1 apart so nothing coalesces).
        for i in 0..12i64 {
            s.record("R", region![(i * 8, i * 8 + 6)], i as u64);
        }
        assert!(s.view_count("R") <= 8, "cap enforced");
        assert!(s.evictions("R") > 0, "lossy evictions happened");
        // Evicted coverage is honestly reported as uncovered again: every
        // *stored* view is still covered, and covers() never lies.
        for v in s.views("R", Consistency::Weak, 100) {
            assert!(s.covers("R", &v, Consistency::Weak, 100));
        }
        // coverage_fraction reflects the evictions (less than the 12/8 full
        // sliver coverage would give).
        let frac = s.coverage_fraction("R");
        assert!(frac > 0.0 && frac < 12.0 * 7.0 / 101.0);
        // The remainder cache still exactly complements the views.
        let pieces = s
            .remainder_pieces("R", &region![(0, 100)], Consistency::Weak, 100)
            .unwrap();
        let views = s.views("R", Consistency::Weak, 100);
        let mut all: Vec<Region> = views.iter().map(|v| (**v).clone()).collect();
        all.extend(pieces.iter().cloned());
        assert!(region![(0, 100)].subtract_all(&all).is_empty());
        for p in &pieces {
            for v in &views {
                assert!(!p.overlaps(v), "gap {p} overlaps stored view {v}");
            }
        }
    }

    #[test]
    fn spend_weighted_eviction_prefers_cheap_views() {
        let mut s = SemanticStore::new();
        s.register(space_1d());
        s.set_config(StoreConfig {
            max_views: 4,
            compaction: false,
        });
        // Same timestamps; one expensive view among cheap ones.
        s.record_spend("R", region![(0, 4)], 1, 1);
        s.record_spend("R", region![(10, 14)], 1, 1000);
        s.record_spend("R", region![(20, 24)], 1, 1);
        s.record_spend("R", region![(30, 34)], 1, 1);
        s.record_spend("R", region![(40, 44)], 1, 1);
        assert!(s.view_count("R") <= 4);
        // The expensive view survives the eviction pass.
        assert!(s.covers("R", &region![(10, 14)], Consistency::Weak, 2));
    }

    #[test]
    fn compaction_toggle_keeps_views_verbatim() {
        let mut s = SemanticStore::new();
        s.register(space_1d());
        s.set_config(StoreConfig {
            max_views: MAX_VIEWS_PER_TABLE,
            compaction: false,
        });
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(10, 19)], 2);
        assert_eq!(s.view_count("R"), 2, "no coalescing with compaction off");
        assert_eq!(s.compactions("R"), 0);
        assert!(s.covers("R", &region![(0, 19)], Consistency::Weak, 3));
    }

    #[test]
    fn store_json_round_trip_preserves_cache_and_counters() {
        let mut s = store_1d();
        s.record("R", region![(0, 9)], 1);
        s.record("R", region![(10, 19)], 2);
        s.record_spend("R", region![(50, 59)], 3, 7);
        let json = payless_json::ToJson::to_json(&s);
        let restored: SemanticStore = payless_json::FromJson::from_json(&json).expect("round trip");
        assert_eq!(restored.view_count("R"), s.view_count("R"));
        assert_eq!(restored.compactions("R"), s.compactions("R"));
        assert!((restored.coverage_fraction("R") - s.coverage_fraction("R")).abs() < 1e-12);
        assert_eq!(
            restored.remainder_pieces("R", &region![(0, 100)], Consistency::Weak, 4),
            s.remainder_pieces("R", &region![(0, 100)], Consistency::Weak, 4)
        );
        assert_eq!(
            restored.views("R", Consistency::Weak, 4),
            s.views("R", Consistency::Weak, 4)
        );
    }

    fn space_2d() -> QuerySpace {
        QuerySpace::of(&Schema::new(
            "G",
            vec![
                Column::free("A", Domain::int(0, 255)),
                Column::free("B", Domain::int(0, 255)),
            ],
        ))
    }

    /// Reference implementation the index must agree with: linear scan,
    /// freshness filter, overlap filter, stored order.
    fn linear_probe(
        s: &SemanticStore,
        table: &str,
        probe: &Region,
        consistency: Consistency,
        now: u64,
    ) -> Vec<Arc<Region>> {
        s.views(table, consistency, now)
            .into_iter()
            .filter(|v| v.overlaps(probe))
            .collect()
    }

    #[test]
    fn indexed_probe_matches_linear_scan_when_fragmented() {
        let mut s = SemanticStore::new();
        s.register(space_2d());
        // Many disjoint views so coalescing leaves them separate and the
        // store is comfortably past the index threshold.
        for i in 0..40i64 {
            s.record("G", region![(i * 6, i * 6 + 3), (0, 10)], i as u64);
        }
        assert!(s.view_count("G") >= INDEX_MIN_VIEWS);
        for probe in [
            region![(0, 5), (0, 255)],
            region![(100, 140), (0, 255)],
            region![(0, 255), (0, 255)],
            region![(250, 255), (0, 255)],
        ] {
            let fast = s.views_overlapping("G", &probe, Consistency::Weak, 100);
            let slow = linear_probe(&s, "G", &probe, Consistency::Weak, 100);
            assert_eq!(fast, slow, "probe {probe} diverged from linear scan");
        }
        // Freshness filtering holds through the index too.
        let fast = s.views_overlapping(
            "G",
            &region![(0, 255), (0, 255)],
            Consistency::Window(5),
            30,
        );
        let slow = linear_probe(
            &s,
            "G",
            &region![(0, 255), (0, 255)],
            Consistency::Window(5),
            30,
        );
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        fn arb_box(span: i64) -> impl Strategy<Value = Region> {
            proptest::collection::vec((0..span).prop_flat_map(move |lo| (Just(lo), lo..span)), 2)
                .prop_map(|dims| {
                    Region::new(dims.into_iter().map(|(l, h)| Interval::new(l, h)).collect())
                })
        }

        use payless_geometry::Interval;

        proptest! {
            /// The indexed probe returns exactly the linear scan's view set
            /// (same views, same order) for any insert/query sequence.
            #[test]
            fn indexed_probe_equals_linear_scan(
                inserts in proptest::collection::vec((arb_box(256), 0u64..16), 1..24),
                probes in proptest::collection::vec(arb_box(256), 1..6),
                window in 0u64..8,
                now in 8u64..24,
            ) {
                let mut s = SemanticStore::new();
                s.register(space_2d());
                for (r, t) in &inserts {
                    s.record("G", r.clone(), *t);
                }
                // 0 doubles as "no window": exercise Weak too.
                let consistency = match window {
                    0 => Consistency::Weak,
                    w => Consistency::Window(w),
                };
                for probe in &probes {
                    let fast = s.views_overlapping("G", probe, consistency, now);
                    let slow = linear_probe(&s, "G", probe, consistency, now);
                    prop_assert_eq!(&fast, &slow, "probe {} diverged", probe);
                }
            }

            /// After any insert sequence, the cached remainder of a random
            /// probe is element-identical (as a point set) to the
            /// from-scratch subtraction the decompose-based rewrite would
            /// compute — clean, and under staleness-induced invalidation
            /// the cache refuses instead of lying.
            #[test]
            fn cached_remainder_matches_from_scratch(
                inserts in proptest::collection::vec((arb_box(24), 0u64..16), 0..16),
                probe in arb_box(24),
                window in 0u64..8,
                now in 8u64..24,
            ) {
                let mut s = SemanticStore::new();
                s.register(QuerySpace::of(&Schema::new(
                    "G",
                    vec![
                        Column::free("A", Domain::int(0, 23)),
                        Column::free("B", Domain::int(0, 23)),
                    ],
                )));
                for (r, t) in &inserts {
                    s.record("G", r.clone(), *t);
                }
                let consistency = match window {
                    0 => Consistency::Weak,
                    w => Consistency::Window(w),
                };
                let views = s.views_overlapping("G", &probe, consistency, now);
                let scratch = probe.subtract_all(&views);
                match s.remainder_pieces("G", &probe, consistency, now) {
                    None => {
                        // Only staleness may invalidate: under Weak the
                        // cache must always answer.
                        prop_assert!(matches!(consistency, Consistency::Window(_)));
                    }
                    Some(pieces) => {
                        // Identical point sets: disjoint piece lists with
                        // equal volume, each side covered by the other.
                        let pv = payless_geometry::union_volume(&pieces);
                        let sv = payless_geometry::union_volume(&scratch);
                        prop_assert_eq!(pv, sv, "uncovered volumes differ");
                        for p in &pieces {
                            prop_assert!(p.subtract_all(&scratch).is_empty(),
                                "cache piece {} outside scratch remainder", p);
                        }
                        for r in &scratch {
                            prop_assert!(r.subtract_all(&pieces).is_empty(),
                                "scratch piece {} outside cache remainder", r);
                        }
                        for (i, a) in pieces.iter().enumerate() {
                            for b in &pieces[i + 1..] {
                                prop_assert!(!a.overlaps(b), "cache pieces overlap");
                            }
                        }
                    }
                }
            }

            /// Eviction under a tight cap keeps every invariant: the view
            /// count is bounded, gaps exactly complement the surviving
            /// views, and covers() answers match a subtraction oracle.
            #[test]
            fn eviction_keeps_cache_exact(
                inserts in proptest::collection::vec((arb_box(24), 0u64..16), 1..32),
                probe in arb_box(24),
            ) {
                let mut s = SemanticStore::new();
                s.register(QuerySpace::of(&Schema::new(
                    "G",
                    vec![
                        Column::free("A", Domain::int(0, 23)),
                        Column::free("B", Domain::int(0, 23)),
                    ],
                )));
                s.set_config(StoreConfig { max_views: 6, compaction: true });
                for (r, t) in &inserts {
                    s.record("G", r.clone(), *t);
                }
                prop_assert!(s.view_count("G") <= 6);
                let views = s.views("G", Consistency::Weak, 100);
                let pieces = s
                    .remainder_pieces("G", &probe, Consistency::Weak, 100)
                    .expect("weak probes always use the cache");
                let scratch = probe.subtract_all(&views);
                prop_assert_eq!(
                    payless_geometry::union_volume(&pieces),
                    payless_geometry::union_volume(&scratch)
                );
                let covered = s.covers("G", &probe, Consistency::Weak, 100);
                prop_assert_eq!(covered, scratch.is_empty());
            }
        }
    }
}
