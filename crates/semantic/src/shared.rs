//! Thread-safe sharing of the semantic store across concurrent sessions.
//!
//! A [`SharedSemanticStore`] wraps the per-table stores of a
//! [`SemanticStore`] in one reader-writer lock *per table* (a sharded
//! scheme): rewrites and cover probes of different tables never contend,
//! and on one table many readers proceed in parallel while a delivery
//! appending coverage takes the shard's write lock only briefly. The
//! R-tree index and incremental remainder cache each shard keeps over its
//! views (see [`crate::store`]) are updated under that same write lock, so
//! readers always see a consistent view-set/index/cache triple —
//! [`SharedSemanticStore::probe_rewrite`] reads all of them under one lock
//! acquisition.
//!
//! The optimizer still wants a plain `&SemanticStore`;
//! [`SharedSemanticStore::snapshot`] reassembles one from the shards.
//! Views are `Arc<Region>` handles, so a snapshot clones handles and
//! bucket indexes, not geometry.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use payless_geometry::{QuerySpace, Region};
use payless_metrics::MetricsHub;
use payless_telemetry::Recorder;

use crate::store::{Consistency, CoverClass, SemanticStore, StoreConfig};

/// Callback invoked after every settled purchase lands in the store:
/// `(table, region, now, spend)`. Durability layers hang a write-ahead-log
/// appender here; the hook runs *outside* the shard's write lock so it may
/// take its own locks (or do I/O) without ordering against shard guards.
pub type SpendObserver = dyn Fn(&str, &Region, u64, u64) + Send + Sync;

/// What one rewrite probe reads in a single consistent look at a shard:
/// the overlapping usable views, plus the cached remainder pieces when the
/// incremental cache could answer (`None` falls back to scratch
/// subtraction).
pub type RewriteProbe = (Vec<Arc<Region>>, Option<Vec<Region>>);

/// A semantic store shareable across threads: per-table shards behind
/// reader-writer locks. All methods take `&self`; clone the containing
/// `Arc` to hand the store to another session.
#[derive(Default)]
pub struct SharedSemanticStore {
    shards: HashMap<Arc<str>, RwLock<SemanticStore>>,
    /// Config handed to tables registered after construction.
    cfg: StoreConfig,
    /// Live instrumentation: hit/miss classification, record counts,
    /// per-table view gauges, and shard lock-wait times. `None` costs one
    /// `OnceLock` load per operation.
    metrics: OnceLock<Arc<MetricsHub>>,
    /// Spend observer notified after every `record_spend`, outside the
    /// shard write lock (so the store may momentarily be ahead of a
    /// durability log — safe, because coverage re-insert is idempotent).
    observer: OnceLock<Arc<SpendObserver>>,
}

/// Read a poisoned lock anyway: shard state is only ever mutated through
/// `SemanticStore` methods that keep it structurally consistent, so a
/// panicking reader elsewhere cannot leave torn data behind.
impl std::fmt::Debug for SharedSemanticStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSemanticStore")
            .field("shards", &self.shards)
            .field("cfg", &self.cfg)
            .field("metrics", &self.metrics.get().is_some())
            .field("observer", &self.observer.get().is_some())
            .finish()
    }
}

fn read(l: &RwLock<SemanticStore>) -> RwLockReadGuard<'_, SemanticStore> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write(l: &RwLock<SemanticStore>) -> RwLockWriteGuard<'_, SemanticStore> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

impl SharedSemanticStore {
    /// Shard `store` per table. Typically called once at serve start with
    /// the store of a warmed (or fresh) single-tenant session.
    pub fn new(store: SemanticStore) -> Self {
        let cfg = store.config();
        SharedSemanticStore {
            shards: store
                .split_shards()
                .into_iter()
                .map(|(name, s)| (name, RwLock::new(s)))
                .collect(),
            cfg,
            metrics: OnceLock::new(),
            observer: OnceLock::new(),
        }
    }

    /// Apply `cfg` to every shard and to tables registered later. Lowering
    /// `max_views` evicts immediately (each shard under its write lock).
    pub fn set_config(&mut self, cfg: StoreConfig) {
        self.cfg = cfg;
        for shard in self.shards.values() {
            write(shard).set_config(cfg);
        }
    }

    /// Attach a metrics hub: classification hit/miss counters, recorded
    /// coverage counts, per-table view gauges, and shard lock-wait
    /// histograms (`payless_store_*`). First attachment wins; later calls
    /// are ignored.
    pub fn attach_metrics(&self, hub: Arc<MetricsHub>) {
        let _ = self.metrics.set(hub);
    }

    /// Attach a spend observer, notified after every settled purchase is
    /// inserted (see [`SpendObserver`]). First attachment wins; later calls
    /// are ignored. The observer runs with no shard lock held, in the
    /// thread that recorded the spend.
    pub fn attach_observer(&self, observer: Arc<SpendObserver>) {
        let _ = self.observer.set(observer);
    }

    /// Take a shard's read lock, reporting the wait into the hub.
    fn timed_read<'a>(&self, l: &'a RwLock<SemanticStore>) -> RwLockReadGuard<'a, SemanticStore> {
        match self.metrics.get() {
            Some(hub) => {
                let t0 = Instant::now();
                let g = read(l);
                hub.store_lock_wait_nanos
                    .record(t0.elapsed().as_nanos() as u64);
                g
            }
            None => read(l),
        }
    }

    /// Take a shard's write lock, reporting the wait into the hub.
    fn timed_write<'a>(&self, l: &'a RwLock<SemanticStore>) -> RwLockWriteGuard<'a, SemanticStore> {
        match self.metrics.get() {
            Some(hub) => {
                let t0 = Instant::now();
                let g = write(l);
                hub.store_lock_wait_nanos
                    .record(t0.elapsed().as_nanos() as u64);
                g
            }
            None => write(l),
        }
    }

    /// Register a table's query space (idempotent). Takes `&mut self`:
    /// adding tables is a setup-time operation, not a serving-time one.
    pub fn register(&mut self, space: QuerySpace) {
        let cfg = self.cfg;
        self.shards.entry(space.table.clone()).or_insert_with(|| {
            let mut s = SemanticStore::new();
            s.set_config(cfg);
            s.register(space);
            RwLock::new(s)
        });
    }

    /// Attach a store-level telemetry recorder to every shard. Index
    /// hit/scan counters are a property of the shared store, not of any one
    /// session — see DESIGN.md "Concurrent serving & call coalescing".
    pub fn attach_recorder(&self, recorder: Arc<Recorder>) {
        for shard in self.shards.values() {
            write(shard).attach_recorder(recorder.clone());
        }
    }

    /// Attach a flight-recorder journal to every shard (store-level, like
    /// [`SharedSemanticStore::attach_recorder`]: store lifecycle events
    /// carry no query id).
    pub fn attach_events(&self, journal: Arc<payless_events::EventJournal>) {
        for shard in self.shards.values() {
            write(shard).attach_events(journal.clone());
        }
    }

    /// The query space of `table`, if registered (cloned out of the shard).
    pub fn space(&self, table: &str) -> Option<QuerySpace> {
        self.shards
            .get(table)
            .and_then(|s| read(s).space(table).cloned())
    }

    /// Record that `region` of `table` has been fully retrieved at `now`.
    /// Takes the shard's write lock for the duration of the insert
    /// (containment checks, compaction, index and remainder-cache update).
    pub fn record(&self, table: &str, region: Region, now: u64) {
        self.record_spend(table, region, now, 0);
    }

    /// As [`SharedSemanticStore::record`], attributing the pages billed to
    /// retrieve the region — the weight the store's eviction policy uses.
    pub fn record_spend(&self, table: &str, region: Region, now: u64, spend: u64) {
        let shard = self
            .shards
            .get(table)
            .unwrap_or_else(|| panic!("table `{table}` not registered in semantic store"));
        // Clone only when someone is listening: the insert consumes `region`.
        let observed = self
            .observer
            .get()
            .map(|obs| (Arc::clone(obs), region.clone()));
        let mut guard = self.timed_write(shard);
        guard.record_spend(table, region, now, spend);
        if let Some(hub) = self.metrics.get() {
            hub.store_records.inc(1);
            hub.table_views_gauge(table)
                .set(guard.view_count(table) as u64);
            // Cumulative totals, not pending deltas: the store may already
            // have drained pending events into its telemetry recorder, and
            // setting absolute values keeps the gauges idempotent.
            hub.table_compactions_gauge(table)
                .set(guard.compactions(table));
            hub.table_evictions_gauge(table).set(guard.evictions(table));
        }
        // Release the shard before notifying: the observer may take its own
        // locks (e.g. a durability log mutex whose snapshotter reads shards),
        // and holding the write guard across it would invert that order.
        drop(guard);
        if let Some((obs, region)) = observed {
            obs(table, &region, now, spend);
        }
    }

    /// The usable views of `table` overlapping `probe` — a read-locked
    /// passthrough to [`SemanticStore::views_overlapping`].
    pub fn views_overlapping(
        &self,
        table: &str,
        probe: &Region,
        consistency: Consistency,
        now: u64,
    ) -> Vec<Arc<Region>> {
        self.shards
            .get(table)
            .map(|s| {
                self.timed_read(s)
                    .views_overlapping(table, probe, consistency, now)
            })
            .unwrap_or_default()
    }

    /// One consistent read of everything a rewrite needs — the overlapping
    /// usable views and (when the remainder cache is valid) the precomputed
    /// remainder pieces — under a **single** shard read-lock acquisition,
    /// so the two can never disagree about an in-flight insert.
    pub fn probe_rewrite(
        &self,
        table: &str,
        probe: &Region,
        consistency: Consistency,
        now: u64,
    ) -> RewriteProbe {
        self.shards
            .get(table)
            .map(|s| {
                self.timed_read(s)
                    .probe_rewrite(table, probe, consistency, now)
            })
            .unwrap_or((Vec::new(), None))
    }

    /// [`SharedSemanticStore::probe_rewrite`] over several probes of the
    /// same table under **one** shard read-lock acquisition: a batch
    /// leader re-validating the merged remainder pieces of its members
    /// sees one consistent store state across all of them, so no piece can
    /// be probed against coverage another piece's probe did not see.
    pub fn probe_rewrite_multi(
        &self,
        table: &str,
        probes: &[Region],
        consistency: Consistency,
        now: u64,
    ) -> Vec<RewriteProbe> {
        match self.shards.get(table) {
            Some(s) => {
                let guard = self.timed_read(s);
                probes
                    .iter()
                    .map(|p| guard.probe_rewrite(table, p, consistency, now))
                    .collect()
            }
            None => probes.iter().map(|_| (Vec::new(), None)).collect(),
        }
    }

    /// The cached remainder pieces of `probe` over `table`, or `None` when
    /// the cache cannot answer (see [`SemanticStore::remainder_pieces`]).
    pub fn remainder_pieces(
        &self,
        table: &str,
        probe: &Region,
        consistency: Consistency,
        now: u64,
    ) -> Option<Vec<Region>> {
        self.shards.get(table).and_then(|s| {
            self.timed_read(s)
                .remainder_pieces(table, probe, consistency, now)
        })
    }

    /// Total compaction events for `table` since creation.
    pub fn compactions(&self, table: &str) -> u64 {
        self.shards
            .get(table)
            .map(|s| read(s).compactions(table))
            .unwrap_or(0)
    }

    /// Total spend-weighted evictions for `table` since creation.
    pub fn evictions(&self, table: &str) -> u64 {
        self.shards
            .get(table)
            .map(|s| read(s).evictions(table))
            .unwrap_or(0)
    }

    /// Classify how much of `region` the usable views cover.
    pub fn classify(
        &self,
        table: &str,
        region: &Region,
        consistency: Consistency,
        now: u64,
    ) -> CoverClass {
        let class = self
            .shards
            .get(table)
            .map(|s| self.timed_read(s).classify(table, region, consistency, now))
            .unwrap_or(CoverClass::Miss);
        if let Some(hub) = self.metrics.get() {
            match class {
                CoverClass::Full => hub.store_full_hits.inc(1),
                CoverClass::Partial => hub.store_partial_hits.inc(1),
                CoverClass::Miss => hub.store_misses.inc(1),
            }
        }
        class
    }

    /// `true` if `region` of `table` is fully covered by usable views.
    pub fn covers(&self, table: &str, region: &Region, consistency: Consistency, now: u64) -> bool {
        self.shards
            .get(table)
            .map(|s| self.timed_read(s).covers(table, region, consistency, now))
            .unwrap_or(false)
    }

    /// Number of stored view boxes for `table` (after coalescing).
    pub fn view_count(&self, table: &str) -> usize {
        self.shards
            .get(table)
            .map(|s| read(s).view_count(table))
            .unwrap_or(0)
    }

    /// Fraction of `table`'s whole query space covered by stored views.
    pub fn coverage_fraction(&self, table: &str) -> f64 {
        self.shards
            .get(table)
            .map(|s| read(s).coverage_fraction(table))
            .unwrap_or(0.0)
    }

    /// A point-in-time single-tenant copy: per-table consistent (each shard
    /// is cloned under its read lock), cheap (views are `Arc<Region>`
    /// handles). This is what the optimizer plans against in serve mode.
    pub fn snapshot(&self) -> SemanticStore {
        let mut out = SemanticStore::new();
        for shard in self.shards.values() {
            out.absorb(read(shard).clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_geometry::Interval;
    use payless_types::{Column, Domain, Schema};

    fn space() -> QuerySpace {
        QuerySpace::of(&Schema::new(
            "T",
            vec![Column::free("A", Domain::int(0, 99))],
        ))
    }

    fn r(lo: i64, hi: i64) -> Region {
        Region::new(vec![Interval::new(lo, hi)])
    }

    #[test]
    fn shards_share_coverage_across_threads() {
        let mut base = SemanticStore::new();
        base.register(space());
        let shared = Arc::new(SharedSemanticStore::new(base));
        std::thread::scope(|s| {
            for i in 0..4i64 {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    shared.record("T", r(i * 10, i * 10 + 9), 1);
                });
            }
        });
        assert!(shared.covers("T", &r(0, 39), Consistency::Weak, 2));
        assert_eq!(
            shared.view_count("T"),
            1,
            "adjacent ranges coalesce to one box regardless of insert thread"
        );
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let mut base = SemanticStore::new();
        base.register(space());
        base.record("T", r(0, 9), 1);
        let shared = SharedSemanticStore::new(base);
        let snap = shared.snapshot();
        shared.record("T", r(50, 59), 2);
        assert!(snap.covers("T", &r(0, 9), Consistency::Weak, 3));
        assert!(!snap.covers("T", &r(50, 59), Consistency::Weak, 3));
        assert!(shared.covers("T", &r(50, 59), Consistency::Weak, 3));
    }

    #[test]
    fn metrics_observe_classification_and_recording() {
        use payless_metrics::{MetricsConfig, MetricsHub};
        let mut base = SemanticStore::new();
        base.register(space());
        let shared = SharedSemanticStore::new(base);
        let hub = Arc::new(MetricsHub::new(MetricsConfig::default()));
        shared.attach_metrics(Arc::clone(&hub));

        assert_eq!(
            shared.classify("T", &r(0, 9), Consistency::Weak, 1),
            CoverClass::Miss
        );
        shared.record("T", r(0, 9), 1);
        assert_eq!(
            shared.classify("T", &r(0, 9), Consistency::Weak, 2),
            CoverClass::Full
        );
        assert_eq!(
            shared.classify("T", &r(5, 20), Consistency::Weak, 2),
            CoverClass::Partial
        );

        assert_eq!(hub.store_misses.get(), 1);
        assert_eq!(hub.store_full_hits.get(), 1);
        assert_eq!(hub.store_partial_hits.get(), 1);
        assert_eq!(hub.store_records.get(), 1);
        assert_eq!(hub.table_views_gauge("T").get(), 1);
        assert!(
            hub.store_lock_wait_nanos.snapshot().count >= 4,
            "every instrumented lock acquisition reports a wait sample"
        );
    }

    #[test]
    fn observer_sees_every_spend_outside_the_shard_lock() {
        use std::sync::Mutex;
        let mut base = SemanticStore::new();
        base.register(space());
        let shared = Arc::new(SharedSemanticStore::new(base));
        let seen: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let seen = Arc::clone(&seen);
            let probe = Arc::clone(&shared);
            shared.attach_observer(Arc::new(move |table: &str, region, now, spend| {
                // Re-entering the store here would deadlock if the shard
                // write lock were still held when the observer fires.
                assert!(probe.covers(table, region, Consistency::Weak, now));
                seen.lock().unwrap().push((table.to_string(), spend));
            }));
        }
        shared.record_spend("T", r(0, 9), 1, 10);
        shared.record_spend("T", r(20, 29), 2, 7);
        // Second attachment is ignored (first wins), so counts stay exact.
        shared.attach_observer(Arc::new(|_, _, _, _| panic!("must never fire")));
        shared.record("T", r(40, 49), 3);
        let seen = seen.lock().unwrap();
        assert_eq!(
            *seen,
            vec![
                ("T".to_string(), 10),
                ("T".to_string(), 7),
                ("T".to_string(), 0)
            ]
        );
    }

    #[test]
    fn unregistered_table_degrades_gracefully() {
        let shared = SharedSemanticStore::new(SemanticStore::new());
        assert_eq!(shared.view_count("nope"), 0);
        assert!(shared.space("nope").is_none());
        assert_eq!(
            shared.classify("nope", &r(0, 1), Consistency::Weak, 1),
            CoverClass::Miss
        );
    }
}
