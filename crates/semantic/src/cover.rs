//! Chvátal's greedy algorithm for weighted set cover.
//!
//! The paper (Section 4.2) reduces remainder-query selection to weighted set
//! cover — elements are elementary boxes, sets are candidate bounding boxes,
//! cost is a box's estimated transactions — and solves it with "the greedy
//! algorithm in [Chvátal 1979] that runs in `O(|B|·|E|)` time with
//! `1 + ln|B|` approximation ratio".

/// One candidate set: a cost and the element indices it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverSet {
    /// Cost of choosing this set (estimated transactions; may be zero).
    pub cost: f64,
    /// Indices of covered elements, in `0..n_elements`.
    pub elements: Vec<usize>,
}

impl CoverSet {
    /// Convenience constructor.
    pub fn new(cost: f64, elements: Vec<usize>) -> Self {
        CoverSet { cost, elements }
    }
}

/// Greedy weighted set cover.
///
/// Returns the indices of chosen sets covering all of `0..n_elements`, or
/// `None` if the union of all sets does not cover every element. Ties and
/// zero costs are handled by preferring the smallest cost-per-newly-covered
/// ratio (zero-cost sets are effectively free and picked first).
pub fn greedy_cover(n_elements: usize, sets: &[CoverSet]) -> Option<Vec<usize>> {
    if n_elements == 0 {
        return Some(Vec::new());
    }
    let mut covered = vec![false; n_elements];
    let mut n_covered = 0usize;
    let mut chosen = Vec::new();

    // Lazy greedy: a set's cost-per-newly-covered ratio only worsens as
    // elements get covered, so a priority queue with stale keys pops in
    // exact greedy order once an entry's key is re-verified — turning the
    // naive O(|B|·|E|·picks) scan into near-linear behaviour.
    #[derive(PartialEq)]
    struct Entry {
        ratio: f64,
        new: usize,
        set: usize,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-ratio first (BinaryHeap is a max-heap, so reverse);
            // ties prefer larger coverage, then smaller index (stability).
            other
                .ratio
                .total_cmp(&self.ratio)
                .then(self.new.cmp(&other.new))
                .then(other.set.cmp(&self.set))
        }
    }

    let fresh_new = |covered: &[bool], s: &CoverSet| {
        s.elements
            .iter()
            .filter(|&&e| e < n_elements && !covered[e])
            .count()
    };

    // The initial weight of every set is computed before any pick, so the
    // evaluations are independent — chunk them across scoped threads for
    // large candidate pools. The heap's total order (ratio, then coverage,
    // then set index) fully determines pop order, so heap-internal layout
    // differences cannot change which sets get chosen.
    let mut heap: std::collections::BinaryHeap<Entry> = payless_par::par_map(sets, 128, |i, s| {
        let new = fresh_new(&covered, s);
        (new > 0).then(|| Entry {
            ratio: s.cost / new as f64,
            new,
            set: i,
        })
    })
    .into_iter()
    .flatten()
    .collect();

    while n_covered < n_elements {
        let top = heap.pop()?;
        let new = fresh_new(&covered, &sets[top.set]);
        if new == 0 {
            continue;
        }
        let ratio = sets[top.set].cost / new as f64;
        if new != top.new {
            // Stale key: re-verify against the next candidate.
            let still_best = heap.peek().is_none_or(|next| {
                ratio < next.ratio - 1e-12
                    || ((ratio - next.ratio).abs() <= 1e-12 && new >= next.new)
            });
            if !still_best {
                heap.push(Entry {
                    ratio,
                    new,
                    set: top.set,
                });
                continue;
            }
        }
        chosen.push(top.set);
        for &e in &sets[top.set].elements {
            if e < n_elements && !covered[e] {
                covered[e] = true;
                n_covered += 1;
            }
        }
    }
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_cost(sets: &[CoverSet], chosen: &[usize]) -> f64 {
        chosen.iter().map(|&i| sets[i].cost).sum()
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(greedy_cover(0, &[]), Some(vec![]));
        assert_eq!(greedy_cover(1, &[]), None);
        let sets = [CoverSet::new(1.0, vec![0])];
        assert_eq!(greedy_cover(1, &sets), Some(vec![0]));
    }

    #[test]
    fn infeasible_when_element_uncoverable() {
        let sets = [CoverSet::new(1.0, vec![0]), CoverSet::new(1.0, vec![1])];
        assert_eq!(greedy_cover(3, &sets), None);
    }

    #[test]
    fn prefers_cheap_big_sets() {
        // One set covers everything for 3; singletons cost 2 each (total 6).
        let sets = [
            CoverSet::new(2.0, vec![0]),
            CoverSet::new(2.0, vec![1]),
            CoverSet::new(2.0, vec![2]),
            CoverSet::new(3.0, vec![0, 1, 2]),
        ];
        let chosen = greedy_cover(3, &sets).unwrap();
        assert_eq!(chosen, vec![3]);
        assert_eq!(total_cost(&sets, &chosen), 3.0);
    }

    #[test]
    fn mixes_sets_when_beneficial() {
        // The paper's Figure 6 economics: Rem2 = {[0,30) for 1, [60,100] for
        // 2} beats Rem1 = three boxes costing 1+1+2.
        // Elements: 0 = [0,10), 1 = [20,30), 2 = [60,100].
        let sets = [
            CoverSet::new(1.0, vec![0]),    // QRem1
            CoverSet::new(1.0, vec![1]),    // QRem2
            CoverSet::new(2.0, vec![2]),    // QRem3
            CoverSet::new(1.0, vec![0, 1]), // QRem4 (overlaps V1, still 1 txn)
        ];
        let chosen = greedy_cover(3, &sets).unwrap();
        let cost = total_cost(&sets, &chosen);
        assert_eq!(cost, 3.0);
        assert!(chosen.contains(&3));
        assert!(chosen.contains(&2));
        assert_eq!(chosen.len(), 2);
    }

    #[test]
    fn zero_cost_sets_picked_first() {
        let sets = [
            CoverSet::new(5.0, vec![0, 1]),
            CoverSet::new(0.0, vec![0]),
            CoverSet::new(0.0, vec![1]),
        ];
        let chosen = greedy_cover(2, &sets).unwrap();
        assert_eq!(total_cost(&sets, &chosen), 0.0);
        assert_eq!(chosen.len(), 2);
    }

    #[test]
    fn ignores_out_of_range_elements() {
        let sets = [CoverSet::new(1.0, vec![0, 7, 9])];
        assert_eq!(greedy_cover(1, &sets), Some(vec![0]));
    }

    #[test]
    fn greedy_ratio_tie_prefers_larger_set() {
        // Both have ratio 1.0; the bigger one should win, covering all in one.
        let sets = [
            CoverSet::new(1.0, vec![0]),
            CoverSet::new(3.0, vec![0, 1, 2]),
        ];
        let chosen = greedy_cover(3, &sets).unwrap();
        assert_eq!(chosen, vec![1]);
    }

    #[test]
    fn chosen_sets_do_cover() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::default();
        runner
            .run(
                &(
                    1usize..8,
                    proptest::collection::vec(
                        (0.0f64..10.0, proptest::collection::vec(0usize..8, 1..5)),
                        1..12,
                    ),
                ),
                |(n, raw)| {
                    let sets: Vec<CoverSet> =
                        raw.into_iter().map(|(c, e)| CoverSet::new(c, e)).collect();
                    if let Some(chosen) = greedy_cover(n, &sets) {
                        let mut covered = vec![false; n];
                        for &i in &chosen {
                            for &e in &sets[i].elements {
                                if e < n {
                                    covered[e] = true;
                                }
                            }
                        }
                        prop_assert!(covered.iter().all(|&c| c));
                        // No duplicate picks.
                        let mut sorted = chosen.clone();
                        sorted.sort_unstable();
                        sorted.dedup();
                        prop_assert_eq!(sorted.len(), chosen.len());
                    } else {
                        // Infeasible: some element is in no set.
                        let coverable =
                            (0..n).all(|e| sets.iter().any(|s| s.elements.contains(&e)));
                        prop_assert!(!coverable);
                    }
                    Ok(())
                },
            )
            .unwrap();
    }
}
