//! Remainder-query generation — Algorithm 1 of the paper plus the weighted
//! set-cover selection step.
//!
//! Given a query region `Q`, the usable stored views `V`, and the table's
//! statistics, [`rewrite`] returns the set of remainder queries to send to
//! the market. Candidates are bounding boxes whose extents are drawn from
//! the separator sets of the elementary-box decomposition; two pruning rules
//! discard non-minimal boxes and boxes costlier than their parts; Chvátal's
//! greedy picks the cheapest feasible cover. Remainder queries may
//! deliberately **overlap** stored views when the transaction arithmetic
//! makes that cheaper (the paper's `Q₄ᴿᵉᵐ` example).
//!
//! Categorical dimensions follow Figure 8's validity rule: a remainder query
//! spans either a single category or the whole categorical domain. Cells are
//! split per category where needed so that every candidate box contains each
//! cell entirely or not at all.

use std::borrow::Borrow;

use payless_geometry::{decompose_pieces, Interval, QuerySpace, Region};
use payless_par::{par_map, planned_workers};
use payless_stats::CardinalityModel;
#[cfg(test)]
use payless_stats::TableStats;

use crate::cover::{greedy_cover, CoverSet};

/// Smallest number of candidate scorings worth a worker thread: one
/// statistics probe walks every histogram bucket, so chunks of this size
/// dominate thread spawn cost.
const SCORE_CHUNK: usize = 16;

/// Tuning knobs of the rewriter (the defaults match the paper's setup; the
/// flags exist for the Figure 15 ablation).
#[derive(Debug, Clone)]
pub struct RewriteConfig {
    /// Pruning rule 1: keep only minimum bounding boxes.
    pub minimal_pruning: bool,
    /// Pruning rule 2: drop boxes at least as expensive as their parts.
    pub price_pruning: bool,
    /// Cap on the candidate enumeration; beyond it the rewriter falls back
    /// to per-cell boxes plus the remainder hull.
    pub max_candidates: u64,
    /// Cap on elementary cells. A store fragmented into more uncovered
    /// pieces than this skips Algorithm 1 entirely and issues the raw
    /// subtraction pieces as remainders (correct, possibly suboptimal) —
    /// keeping rewriting linear in the fragmentation.
    pub max_cells: usize,
    /// Exact mode: always issue the raw subtraction pieces, never a merged
    /// bounding box (Algorithm 1) or a consolidated whole-region call —
    /// remainders are guaranteed disjoint from stored coverage, so no
    /// covered record is ever re-bought. Single-tenant sessions leave this
    /// off (merging trades a few re-bought records for fewer calls); the
    /// concurrent serving layer turns it on so delivered spend is
    /// reproducible across thread interleavings.
    pub exact: bool,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            minimal_pruning: true,
            price_pruning: true,
            max_candidates: 2_048,
            max_cells: 256,
            exact: false,
        }
    }
}

impl RewriteConfig {
    /// Both pruning rules off (the "No Pruning" line of Figure 15).
    pub fn no_pruning() -> Self {
        RewriteConfig {
            minimal_pruning: false,
            price_pruning: false,
            ..Self::default()
        }
    }

    /// Exact subtraction remainders (see [`RewriteConfig::exact`]).
    pub fn exact() -> Self {
        RewriteConfig {
            exact: true,
            ..Self::default()
        }
    }
}

/// The rewriter's outcome for one table access.
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// Remainder queries to send to the market (each expressible as one
    /// RESTful call). Empty iff the stored views already cover the query.
    pub remainders: Vec<Region>,
    /// Estimated transactions the remainders will cost.
    pub est_transactions: f64,
    /// `true` when the query is fully answerable from the store.
    pub fully_covered: bool,
    /// Candidate boxes enumerated before pruning (Figure 15's "No Pruning").
    pub boxes_enumerated: u64,
    /// Candidate boxes surviving both pruning rules (Figure 15's "PayLess").
    pub boxes_kept: u64,
    /// Sets handed to the weighted set-cover solver (0 when the fast paths
    /// bypassed it).
    pub cover_sets: u64,
    /// Sets the greedy cover actually chose.
    pub cover_chosen: u64,
    /// Worker threads the candidate scoring fan-out used (1 when the input
    /// was too small to chunk or a fast path bypassed scoring).
    pub threads_used: u64,
}

/// Disjoint union of several queries' remainder sets — the batched
/// purchasing merge step. Each set's pieces are subtracted against
/// everything already merged (in input order), so the output regions are
/// pairwise disjoint and their union is exactly the union of the inputs:
/// one pass of remainder purchasing over the output buys every input piece
/// once, never twice. Input order is the batch's join order, which keeps
/// the merge deterministic for a deterministic schedule.
pub fn merge_remainders<'a, I>(sets: I) -> Vec<Region>
where
    I: IntoIterator<Item = &'a [Region]>,
{
    let mut merged: Vec<Region> = Vec::new();
    for set in sets {
        for piece in set {
            merged.extend(piece.subtract_all(&merged));
        }
    }
    merged
}

/// Estimated transactions for a call expected to return `est` tuples.
pub fn est_transactions(est: f64, page_size: u64) -> f64 {
    if est <= 0.0 {
        0.0
    } else {
        (est / page_size as f64).ceil().max(1.0)
    }
}

/// Generate the cheapest estimated set of remainder queries for `query`
/// given stored `views`.
///
/// Views may be passed by value or as `Arc<Region>` handles straight out of
/// the semantic store's index. Candidate scoring fans out over scoped
/// threads (capped by `PAYLESS_THREADS`); results are byte-identical to a
/// single-threaded run because scores come back positionally and all
/// selection logic stays sequential.
pub fn rewrite<V: Borrow<Region> + Sync>(
    stats: &(dyn CardinalityModel + Sync),
    page_size: u64,
    query: &Region,
    views: &[V],
    cfg: &RewriteConfig,
) -> Rewrite {
    let clipped: Vec<Region> = views
        .iter()
        .filter_map(|v| v.borrow().intersect(query))
        .collect();
    rewrite_cached(stats, page_size, query, &query.subtract_all(&clipped), cfg)
}

/// As [`rewrite`], but with the remainder `Q ∖ ⋃Vᵢ` already computed — the
/// entry point for the semantic store's incremental remainder cache
/// ([`crate::SemanticStore::remainder_pieces`]). `pieces` must be disjoint
/// boxes inside `query` exactly tiling the uncovered space; the subtraction
/// sweep over the view set never runs here, which is what makes rewriting
/// cheap at 10k+ stored views.
///
/// The piece *boxes* may differ between a cached and a from-scratch call
/// (decomposition order is not canonical), but they describe the same point
/// set, so covers remain feasible and exact-mode spend at `page_size == 1`
/// is unchanged.
pub fn rewrite_cached(
    stats: &(dyn CardinalityModel + Sync),
    page_size: u64,
    query: &Region,
    pieces: &[Region],
    cfg: &RewriteConfig,
) -> Rewrite {
    let space = stats.space();
    if pieces.is_empty() {
        return Rewrite {
            remainders: Vec::new(),
            est_transactions: 0.0,
            fully_covered: true,
            boxes_enumerated: 0,
            boxes_kept: 0,
            cover_sets: 0,
            cover_chosen: 0,
            threads_used: 1,
        };
    }

    // --- Exact mode -------------------------------------------------------
    // Raw subtraction pieces, nothing merged: every remainder is disjoint
    // from stored coverage, so no covered record is re-bought regardless of
    // what the store happens to contain. Spend becomes a function of the
    // query set alone — the property the serving layer's cross-thread
    // reconciliation relies on.
    if cfg.exact {
        let mut remainders = Vec::new();
        for piece in pieces {
            remainders.extend(space.expressible_cover(piece));
        }
        let est: f64 = remainders
            .iter()
            .map(|r| est_transactions(stats.estimate(r), page_size))
            .sum();
        let n = remainders.len() as u64;
        return Rewrite {
            remainders,
            est_transactions: est,
            fully_covered: false,
            boxes_enumerated: n,
            boxes_kept: n,
            cover_sets: 0,
            cover_chosen: 0,
            threads_used: 1,
        };
    }

    // --- Fragmentation fast path -----------------------------------------
    // A store shattered into very many uncovered pieces would make the
    // candidate x cell containment work quadratic. Issue the raw
    // subtraction pieces directly (split per category where the interface
    // demands it); the cover is exact, just not cost-minimized. Every piece
    // yields at least one elementary cell, so a piece count over the cap
    // skips the re-grid entirely — it could only confirm the overflow.
    let d = if pieces.len() > cfg.max_cells {
        None
    } else {
        Some(decompose_pieces(query.arity(), pieces.to_vec()))
    };
    let fragmented = d
        .as_ref()
        .is_none_or(|d| d.elementary.len() > cfg.max_cells);
    if fragmented {
        let mut remainders = Vec::new();
        for piece in pieces {
            remainders.extend(space.expressible_cover(piece));
        }
        let pieces_cost: f64 = remainders
            .iter()
            .map(|r| est_transactions(stats.estimate(r), page_size))
            .sum();
        // The whole query region is itself always a valid remainder (overlap
        // with stored views is allowed). When coverage has fragmented into a
        // storm of slivers, one consolidated call is often cheaper in both
        // transactions (ceil-per-call) and calls — and recording it heals
        // the store's fragmentation.
        let whole = space.expressible_cover(query);
        let whole_cost: f64 = whole
            .iter()
            .map(|r| est_transactions(stats.estimate(r), page_size))
            .sum();
        let n = remainders.len() as u64;
        if whole_cost <= pieces_cost || remainders.len() > 512 {
            return Rewrite {
                remainders: whole,
                est_transactions: whole_cost,
                fully_covered: false,
                boxes_enumerated: n,
                boxes_kept: 1,
                cover_sets: 0,
                cover_chosen: 0,
                threads_used: 1,
            };
        }
        return Rewrite {
            remainders,
            est_transactions: pieces_cost,
            fully_covered: false,
            boxes_enumerated: n,
            boxes_kept: n,
            cover_sets: 0,
            cover_chosen: 0,
            threads_used: 1,
        };
    }

    // --- Cells, with categorical dimensions split to expressible widths ---
    let d = d.expect("non-fragmented path always decomposed");
    let mut cells: Vec<Region> = d.elementary.iter().map(|e| e.region.clone()).collect();
    let mut extent_lists: Vec<Vec<Interval>> = Vec::with_capacity(space.arity());
    for (i, dim) in space.dims().iter().enumerate() {
        if !dim.is_categorical() {
            // Integer dimension: all separator pairs.
            let seps = &d.separators[i];
            let mut extents = Vec::with_capacity(seps.len() * (seps.len() - 1) / 2);
            for (a_idx, &a) in seps.iter().enumerate() {
                for &b in &seps[a_idx + 1..] {
                    extents.push(Interval::new(a, b - 1));
                }
            }
            extent_lists.push(extents);
            continue;
        }
        // Categorical dimension: unit-split cells whose span is a strict
        // multi-category subset, then allow point extents plus (optionally)
        // the full domain.
        let full = dim.full();
        let needs_split = cells
            .iter()
            .any(|c| c.dim(i).width() > 1 && c.dim(i) != full);
        // Even full-span cells must be split if any sibling is: a point
        // extent cannot contain a full-span cell, so widths must agree.
        let mixed_widths = {
            let mut has_point = false;
            let mut has_full = false;
            for c in &cells {
                if c.dim(i).width() == 1 {
                    has_point = true;
                } else {
                    has_full = true;
                }
            }
            has_point && has_full
        };
        if needs_split || mixed_widths {
            let mut split = Vec::with_capacity(cells.len());
            for c in cells {
                let iv = c.dim(i);
                if iv.width() == 1 {
                    split.push(c);
                } else {
                    for v in iv.lo..=iv.hi {
                        let mut dims = c.dims().to_vec();
                        dims[i] = Interval::point(v);
                        split.push(Region::new(dims));
                    }
                }
            }
            cells = split;
        }
        // Extent list: distinct cell extents on this dimension, plus the
        // full domain when the query itself spans it (Figure 8's B3-style
        // whole-domain remainder).
        let mut extents: Vec<Interval> = Vec::new();
        for c in &cells {
            let iv = c.dim(i);
            if !extents.contains(&iv) {
                extents.push(iv);
            }
        }
        if query.dim(i) == full && !extents.contains(&full) {
            extents.push(full);
        }
        extents.sort();
        extent_lists.push(extents);
    }

    // Category splitting may have re-inflated the cell count; re-check.
    if cells.len() > cfg.max_cells {
        let est: f64 = cells
            .iter()
            .map(|r| est_transactions(stats.estimate(r), page_size))
            .sum();
        let n = cells.len() as u64;
        return Rewrite {
            remainders: cells,
            est_transactions: est,
            fully_covered: false,
            boxes_enumerated: n,
            boxes_kept: n,
            cover_sets: 0,
            cover_chosen: 0,
            threads_used: 1,
        };
    }

    // --- Enumeration size and fallback ---
    let enumerated: u64 = extent_lists
        .iter()
        .fold(1u64, |acc, l| acc.saturating_mul(l.len() as u64));
    let candidates: Vec<Region> = if enumerated > cfg.max_candidates {
        // Fallback: each cell individually, plus the hull widened to
        // expressibility when possible.
        let mut c: Vec<Region> = cells.clone();
        if let Some(hull) = Region::hull(cells.iter()) {
            if let Some(h) = widen_to_expressible(space, &hull, query) {
                if !c.contains(&h) {
                    c.push(h);
                }
            }
        }
        c
    } else {
        cartesian(&extent_lists)
    };

    // --- Pruning (Algorithm 1) ---
    // Rule 1 (minimality) is pure geometry — no statistics probe — so it
    // runs *before* the parallel fan-out: worker threads only ever score
    // rule-1 survivors. Rule 2 compares a box's price against the sum of
    // its parts, so it necessarily runs after scoring, on one thread.
    let mut survivors: Vec<(Region, Vec<usize>)> = Vec::new();
    for b in candidates {
        let mut contained = Vec::new();
        for (ci, cell) in cells.iter().enumerate() {
            if b.contains(cell) {
                contained.push(ci);
            } else {
                debug_assert!(!b.overlaps(cell), "candidate {b} splits cell {cell}");
            }
        }
        if contained.is_empty() {
            continue;
        }
        // Pruning rule 1: minimum bounding boxes only. A box is minimal when
        // each extent is the smallest *expressible* extent covering its
        // cells.
        if cfg.minimal_pruning && !is_minimal(space, &b, &contained, &cells) {
            continue;
        }
        survivors.push((b, contained));
    }

    // Price scoring: one statistics probe per cell and per surviving
    // candidate, each independent — the rewriter's dominant cost at high
    // view counts. Scores come back positionally, so the downstream
    // selection is oblivious to the thread count.
    let threads_used = planned_workers(cells.len(), SCORE_CHUNK)
        .max(planned_workers(survivors.len(), SCORE_CHUNK)) as u64;
    let cell_prices: Vec<f64> = par_map(&cells, SCORE_CHUNK, |_, c| {
        est_transactions(stats.estimate(c), page_size)
    });
    let prices: Vec<f64> = par_map(&survivors, SCORE_CHUNK, |_, (b, _)| {
        est_transactions(stats.estimate(b), page_size)
    });

    let mut sets: Vec<CoverSet> = Vec::new();
    let mut regions: Vec<Region> = Vec::new();
    for ((b, contained), price) in survivors.into_iter().zip(prices) {
        // Pruning rule 2: a multi-cell box must beat the sum of its parts.
        // Per-cell boxes are always kept so the cover stays feasible.
        if cfg.price_pruning && contained.len() > 1 {
            let parts: f64 = contained.iter().map(|&ci| cell_prices[ci]).sum();
            if price >= parts {
                continue;
            }
        }
        sets.push(CoverSet::new(price, contained));
        regions.push(b);
    }
    let boxes_kept = sets.len() as u64;

    // --- Weighted set cover ---
    let chosen =
        greedy_cover(cells.len(), &sets).expect("per-cell candidates guarantee feasibility");
    let est: f64 = chosen.iter().map(|&i| sets[i].cost).sum();
    let cover_chosen = chosen.len() as u64;
    let remainders: Vec<Region> = chosen.into_iter().map(|i| regions[i].clone()).collect();
    debug_assert!(remainders.iter().all(|r| space.region_is_expressible(r)));

    Rewrite {
        remainders,
        est_transactions: est,
        fully_covered: false,
        boxes_enumerated: enumerated,
        boxes_kept,
        cover_sets: boxes_kept,
        cover_chosen,
        threads_used,
    }
}

/// Minimality check of pruning rule 1, expressibility-aware.
fn is_minimal(space: &QuerySpace, b: &Region, contained: &[usize], cells: &[Region]) -> bool {
    let hull =
        Region::hull(contained.iter().map(|&ci| &cells[ci])).expect("contained is non-empty");
    for (i, dim) in space.dims().iter().enumerate() {
        let extent = b.dim(i);
        let span = hull.dim(i);
        if dim.is_categorical() {
            let minimal = if span.width() == 1 { span } else { dim.full() };
            if extent != minimal {
                return false;
            }
        } else if extent != span {
            return false;
        }
    }
    true
}

/// Widen a hull to an expressible box (categorical dims spanning several
/// values become the full domain), provided the query itself allows it.
fn widen_to_expressible(space: &QuerySpace, hull: &Region, query: &Region) -> Option<Region> {
    let mut dims = hull.dims().to_vec();
    for (i, dim) in space.dims().iter().enumerate() {
        if dim.is_categorical() && dims[i].width() > 1 && dims[i] != dim.full() {
            if query.dim(i) == dim.full() {
                dims[i] = dim.full();
            } else {
                return None;
            }
        }
    }
    Some(Region::new(dims))
}

/// Cartesian product of per-dimension extent lists.
fn cartesian(extent_lists: &[Vec<Interval>]) -> Vec<Region> {
    let mut out: Vec<Vec<Interval>> = vec![Vec::new()];
    for list in extent_lists {
        let mut next = Vec::with_capacity(out.len() * list.len());
        for prefix in &out {
            for &iv in list {
                let mut p = prefix.clone();
                p.push(iv);
                next.push(p);
            }
        }
        out = next;
    }
    out.into_iter().map(Region::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_geometry::region;
    use payless_types::{Column, Domain, Schema};

    /// 1-D table over [0,100] with the paper's Figure 6 cardinalities.
    fn figure6_stats() -> TableStats {
        let schema = Schema::new("R", vec![Column::free("A", Domain::int(0, 100))]);
        let mut s = TableStats::new(QuerySpace::of(&schema), 298);
        // Teach the model the paper's segment counts:
        // [0,10) = 21, [10,20) = 28, [20,30) = 34, [30,60) = 91, [60,100] = 123.
        s.feedback(&region![(0, 9)], 21);
        s.feedback(&region![(10, 19)], 28);
        s.feedback(&region![(20, 29)], 34);
        s.feedback(&region![(30, 59)], 91);
        s.feedback(&region![(60, 100)], 123);
        s
    }

    #[test]
    fn merge_remainders_is_a_disjoint_union() {
        let a = vec![region![(0, 9)], region![(20, 29)]];
        let b = vec![region![(5, 24)], region![(40, 49)]];
        let merged = merge_remainders([a.as_slice(), b.as_slice()]);
        // Pairwise disjoint...
        for (i, x) in merged.iter().enumerate() {
            for y in merged.iter().skip(i + 1) {
                assert!(!x.overlaps(y), "{x:?} overlaps {y:?}");
            }
        }
        // ...and volume-preserving: |[0,29]| + |[40,49]| = 40 points.
        let vol: u128 = merged.iter().map(|r| r.volume()).sum();
        assert_eq!(vol, 40);
        // Deterministic in input order.
        let again = merge_remainders([a.as_slice(), b.as_slice()]);
        assert_eq!(merged, again);
    }

    #[test]
    fn merge_remainders_of_nothing_is_empty() {
        assert!(merge_remainders(std::iter::empty::<&[Region]>()).is_empty());
        let empty: Vec<Region> = Vec::new();
        assert!(merge_remainders([empty.as_slice(), empty.as_slice()]).is_empty());
    }

    #[test]
    fn figure6_prefers_overlapping_remainder() {
        // Stored: V1 = [10,20) and V2 = [30,60). Query: [0,100].
        // Best plan (the paper's Rem2): [0,30) for 1 txn + [60,100] for 2,
        // total 3 — beating the disjoint Rem1 at 4.
        let stats = figure6_stats();
        let views = [region![(10, 19)], region![(30, 59)]];
        let out = rewrite(
            &stats,
            100,
            &region![(0, 100)],
            &views,
            &RewriteConfig::default(),
        );
        assert!(!out.fully_covered);
        assert_eq!(out.est_transactions, 3.0);
        assert_eq!(out.remainders.len(), 2);
        assert!(out.remainders.contains(&region![(0, 29)]));
        assert!(out.remainders.contains(&region![(60, 100)]));
    }

    #[test]
    fn fully_covered_query_needs_no_calls() {
        let stats = figure6_stats();
        let out = rewrite(
            &stats,
            100,
            &region![(12, 18)],
            &[region![(10, 19)]],
            &RewriteConfig::default(),
        );
        assert!(out.fully_covered);
        assert!(out.remainders.is_empty());
        assert_eq!(out.est_transactions, 0.0);
    }

    #[test]
    fn no_views_yields_single_remainder() {
        let stats = figure6_stats();
        let out = rewrite(
            &stats,
            100,
            &region![(0, 100)],
            &[] as &[Region],
            &RewriteConfig::default(),
        );
        assert_eq!(out.remainders, vec![region![(0, 100)]]);
        // 298 tuples at page 100 -> 3 transactions.
        assert_eq!(out.est_transactions, 3.0);
    }

    #[test]
    fn pruning_reduces_boxes_but_preserves_cost() {
        let stats = figure6_stats();
        let views = [region![(10, 19)], region![(30, 59)]];
        let q = region![(0, 100)];
        let pruned = rewrite(&stats, 100, &q, &views, &RewriteConfig::default());
        let raw = rewrite(&stats, 100, &q, &views, &RewriteConfig::no_pruning());
        assert!(pruned.boxes_kept <= raw.boxes_kept);
        assert_eq!(pruned.boxes_enumerated, raw.boxes_enumerated);
        // Pruning may only remove dominated candidates: the chosen cover
        // cost must not degrade.
        assert!(pruned.est_transactions <= raw.est_transactions + 1e-9);
    }

    #[test]
    fn remainders_cover_all_missing_data() {
        let stats = figure6_stats();
        let views = [region![(5, 24)], region![(40, 79)]];
        let q = region![(0, 100)];
        let out = rewrite(&stats, 100, &q, &views, &RewriteConfig::default());
        // Every uncovered point must lie in some remainder.
        let mut all_views = views.to_vec();
        all_views.extend(out.remainders.iter().cloned());
        assert!(q.subtract_all(&all_views).is_empty());
    }

    #[test]
    fn cached_pieces_reproduce_from_scratch_rewrite() {
        // `rewrite` is now a thin wrapper that subtracts and delegates, so a
        // caller holding the store's cached remainder pieces must get the
        // same plan from `rewrite_cached` — including counters.
        let stats = figure6_stats();
        let views = [region![(10, 19)], region![(30, 59)]];
        let q = region![(0, 100)];
        for cfg in [
            RewriteConfig::default(),
            RewriteConfig::no_pruning(),
            RewriteConfig::exact(),
        ] {
            let scratch = rewrite(&stats, 100, &q, &views, &cfg);
            let pieces = q.subtract_all(&views);
            let cached = rewrite_cached(&stats, 100, &q, &pieces, &cfg);
            assert_eq!(cached.remainders, scratch.remainders);
            assert_eq!(cached.est_transactions, scratch.est_transactions);
            assert_eq!(cached.boxes_enumerated, scratch.boxes_enumerated);
            assert_eq!(cached.boxes_kept, scratch.boxes_kept);
            assert_eq!(cached.cover_chosen, scratch.cover_chosen);
        }
    }

    /// 2-D space with one categorical dimension (Figure 8's setting).
    fn cat_stats() -> TableStats {
        let schema = Schema::new(
            "R",
            vec![
                Column::free("A1", Domain::int(0, 89)),
                Column::free(
                    "A2",
                    Domain::categorical(["b1", "b2", "b3", "b4", "b5", "b6"]),
                ),
            ],
        );
        TableStats::new(QuerySpace::of(&schema), 5400)
    }

    #[test]
    fn categorical_remainders_are_expressible() {
        let stats = cat_stats();
        let space = stats.space().clone();
        // Query: A1 in [30,80], all categories. Views cover scattered parts.
        let q = region![(30, 80), (0, 5)];
        let views = [
            region![(30, 49), (0, 0)],
            region![(30, 59), (2, 2)],
            region![(50, 80), (4, 4)],
        ];
        let out = rewrite(&stats, 100, &q, &views, &RewriteConfig::default());
        assert!(!out.fully_covered);
        for r in &out.remainders {
            assert!(space.region_is_expressible(r), "{r} not expressible");
        }
        // Coverage check.
        let mut all = views.to_vec();
        all.extend(out.remainders.iter().cloned());
        assert!(q.subtract_all(&all).is_empty());
    }

    #[test]
    fn whole_domain_candidate_wins_when_cheap() {
        // 6 categories each missing a sliver; one whole-domain call can be
        // cheaper than 6 per-category calls when each sliver rounds up to a
        // full transaction.
        let mut stats = cat_stats();
        // Teach: the band A1 in [30,39] x each category holds 30 tuples.
        for c in 0..6 {
            stats.feedback(&region![(30, 39), (c, c)], 30);
        }
        let q = region![(30, 39), (0, 5)];
        let out = rewrite(&stats, 100, &q, &[] as &[Region], &RewriteConfig::default());
        // Whole-domain box: 180 tuples -> 2 txns; per-category: 6 x 1 = 6.
        assert_eq!(out.remainders.len(), 1);
        assert_eq!(out.remainders[0], region![(30, 39), (0, 5)]);
        assert_eq!(out.est_transactions, 2.0);
    }

    #[test]
    fn point_categorical_query_stays_point() {
        let stats = cat_stats();
        let q = region![(0, 89), (3, 3)];
        let out = rewrite(&stats, 100, &q, &[] as &[Region], &RewriteConfig::default());
        assert_eq!(out.remainders, vec![q.clone()]);
    }

    #[test]
    fn fallback_on_combinatorial_blowup_still_covers() {
        let schema = Schema::new("R", vec![Column::free("A", Domain::int(0, 1000))]);
        let mut stats = TableStats::new(QuerySpace::of(&schema), 10_000);
        // Many scattered views -> many separators.
        let mut views = Vec::new();
        for i in 0..20 {
            let lo = i * 40;
            views.push(region![(lo, lo + 9)]);
            stats.feedback(&region![(lo, lo + 9)], 100);
        }
        let q = region![(0, 1000)];
        let cfg = RewriteConfig {
            max_candidates: 10, // force fallback
            ..Default::default()
        };
        let out = rewrite(&stats, 100, &q, &views, &cfg);
        let mut all = views.clone();
        all.extend(out.remainders.iter().cloned());
        assert!(q.subtract_all(&all).is_empty());
        assert!(out.boxes_enumerated > 10);
    }

    #[test]
    fn figure7_two_dimensional_rewrite() {
        // The paper's Figure 7: Q = R(A1[30,80], A2[0,50]) with ten stored
        // views scattered around it. We reproduce the geometry (closed
        // intervals) and check that (a) the remainders plus views cover Q,
        // (b) pruning discards most of the enumeration, and (c) merged
        // boxes that overlap stored views are allowed to win.
        let schema = Schema::new(
            "R",
            vec![
                Column::free("A1", Domain::int(0, 89)),
                Column::free("A2", Domain::int(0, 59)),
            ],
        );
        let mut stats = TableStats::new(QuerySpace::of(&schema), 2000);
        let views = [
            region![(0, 19), (0, 9)],    // V1-ish
            region![(10, 29), (10, 29)], // V2-ish
            region![(30, 49), (0, 9)],   // V5-ish
            region![(30, 49), (10, 29)], // V6-ish
            region![(50, 69), (0, 9)],   // V8-ish
            region![(70, 89), (0, 4)],   // V10-ish
            region![(30, 39), (30, 49)], // V7-ish
            region![(60, 89), (50, 59)], // V4-ish
            region![(0, 9), (30, 59)],   // V3-ish
            region![(80, 89), (5, 29)],  // V9-ish
        ];
        for v in &views {
            stats.feedback(v, (v.volume() / 4) as u64);
        }
        let q = region![(30, 80), (0, 50)];
        let out = rewrite(&stats, 100, &q, &views, &RewriteConfig::default());
        assert!(!out.fully_covered);
        // Coverage.
        let mut all = views.to_vec();
        all.extend(out.remainders.iter().cloned());
        assert!(q.subtract_all(&all).is_empty());
        // Pruning bites.
        assert!(out.boxes_kept < out.boxes_enumerated);
        // The cover is no worse than fetching every elementary box alone.
        let d = payless_geometry::decompose(&q, &views);
        let naive: f64 = d
            .elementary
            .iter()
            .map(|e| est_transactions(stats.estimate(&e.region), 100))
            .sum();
        assert!(out.est_transactions <= naive + 1e-9);
    }

    #[test]
    fn cell_cap_fast_path_still_covers_and_is_expressible() {
        let schema = Schema::new(
            "R",
            vec![
                Column::free("A", Domain::int(0, 500)),
                Column::free("C", Domain::categorical(["a", "b", "c"])),
            ],
        );
        let stats = TableStats::new(QuerySpace::of(&schema), 10_000);
        let space = stats.space().clone();
        // Fragment the store with many scattered views.
        let views: Vec<Region> = (0..40)
            .map(|i| {
                let lo = i * 12;
                region![(lo, lo + 5), (i % 3, i % 3)]
            })
            .collect();
        let q = region![(0, 500), (0, 2)];
        let cfg = RewriteConfig {
            max_cells: 8, // force the fast path
            ..Default::default()
        };
        let out = rewrite(&stats, 100, &q, &views, &cfg);
        assert!(!out.fully_covered);
        // Either the raw pieces or the consolidated whole-region call.
        assert!(out.boxes_kept == out.boxes_enumerated || out.boxes_kept == 1);
        for r in &out.remainders {
            assert!(space.region_is_expressible(r), "{r} not expressible");
        }
        let mut all = views.clone();
        all.extend(out.remainders.iter().cloned());
        assert!(q.subtract_all(&all).is_empty());
    }

    #[test]
    fn est_transactions_rounding() {
        assert_eq!(est_transactions(0.0, 100), 0.0);
        assert_eq!(est_transactions(0.4, 100), 1.0);
        assert_eq!(est_transactions(100.0, 100), 1.0);
        assert_eq!(est_transactions(101.0, 100), 2.0);
        assert_eq!(est_transactions(250.0, 50), 5.0);
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        fn arb_iv() -> impl Strategy<Value = (i64, i64)> {
            (0i64..100).prop_flat_map(|lo| (Just(lo), lo..100))
        }

        proptest! {
            /// The chosen remainders plus the views always cover the query.
            #[test]
            fn remainders_always_feasible(
                views in proptest::collection::vec(arb_iv(), 0..6),
                (qlo, qhi) in arb_iv(),
            ) {
                let stats = figure6_stats();
                let views: Vec<Region> =
                    views.into_iter().map(|(l, h)| region![(l, h)]).collect();
                let q = region![(qlo, qhi)];
                let out = rewrite(&stats, 100, &q, &views, &RewriteConfig::default());
                let mut all = views.clone();
                all.extend(out.remainders.iter().cloned());
                prop_assert!(q.subtract_all(&all).is_empty());
                if out.fully_covered {
                    prop_assert!(out.remainders.is_empty());
                }
            }

            /// Pruning never makes the selected cover more expensive.
            #[test]
            fn pruning_preserves_cover_quality(
                views in proptest::collection::vec(arb_iv(), 0..5),
                (qlo, qhi) in arb_iv(),
            ) {
                let stats = figure6_stats();
                let views: Vec<Region> =
                    views.into_iter().map(|(l, h)| region![(l, h)]).collect();
                let q = region![(qlo, qhi)];
                let with = rewrite(&stats, 100, &q, &views, &RewriteConfig::default());
                let without = rewrite(&stats, 100, &q, &views, &RewriteConfig::no_pruning());
                prop_assert!(with.boxes_kept <= without.boxes_kept);
            }
        }
    }

    /// The parallel scoring fan-out must be invisible: identical remainders
    /// and bit-identical cost estimates at any thread count.
    #[test]
    fn parallel_rewrite_matches_single_threaded() {
        let schema = Schema::new(
            "R",
            vec![
                Column::free("A", Domain::int(0, 1999)),
                Column::free("B", Domain::int(0, 1999)),
            ],
        );
        let mut stats = TableStats::new(QuerySpace::of(&schema), 500_000);
        for k in 0..64i64 {
            let lo0 = (k * 53) % 1900;
            let lo1 = (k * 97) % 1900;
            stats.feedback(&region![(lo0, lo0 + 49), (lo1, lo1 + 49)], 300);
        }
        // A 6x6 grid of disjoint stored views: enough candidate boxes and
        // uncovered cells that the scoring stage actually chunks.
        let views: Vec<Region> = (0..6i64)
            .flat_map(|gx| {
                (0..6i64)
                    .map(move |gy| region![(gx * 300, gx * 300 + 99), (gy * 300, gy * 300 + 99)])
            })
            .collect();
        let q = region![(0, 1799), (0, 1799)];
        let cfg = RewriteConfig {
            max_candidates: 8192,
            ..RewriteConfig::default()
        };
        let seq = payless_par::with_max_threads(1, || rewrite(&stats, 100, &q, &views, &cfg));
        assert!(!seq.fully_covered);
        assert!(!seq.remainders.is_empty());
        for threads in [2usize, 3, 8] {
            let par =
                payless_par::with_max_threads(threads, || rewrite(&stats, 100, &q, &views, &cfg));
            assert_eq!(par.remainders, seq.remainders, "{threads} threads");
            assert_eq!(
                par.est_transactions.to_bits(),
                seq.est_transactions.to_bits(),
                "{threads} threads"
            );
            assert_eq!(par.boxes_enumerated, seq.boxes_enumerated);
            assert_eq!(par.boxes_kept, seq.boxes_kept);
            assert_eq!(par.cover_chosen, seq.cover_chosen);
        }
    }

    #[test]
    fn exact_mode_never_overlaps_stored_coverage() {
        let stats = figure6_stats();
        let views = vec![region![(20, 40)], region![(60, 70)]];
        let q = region![(0, 100)];
        let out = rewrite(&stats, 10, &q, &views, &RewriteConfig::exact());
        assert!(!out.fully_covered);
        assert!(!out.remainders.is_empty());
        for r in &out.remainders {
            for v in &views {
                assert!(
                    !r.overlaps(v),
                    "exact remainder {r:?} overlaps stored view {v:?}"
                );
            }
        }
        // Together with the stored views, the remainders still cover the
        // whole query region.
        let mut all = views.clone();
        all.extend(out.remainders.iter().cloned());
        assert!(q.subtract_all(&all).is_empty());
    }

    #[test]
    fn exact_mode_is_fully_covered_aware() {
        let stats = figure6_stats();
        let views = vec![region![(0, 100)]];
        let out = rewrite(
            &stats,
            10,
            &region![(5, 50)],
            &views,
            &RewriteConfig::exact(),
        );
        assert!(out.fully_covered);
        assert!(out.remainders.is_empty());
    }
}
