//! Row-level predicates for local filtering.
//!
//! Unlike the market interface (which only accepts equality and inclusive
//! ranges), the local engine evaluates arbitrary comparisons — the residual
//! predicates of a query after the market calls have been made.

pub use payless_types::CmpOp;
use payless_types::{Row, Value};

/// A predicate over one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `row[col] op literal`.
    Cmp {
        /// Column index.
        col: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `row[a] op row[b]` (e.g. a non-equi join residual).
    ColCmp {
        /// Left column index.
        a: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right column index.
        b: usize,
    },
}

impl Predicate {
    /// `row[col] = value`.
    pub fn eq(col: usize, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            col,
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `lo <= row[col] <= hi`, as a pair of predicates.
    pub fn between(col: usize, lo: i64, hi: i64) -> [Predicate; 2] {
        [
            Predicate::Cmp {
                col,
                op: CmpOp::Ge,
                value: Value::int(lo),
            },
            Predicate::Cmp {
                col,
                op: CmpOp::Le,
                value: Value::int(hi),
            },
        ]
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            Predicate::Cmp { col, op, value } => op.eval(row.get(*col), value),
            Predicate::ColCmp { a, op, b } => op.eval(row.get(*a), row.get(*b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_types::row;

    #[test]
    fn literal_predicate() {
        let r = row!(5, "x");
        assert!(Predicate::eq(0, 5).eval(&r));
        assert!(!Predicate::eq(0, 6).eval(&r));
        assert!(Predicate::eq(1, "x").eval(&r));
        let [ge, le] = Predicate::between(0, 0, 10);
        assert!(ge.eval(&r) && le.eval(&r));
        let [ge, _] = Predicate::between(0, 6, 10);
        assert!(!ge.eval(&r));
    }

    #[test]
    fn column_predicate() {
        let r = row!(3, 7);
        let p = Predicate::ColCmp {
            a: 0,
            op: CmpOp::Lt,
            b: 1,
        };
        assert!(p.eval(&r));
        let q = Predicate::ColCmp {
            a: 1,
            op: CmpOp::Le,
            b: 0,
        };
        assert!(!q.eval(&r));
    }

    #[test]
    fn cmp_with_mixed_value_kinds_is_total() {
        // Residual predicates may compare an Int column against a Float
        // literal via the total order; Int sorts before Float by rank.
        let r = row!(3);
        let p = Predicate::Cmp {
            col: 0,
            op: CmpOp::Lt,
            value: Value::Float(0.0),
        };
        assert!(p.eval(&r));
    }
}
