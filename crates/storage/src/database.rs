//! Local tables and the buyer-side database.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use payless_json::{FromJson, Json, ToJson};
use payless_types::{PaylessError, Result, Row, Schema};

/// A local table: schema plus rows, with set-semantics ingestion.
///
/// The execution engine pours market results into local tables as they are
/// retrieved. Remainder queries may legitimately overlap previously stored
/// data (the paper's `Q₄ᴿᵉᵐ` example deliberately re-downloads part of `V₁`
/// when that is cheaper), so ingestion deduplicates rows.
#[derive(Debug, Clone)]
pub struct LocalTable {
    /// Table schema (binding kinds are irrelevant locally).
    pub schema: Schema,
    rows: Vec<Row>,
    seen: HashSet<Row>,
}

impl LocalTable {
    /// An empty table.
    pub fn new(schema: Schema) -> Self {
        LocalTable {
            schema,
            rows: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// A table pre-populated with `rows` (deduplicated).
    pub fn with_rows(schema: Schema, rows: Vec<Row>) -> Self {
        let mut t = Self::new(schema);
        t.insert_all(rows);
        t
    }

    /// Insert one row if not already present. Returns `true` if inserted.
    pub fn insert(&mut self, row: Row) -> bool {
        debug_assert_eq!(row.arity(), self.schema.arity());
        if self.seen.insert(row.clone()) {
            self.rows.push(row);
            true
        } else {
            false
        }
    }

    /// Insert many rows; returns how many were new.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> usize {
        rows.into_iter().filter(|r| self.insert(r.clone())).count()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

// Snapshots keep schema + rows; the dedup set is rebuilt on load.
impl ToJson for LocalTable {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", self.schema.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl FromJson for LocalTable {
    fn from_json(j: &Json) -> payless_json::Result<Self> {
        Ok(LocalTable::with_rows(
            FromJson::from_json(j.get("schema")?)?,
            FromJson::from_json(j.get("rows")?)?,
        ))
    }
}

/// The buyer's local database: named tables.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: HashMap<Arc<str>, LocalTable>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn register(&mut self, table: LocalTable) {
        self.tables.insert(table.schema.table.clone(), table);
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&LocalTable> {
        self.tables
            .get(name)
            .ok_or_else(|| PaylessError::UnknownTable(name.into()))
    }

    /// Mutable lookup, creating an empty table from `schema` if absent.
    pub fn table_or_create(&mut self, schema: &Schema) -> &mut LocalTable {
        self.tables
            .entry(schema.table.clone())
            .or_insert_with(|| LocalTable::new(schema.clone()))
    }

    /// Whether the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all registered tables (sorted).
    pub fn table_names(&self) -> Vec<Arc<str>> {
        let mut names: Vec<Arc<str>> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

impl ToJson for Database {
    fn to_json(&self) -> Json {
        Json::obj([("tables", self.tables.to_json())])
    }
}

impl FromJson for Database {
    fn from_json(j: &Json) -> payless_json::Result<Self> {
        Ok(Database {
            tables: FromJson::from_json(j.get("tables")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_types::{row, Column, Domain};

    fn schema() -> Schema {
        Schema::new(
            "T",
            vec![
                Column::free("a", Domain::int(0, 100)),
                Column::free("b", Domain::categorical(["x", "y"])),
            ],
        )
    }

    #[test]
    fn insert_deduplicates() {
        let mut t = LocalTable::new(schema());
        assert!(t.insert(row!(1, "x")));
        assert!(!t.insert(row!(1, "x")));
        assert!(t.insert(row!(1, "y")));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn insert_all_counts_new_rows() {
        let mut t = LocalTable::new(schema());
        let n = t.insert_all(vec![row!(1, "x"), row!(2, "x"), row!(1, "x")]);
        assert_eq!(n, 2);
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn with_rows_dedups() {
        let t = LocalTable::with_rows(schema(), vec![row!(1, "x"), row!(1, "x")]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn database_register_and_lookup() {
        let mut db = Database::new();
        assert!(!db.contains("T"));
        db.register(LocalTable::with_rows(schema(), vec![row!(1, "x")]));
        assert!(db.contains("T"));
        assert_eq!(db.table("T").unwrap().len(), 1);
        assert!(matches!(db.table("U"), Err(PaylessError::UnknownTable(_))));
        assert_eq!(db.table_names(), vec![Arc::<str>::from("T")]);
    }

    #[test]
    fn table_or_create_creates_once() {
        let mut db = Database::new();
        db.table_or_create(&schema()).insert(row!(1, "x"));
        db.table_or_create(&schema()).insert(row!(2, "x"));
        assert_eq!(db.table("T").unwrap().len(), 2);
    }
}
