//! Grouped aggregation (`GROUP BY` + `COUNT/SUM/AVG/MIN/MAX`).

use std::collections::HashMap;

pub use payless_types::AggFunc;
use payless_types::{Row, Value};

/// One aggregate in a `SELECT` list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input column; `None` means `COUNT(*)`.
    pub col: Option<usize>,
}

impl AggSpec {
    /// `COUNT(*)`.
    pub const COUNT_STAR: AggSpec = AggSpec {
        func: AggFunc::Count,
        col: None,
    };

    /// An aggregate over a column.
    pub fn over(func: AggFunc, col: usize) -> Self {
        AggSpec {
            func,
            col: Some(col),
        }
    }
}

/// Running state for one aggregate within one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum(i64),
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, row: &Row, col: Option<usize>) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(s) => {
                let col = col.expect("SUM requires a column");
                *s += row.get(col).as_int().expect("SUM over non-integer");
            }
            AggState::Avg { sum, n } => {
                let col = col.expect("AVG requires a column");
                *sum += row.get(col).as_float().expect("AVG over non-numeric");
                *n += 1;
            }
            AggState::Min(m) => {
                let col = col.expect("MIN requires a column");
                let v = row.get(col);
                if m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            AggState::Max(m) => {
                let col = col.expect("MAX requires a column");
                let v = row.get(col);
                if m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::int(n as i64),
            AggState::Sum(s) => Value::int(s),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Float(f64::NAN)
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min(m) | AggState::Max(m) => m.expect("MIN/MAX over empty group"),
        }
    }
}

/// Group `rows` by the `group_by` columns and evaluate `aggs` per group.
///
/// Output rows are `group key columns ++ aggregate values`, in first-seen
/// group order (deterministic). With an empty `group_by`, the classic
/// single-row global aggregate is produced — unless `rows` is empty *and*
/// all aggregates are counts, in which case a single `0` row is produced to
/// match SQL semantics; an empty input with `MIN`/`MAX`/`AVG` yields no rows
/// (our dialect has no `NULL`).
pub fn aggregate(rows: &[Row], group_by: &[usize], aggs: &[AggSpec]) -> Vec<Row> {
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();

    for row in rows {
        let key: Vec<Value> = group_by.iter().map(|&c| row.get(c).clone()).collect();
        let states = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|a| AggState::new(a.func)).collect()
        });
        for (state, spec) in states.iter_mut().zip(aggs) {
            state.update(row, spec.col);
        }
    }

    if groups.is_empty() && group_by.is_empty() {
        if aggs.iter().all(|a| a.func == AggFunc::Count) {
            return vec![Row::new(vec![Value::int(0); aggs.len()])];
        }
        return Vec::new();
    }

    order
        .into_iter()
        .map(|key| {
            let states = groups.remove(&key).expect("group recorded in order");
            let mut values = key;
            values.extend(states.into_iter().map(AggState::finish));
            Row::new(values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_types::row;

    fn data() -> Vec<Row> {
        vec![
            row!("Seattle", 50),
            row!("Seattle", 60),
            row!("Boston", 30),
            row!("Seattle", 40),
            row!("Boston", 50),
        ]
    }

    #[test]
    fn grouped_avg() {
        let out = aggregate(&data(), &[0], &[AggSpec::over(AggFunc::Avg, 1)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], row!("Seattle", 50.0));
        assert_eq!(out[1], row!("Boston", 40.0));
    }

    #[test]
    fn grouped_count_sum_min_max() {
        let out = aggregate(
            &data(),
            &[0],
            &[
                AggSpec::COUNT_STAR,
                AggSpec::over(AggFunc::Sum, 1),
                AggSpec::over(AggFunc::Min, 1),
                AggSpec::over(AggFunc::Max, 1),
            ],
        );
        assert_eq!(out[0], row!("Seattle", 3, 150, 40, 60));
        assert_eq!(out[1], row!("Boston", 2, 80, 30, 50));
    }

    #[test]
    fn global_aggregate_single_row() {
        let out = aggregate(&data(), &[], &[AggSpec::COUNT_STAR]);
        assert_eq!(out, vec![row!(5)]);
    }

    #[test]
    fn global_count_of_empty_is_zero() {
        let out = aggregate(&[], &[], &[AggSpec::COUNT_STAR]);
        assert_eq!(out, vec![row!(0)]);
    }

    #[test]
    fn global_min_of_empty_is_no_rows() {
        let out = aggregate(&[], &[], &[AggSpec::over(AggFunc::Min, 0)]);
        assert!(out.is_empty());
    }

    #[test]
    fn grouped_on_empty_input_is_empty() {
        let out = aggregate(&[], &[0], &[AggSpec::COUNT_STAR]);
        assert!(out.is_empty());
    }

    #[test]
    fn group_order_is_first_seen() {
        let out = aggregate(&data(), &[0], &[AggSpec::COUNT_STAR]);
        assert_eq!(out[0].get(0), &Value::str("Seattle"));
        assert_eq!(out[1].get(0), &Value::str("Boston"));
    }

    #[test]
    fn count_column_counts_rows() {
        // No NULLs in the dialect, so COUNT(col) == COUNT(*).
        let out = aggregate(&data(), &[], &[AggSpec::over(AggFunc::Count, 1)]);
        assert_eq!(out, vec![row!(5)]);
    }

    #[test]
    fn multi_column_group_key() {
        let rows = vec![row!(1, "a", 10), row!(1, "b", 20), row!(1, "a", 30)];
        let out = aggregate(&rows, &[0, 1], &[AggSpec::over(AggFunc::Sum, 2)]);
        assert_eq!(out, vec![row!(1, "a", 40), row!(1, "b", 20)]);
    }
}
