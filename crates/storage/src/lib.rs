//! The buyer-side local DBMS.
//!
//! PayLess "is designed to be lightweight and offloads most query processing
//! to a DBMS query engine" (Section 3). This crate is that engine: a small
//! in-memory relational executor with scans, filters, hash equi-joins,
//! Cartesian products, sorting, deduplication and grouped aggregation.
//!
//! Two users:
//!
//! * the execution engine joins market-retrieved data with local tables here
//!   (joins can never be pushed to the market — Section 1: "joins cannot be
//!   done at the data market");
//! * the test suite uses it as the *oracle*: a query answered by running the
//!   whole PayLess pipeline must equal the same query evaluated directly on
//!   the raw data with this engine.

#![warn(missing_docs)]

pub mod aggregate;
pub mod database;
pub mod ops;
pub mod predicate;

pub use aggregate::{aggregate, AggFunc, AggSpec};
pub use database::{Database, LocalTable};
pub use ops::{cross_join, distinct, filter, hash_join, project, sort_by};
pub use predicate::{CmpOp, Predicate};
