//! Relational operators (materialized, vector-in / vector-out).
//!
//! The engine is deliberately simple: PayLess's contribution is *what* to
//! retrieve from the market, not how fast the local join runs. Operators are
//! nonetheless hash-based so that the TPC-H-scale experiments stay
//! comfortably in-memory.

use std::collections::HashMap;

use payless_types::{Row, Value};

use crate::predicate::Predicate;

/// Keep rows satisfying every predicate (conjunction).
pub fn filter(rows: &[Row], predicates: &[Predicate]) -> Vec<Row> {
    rows.iter()
        .filter(|r| predicates.iter().all(|p| p.eval(r)))
        .cloned()
        .collect()
}

/// Project each row onto `indices` (in order, duplicates allowed).
pub fn project(rows: &[Row], indices: &[usize]) -> Vec<Row> {
    rows.iter().map(|r| r.project(indices)).collect()
}

/// Hash equi-join: rows `l ⋈ r` on `l[left_keys[i]] == r[right_keys[i]]`,
/// output rows are `l` concatenated with `r`.
pub fn hash_join(
    left: &[Row],
    right: &[Row],
    left_keys: &[usize],
    right_keys: &[usize],
) -> Vec<Row> {
    assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
    if left_keys.is_empty() {
        return cross_join(left, right);
    }
    // Build on the smaller side.
    let (build, probe, build_keys, probe_keys, build_is_left) = if left.len() <= right.len() {
        (left, right, left_keys, right_keys, true)
    } else {
        (right, left, right_keys, left_keys, false)
    };
    let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(build.len());
    for row in build {
        let key: Vec<Value> = build_keys.iter().map(|&k| row.get(k).clone()).collect();
        table.entry(key).or_default().push(row);
    }
    let mut out = Vec::new();
    for row in probe {
        let key: Vec<Value> = probe_keys.iter().map(|&k| row.get(k).clone()).collect();
        if let Some(matches) = table.get(&key) {
            for b in matches {
                if build_is_left {
                    out.push(b.concat(row));
                } else {
                    out.push(row.concat(b));
                }
            }
        }
    }
    out
}

/// Cartesian product (used for Theorem 3's disjoint sub-plans; never sent to
/// the market, so it costs no transactions — only local work).
pub fn cross_join(left: &[Row], right: &[Row]) -> Vec<Row> {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for l in left {
        for r in right {
            out.push(l.concat(r));
        }
    }
    out
}

/// Remove duplicate rows, keeping first occurrences in order.
pub fn distinct(rows: &[Row]) -> Vec<Row> {
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    rows.iter()
        .filter(|r| seen.insert((*r).clone()))
        .cloned()
        .collect()
}

/// Stable sort by the given key columns (ascending, [`Value`] total order).
pub fn sort_by(rows: &mut [Row], keys: &[usize]) {
    rows.sort_by(|a, b| {
        for &k in keys {
            let ord = a.get(k).cmp(b.get(k));
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use payless_types::row;

    #[test]
    fn filter_conjunction() {
        let rows = vec![row!(1, 10), row!(2, 20), row!(3, 30)];
        let got = filter(
            &rows,
            &[
                Predicate::Cmp {
                    col: 0,
                    op: CmpOp::Ge,
                    value: Value::int(2),
                },
                Predicate::Cmp {
                    col: 1,
                    op: CmpOp::Lt,
                    value: Value::int(30),
                },
            ],
        );
        assert_eq!(got, vec![row!(2, 20)]);
    }

    #[test]
    fn filter_no_predicates_keeps_all() {
        let rows = vec![row!(1), row!(2)];
        assert_eq!(filter(&rows, &[]).len(), 2);
    }

    #[test]
    fn project_columns() {
        let rows = vec![row!(1, "a", 10)];
        assert_eq!(project(&rows, &[2, 0]), vec![row!(10, 1)]);
    }

    #[test]
    fn hash_join_single_key() {
        let stations = vec![row!(1, "Seattle"), row!(2, "Boston")];
        let weather = vec![row!(1, 50), row!(1, 55), row!(2, 40), row!(3, 70)];
        let mut got = hash_join(&stations, &weather, &[0], &[0]);
        sort_by(&mut got, &[0, 3]);
        assert_eq!(
            got,
            vec![
                row!(1, "Seattle", 1, 50),
                row!(1, "Seattle", 1, 55),
                row!(2, "Boston", 2, 40),
            ]
        );
    }

    #[test]
    fn hash_join_multi_key_and_side_symmetry() {
        let l = vec![row!(1, "x", 100), row!(1, "y", 200)];
        let r = vec![row!(1, "x", 7)];
        let a = hash_join(&l, &r, &[0, 1], &[0, 1]);
        assert_eq!(a, vec![row!(1, "x", 100, 1, "x", 7)]);
        // Make the right side larger to exercise the other build path; the
        // output column order must stay left-then-right.
        let r_big = vec![row!(1, "x", 7), row!(2, "z", 8), row!(3, "w", 9)];
        let b = hash_join(&l, &r_big, &[0, 1], &[0, 1]);
        assert_eq!(b, vec![row!(1, "x", 100, 1, "x", 7)]);
    }

    #[test]
    fn hash_join_empty_keys_is_cross() {
        let l = vec![row!(1), row!(2)];
        let r = vec![row!("a")];
        let got = hash_join(&l, &r, &[], &[]);
        assert_eq!(got, vec![row!(1, "a"), row!(2, "a")]);
    }

    #[test]
    fn cross_join_sizes() {
        let l = vec![row!(1), row!(2)];
        let r = vec![row!("a"), row!("b"), row!("c")];
        assert_eq!(cross_join(&l, &r).len(), 6);
        assert!(cross_join(&l, &[]).is_empty());
    }

    #[test]
    fn distinct_keeps_first() {
        let rows = vec![row!(1), row!(2), row!(1), row!(3), row!(2)];
        assert_eq!(distinct(&rows), vec![row!(1), row!(2), row!(3)]);
    }

    #[test]
    fn sort_is_stable_on_equal_keys() {
        let mut rows = vec![row!(2, "b"), row!(1, "z"), row!(2, "a"), row!(1, "a")];
        sort_by(&mut rows, &[0]);
        assert_eq!(
            rows,
            vec![row!(1, "z"), row!(1, "a"), row!(2, "b"), row!(2, "a")]
        );
    }
}
