//! Std-only data parallelism for the PayLess hot paths.
//!
//! The offline build has no rayon, so this crate provides the one primitive
//! the SQR scorer and the plan-search DP need: an **order-preserving**
//! chunked map over a slice, run on `std::thread::scope` workers.
//!
//! Determinism is non-negotiable — a parallel run must produce *byte
//! identical* plans and remainder queries to a single-threaded one — so the
//! design rules are:
//!
//! * results come back positionally (`out[i] = f(i, &items[i])`), never in
//!   thread-arrival order;
//! * callers do all tie-breaking themselves on the positional results (the
//!   DP reduces in ascending candidate order, exactly as the sequential
//!   code did);
//! * the worker count changes *wall time only*, never values.
//!
//! Thread count resolution, in priority order:
//! 1. a thread-local override set by [`with_max_threads`] (used by the
//!    determinism tests and the benchmark harness),
//! 2. a process-wide override set by [`set_max_threads`],
//! 3. the `PAYLESS_THREADS` environment variable (read once),
//! 4. [`std::thread::available_parallelism`].

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide override: 0 = unset.
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `PAYLESS_THREADS`, read once per process: 0 = unset/invalid.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread override; beats everything else. `0` = unset.
    static LOCAL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("PAYLESS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// The number of worker threads parallel sections may use, resolved as
/// documented on the crate. Always at least 1.
pub fn max_threads() -> usize {
    let local = LOCAL_OVERRIDE.with(Cell::get);
    if local > 0 {
        return local;
    }
    let global = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    let env = env_threads();
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Set (or with `None` clear) the process-wide thread cap. `Some(0)` is
/// treated as `Some(1)`.
pub fn set_max_threads(n: Option<usize>) {
    GLOBAL_OVERRIDE.store(n.map(|v| v.max(1)).unwrap_or(0), Ordering::Relaxed);
}

/// Run `f` with the *calling thread's* cap set to `n` (restored afterwards).
/// Parallel sections started by `f` see the cap; worker threads themselves
/// always run their closures inline. This is how the determinism tests pin
/// one side of a comparison to a single thread without racing other tests.
pub fn with_max_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    LOCAL_OVERRIDE.with(|cell| {
        let prev = cell.replace(n.max(1));
        let out = f();
        cell.set(prev);
        out
    })
}

/// The number of worker threads [`par_map`]/[`par_map_range`] will use for
/// `n` items under the current thread cap: 1 when the input is too small to
/// chunk, else `min(max_threads(), ceil(n / min_chunk))`. Exposed so callers
/// can report fan-out width to telemetry without duplicating the policy.
pub fn planned_workers(n: usize, min_chunk: usize) -> usize {
    let threads = max_threads();
    let min_chunk = min_chunk.max(1);
    if threads <= 1 || n < min_chunk * 2 {
        1
    } else {
        threads.min(n.div_ceil(min_chunk))
    }
}

/// Order-preserving parallel map: returns `[f(0, &items[0]), f(1, &items[1]),
/// …]` exactly as a sequential loop would, chunking the slice across scoped
/// worker threads.
///
/// `min_chunk` is the smallest slice a thread is worth spawning for; inputs
/// shorter than `2 * min_chunk` (or a resolved thread count of 1) run inline
/// on the caller. `f` must be pure for determinism to hold — it may run on
/// any thread, in any chunk order.
pub fn par_map<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = planned_workers(n, min_chunk);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = (lo + chunk).min(n);
                let slice = &items[lo..hi];
                s.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(off, t)| f(lo + off, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// [`par_map`] over an index range: `[f(0), f(1), …, f(n-1)]`, positionally.
pub fn par_map_range<R, F>(n: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = planned_workers(n, min_chunk);
    if workers <= 1 {
        return (0..n).map(&f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = (lo + chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 2 + i as u64)
            .collect();
        let par = par_map(&items, 8, |i, v| v * 2 + i as u64);
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_range_matches_sequential() {
        let seq: Vec<usize> = (0..503).map(|i| i * i).collect();
        assert_eq!(par_map_range(503, 4, |i| i * i), seq);
    }

    #[test]
    fn small_inputs_run_inline() {
        // Too small to chunk: still correct.
        assert_eq!(par_map(&[1, 2, 3], 100, |_, v| v + 1), vec![2, 3, 4]);
        assert_eq!(par_map::<u8, u8, _>(&[], 1, |_, v| *v), Vec::<u8>::new());
        assert_eq!(par_map_range(0, 1, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn with_max_threads_scopes_the_override() {
        with_max_threads(1, || {
            assert_eq!(max_threads(), 1);
            let out = par_map_range(100, 1, |i| i);
            assert_eq!(out, (0..100).collect::<Vec<_>>());
        });
        assert_ne!(LOCAL_OVERRIDE.with(Cell::get), 1);
    }

    #[test]
    fn global_override_is_respected() {
        set_max_threads(Some(3));
        assert_eq!(max_threads(), 3);
        // Thread-local beats global.
        with_max_threads(2, || assert_eq!(max_threads(), 2));
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let items: Vec<i64> = (0..777).map(|i| i * 31 % 97).collect();
        let one = with_max_threads(1, || par_map(&items, 4, |i, v| v ^ (i as i64)));
        for t in [2, 3, 8] {
            let many = with_max_threads(t, || par_map(&items, 4, |i, v| v ^ (i as i64)));
            assert_eq!(one, many, "thread count {t} changed results");
        }
    }
}
