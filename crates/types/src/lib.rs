//! Fundamental types shared by every PayLess crate.
//!
//! This crate defines the vocabulary of the system described in *Query
//! Optimization over Cloud Data Market* (EDBT 2015):
//!
//! * [`Value`] — a single attribute value (64-bit integer or interned string);
//! * [`Domain`] — the advertised domain of an attribute (the only statistic a
//!   data market is guaranteed to publish besides table cardinality);
//! * [`BindingKind`] / [`BindingPattern`] — the `R(A1ᵇ, A2ᶠ)` access-pattern
//!   notation of the paper: *bound* attributes must be given a value or range
//!   in every RESTful call, *free* attributes may be constrained, and
//!   attributes absent from the pattern are output-only;
//! * [`Schema`] and [`Row`] — relational plumbing;
//! * [`Constraint`] — the restricted predicate language the market accepts
//!   (a single value, or an inclusive integer range);
//! * [`pricing`] — the transaction arithmetic of Eq. (1) in the paper.

#![warn(missing_docs)]

pub mod agg;
pub mod cmp;
pub mod constraint;
pub mod domain;
pub mod error;
mod json;
pub mod pricing;
pub mod row;
pub mod schema;
pub mod value;

pub use agg::AggFunc;
pub use cmp::CmpOp;
pub use constraint::{AttrConstraint, Constraint};
pub use domain::Domain;
pub use error::{PaylessError, Result};
pub use pricing::{transactions, PricePerTransaction, Transactions};
pub use row::Row;
pub use schema::{BindingKind, BindingPattern, Column, Schema};
pub use value::Value;
