//! The crate-spanning error type.

use std::fmt;
use std::sync::Arc;

/// Errors surfaced by PayLess components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaylessError {
    /// Referenced table is not registered in the catalog / market.
    UnknownTable(Arc<str>),
    /// Referenced column does not exist on the table.
    UnknownColumn {
        /// The table searched.
        table: Arc<str>,
        /// The missing column.
        column: Arc<str>,
    },
    /// A RESTful request violated the table's binding pattern (e.g. missing a
    /// mandatory bound attribute, or constraining an output-only attribute).
    BindingViolation {
        /// The table whose pattern was violated.
        table: Arc<str>,
        /// Human-readable explanation.
        detail: String,
    },
    /// A constraint's type does not match the attribute's domain.
    TypeMismatch {
        /// The table.
        table: Arc<str>,
        /// The mistyped column.
        column: Arc<str>,
    },
    /// SQL text failed to lex or parse.
    Parse {
        /// Byte offset of the error in the source text.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// The query is syntactically valid but not supported / not well formed
    /// (e.g. a parameter left unbound, a disjunction the planner cannot
    /// decompose).
    Unsupported(String),
    /// The optimizer could not produce a feasible plan (e.g. a bound attribute
    /// that no join or literal can ever supply).
    Infeasible(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
    /// Transient seller-side failure (e.g. a 503): the call never executed
    /// and **nothing was billed**. Safe to retry.
    Unavailable {
        /// The table the failed call targeted.
        table: Arc<str>,
        /// Human-readable explanation.
        detail: String,
    },
    /// A market call was billed but its payload was unusable — a corrupt
    /// wire frame, or a response carrying fewer tuples than the seller
    /// charged for. The money is spent; retrying buys the data again.
    BilledFailure {
        /// The table the failed call targeted.
        table: Arc<str>,
        /// Pages (transactions) the seller charged for the failed call.
        pages: u64,
        /// Records the seller claims it served.
        records: u64,
        /// Human-readable explanation.
        detail: String,
    },
    /// The resilient call layer gave up: a per-query retry or wasted-spend
    /// budget was exhausted before a clean delivery.
    BudgetExhausted {
        /// The table whose call exhausted the budget.
        table: Arc<str>,
        /// Retries consumed by the query so far.
        retries: u64,
        /// Pages billed without a usable delivery so far.
        wasted_pages: u64,
        /// The last underlying failure.
        detail: String,
    },
}

impl PaylessError {
    /// Is this a failure the resilient call layer may retry? Covers both
    /// unbilled transient errors and billed-but-undelivered calls; every
    /// other variant is a caller bug or a terminal condition.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            PaylessError::Unavailable { .. } | PaylessError::BilledFailure { .. }
        )
    }
}

impl fmt::Display for PaylessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaylessError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            PaylessError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` on table `{table}`")
            }
            PaylessError::BindingViolation { table, detail } => {
                write!(f, "binding pattern violation on `{table}`: {detail}")
            }
            PaylessError::TypeMismatch { table, column } => {
                write!(f, "constraint type mismatch on `{table}.{column}`")
            }
            PaylessError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            PaylessError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            PaylessError::Infeasible(msg) => write!(f, "no feasible plan: {msg}"),
            PaylessError::Internal(msg) => write!(f, "internal error: {msg}"),
            PaylessError::Unavailable { table, detail } => {
                write!(
                    f,
                    "`{table}` temporarily unavailable (nothing billed): {detail}"
                )
            }
            PaylessError::BilledFailure {
                table,
                pages,
                records,
                detail,
            } => write!(
                f,
                "call to `{table}` billed {pages} pages ({records} records) but failed: {detail}"
            ),
            PaylessError::BudgetExhausted {
                table,
                retries,
                wasted_pages,
                detail,
            } => write!(
                f,
                "budget exhausted on `{table}` after {retries} retries \
                 ({wasted_pages} wasted pages): {detail}"
            ),
        }
    }
}

impl std::error::Error for PaylessError {}

/// Crate-standard result alias.
pub type Result<T> = std::result::Result<T, PaylessError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            PaylessError::UnknownTable("Weather".into()).to_string(),
            "unknown table `Weather`"
        );
        assert_eq!(
            PaylessError::UnknownColumn {
                table: "T".into(),
                column: "c".into()
            }
            .to_string(),
            "unknown column `c` on table `T`"
        );
        let e = PaylessError::Parse {
            position: 7,
            message: "expected FROM".into(),
        };
        assert_eq!(e.to_string(), "parse error at byte 7: expected FROM");
    }

    #[test]
    fn fault_variants_display_and_classify() {
        let unavailable = PaylessError::Unavailable {
            table: "Weather".into(),
            detail: "503".into(),
        };
        assert_eq!(
            unavailable.to_string(),
            "`Weather` temporarily unavailable (nothing billed): 503"
        );
        let billed = PaylessError::BilledFailure {
            table: "Weather".into(),
            pages: 3,
            records: 250,
            detail: "corrupt frame".into(),
        };
        assert_eq!(
            billed.to_string(),
            "call to `Weather` billed 3 pages (250 records) but failed: corrupt frame"
        );
        let budget = PaylessError::BudgetExhausted {
            table: "Weather".into(),
            retries: 4,
            wasted_pages: 9,
            detail: "corrupt frame".into(),
        };
        assert!(budget.to_string().contains("after 4 retries"));
        assert!(budget.to_string().contains("9 wasted pages"));

        assert!(unavailable.is_transient());
        assert!(billed.is_transient());
        assert!(!budget.is_transient());
        assert!(!PaylessError::UnknownTable("T".into()).is_transient());
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PaylessError::Unsupported("x".into()));
    }
}
