//! The crate-spanning error type.

use std::fmt;
use std::sync::Arc;

/// Errors surfaced by PayLess components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaylessError {
    /// Referenced table is not registered in the catalog / market.
    UnknownTable(Arc<str>),
    /// Referenced column does not exist on the table.
    UnknownColumn {
        /// The table searched.
        table: Arc<str>,
        /// The missing column.
        column: Arc<str>,
    },
    /// A RESTful request violated the table's binding pattern (e.g. missing a
    /// mandatory bound attribute, or constraining an output-only attribute).
    BindingViolation {
        /// The table whose pattern was violated.
        table: Arc<str>,
        /// Human-readable explanation.
        detail: String,
    },
    /// A constraint's type does not match the attribute's domain.
    TypeMismatch {
        /// The table.
        table: Arc<str>,
        /// The mistyped column.
        column: Arc<str>,
    },
    /// SQL text failed to lex or parse.
    Parse {
        /// Byte offset of the error in the source text.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// The query is syntactically valid but not supported / not well formed
    /// (e.g. a parameter left unbound, a disjunction the planner cannot
    /// decompose).
    Unsupported(String),
    /// The optimizer could not produce a feasible plan (e.g. a bound attribute
    /// that no join or literal can ever supply).
    Infeasible(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl fmt::Display for PaylessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaylessError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            PaylessError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` on table `{table}`")
            }
            PaylessError::BindingViolation { table, detail } => {
                write!(f, "binding pattern violation on `{table}`: {detail}")
            }
            PaylessError::TypeMismatch { table, column } => {
                write!(f, "constraint type mismatch on `{table}.{column}`")
            }
            PaylessError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            PaylessError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            PaylessError::Infeasible(msg) => write!(f, "no feasible plan: {msg}"),
            PaylessError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for PaylessError {}

/// Crate-standard result alias.
pub type Result<T> = std::result::Result<T, PaylessError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            PaylessError::UnknownTable("Weather".into()).to_string(),
            "unknown table `Weather`"
        );
        assert_eq!(
            PaylessError::UnknownColumn {
                table: "T".into(),
                column: "c".into()
            }
            .to_string(),
            "unknown column `c` on table `T`"
        );
        let e = PaylessError::Parse {
            position: 7,
            message: "expected FROM".into(),
        };
        assert_eq!(e.to_string(), "parse error at byte 7: expected FROM");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PaylessError::Unsupported("x".into()));
    }
}
