//! The restricted predicate language accepted by a data market.
//!
//! Per Section 2.1: "For numeric attributes, the input can be bound with a
//! single value or a range"; categorical attributes can only be bound with a
//! single value. Disjunctions are *not* supported by the access interface —
//! a query with `Country = 'Canada' OR Country = 'Germany'` must be
//! decomposed into two calls (Section 1).

use std::fmt;
use std::sync::Arc;

use crate::domain::Domain;
use crate::value::Value;

/// A constraint on a single attribute, expressible at the market interface.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// `A = v` for a categorical (or integer) attribute.
    Eq(Value),
    /// `lo <= A <= hi` for an integer attribute (inclusive bounds).
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

impl Constraint {
    /// An equality constraint.
    pub fn eq(v: impl Into<Value>) -> Self {
        Constraint::Eq(v.into())
    }

    /// An inclusive integer-range constraint. Panics if `lo > hi`.
    pub fn range(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty range constraint [{lo}, {hi}]");
        Constraint::IntRange { lo, hi }
    }

    /// Whether `value` satisfies the constraint.
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            Constraint::Eq(v) => v == value,
            Constraint::IntRange { lo, hi } => match value {
                Value::Int(x) => lo <= x && x <= hi,
                _ => false,
            },
        }
    }

    /// Number of distinct domain values the constraint admits, given the
    /// attribute's domain (used by the uniformity estimator).
    pub fn selectivity_width(&self, domain: &Domain) -> u64 {
        match (self, domain) {
            (Constraint::Eq(_), _) => 1,
            (Constraint::IntRange { lo, hi }, Domain::Int { lo: dlo, hi: dhi }) => {
                let lo = (*lo).max(*dlo);
                let hi = (*hi).min(*dhi);
                if lo > hi {
                    0
                } else {
                    (hi - lo) as u64 + 1
                }
            }
            // A range constraint over a categorical domain admits nothing; a
            // well-typed query never produces this.
            (Constraint::IntRange { .. }, Domain::Categorical(_)) => 0,
        }
    }

    /// `true` when the constraint is type-compatible with the domain.
    pub fn compatible_with(&self, domain: &Domain) -> bool {
        matches!(
            (self, domain),
            (Constraint::Eq(Value::Int(_)), Domain::Int { .. })
                | (Constraint::Eq(Value::Str(_)), Domain::Categorical(_))
                | (Constraint::IntRange { .. }, Domain::Int { .. })
        )
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Eq(v) => write!(f, "= {v}"),
            Constraint::IntRange { lo, hi } => write!(f, "in [{lo}, {hi}]"),
        }
    }
}

/// A named constraint: attribute name plus [`Constraint`].
///
/// This is the unit a RESTful request carries for each constrained attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrConstraint {
    /// Attribute (column) name.
    pub attr: Arc<str>,
    /// The constraint itself.
    pub constraint: Constraint,
}

impl AttrConstraint {
    /// Construct from an attribute name and a constraint.
    pub fn new(attr: impl Into<Arc<str>>, constraint: Constraint) -> Self {
        AttrConstraint {
            attr: attr.into(),
            constraint,
        }
    }
}

impl fmt::Display for AttrConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.attr, self.constraint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_matches_same_value_only() {
        let c = Constraint::eq("US");
        assert!(c.matches(&Value::str("US")));
        assert!(!c.matches(&Value::str("CA")));
        assert!(!c.matches(&Value::int(0)));
    }

    #[test]
    fn range_matches_inclusive_bounds() {
        let c = Constraint::range(10, 20);
        assert!(c.matches(&Value::int(10)));
        assert!(c.matches(&Value::int(20)));
        assert!(!c.matches(&Value::int(9)));
        assert!(!c.matches(&Value::int(21)));
        assert!(!c.matches(&Value::str("15")));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        let _ = Constraint::range(5, 4);
    }

    #[test]
    fn selectivity_width_clips_to_domain() {
        let d = Domain::int(0, 99);
        assert_eq!(Constraint::range(10, 19).selectivity_width(&d), 10);
        assert_eq!(Constraint::range(90, 200).selectivity_width(&d), 10);
        assert_eq!(Constraint::range(200, 300).selectivity_width(&d), 0);
        assert_eq!(Constraint::eq(5).selectivity_width(&d), 1);
    }

    #[test]
    fn compatibility() {
        let ints = Domain::int(0, 9);
        let cats = Domain::categorical(["a", "b"]);
        assert!(Constraint::eq(3).compatible_with(&ints));
        assert!(Constraint::range(0, 3).compatible_with(&ints));
        assert!(Constraint::eq("a").compatible_with(&cats));
        assert!(!Constraint::eq("a").compatible_with(&ints));
        assert!(!Constraint::range(0, 3).compatible_with(&cats));
        assert!(!Constraint::eq(3).compatible_with(&cats));
    }

    #[test]
    fn display_renders() {
        assert_eq!(Constraint::eq("US").to_string(), "= 'US'");
        assert_eq!(Constraint::range(1, 2).to_string(), "in [1, 2]");
        let ac = AttrConstraint::new("Country", Constraint::eq("US"));
        assert_eq!(ac.to_string(), "Country = 'US'");
    }
}
