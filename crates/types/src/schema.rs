//! Table schemas and binding patterns.
//!
//! The paper writes `Rᵅ(A1, A2, A3)` with `α = R(A1ᵇ, A2ᶠ)` to mean that any
//! RESTful call to `R` **must** bind `A1`, **may** bind `A2`, and can never
//! constrain `A3` (it is output-only). [`BindingKind`] captures the three
//! roles and [`Schema`] carries one per column.

use std::fmt;
use std::sync::Arc;

use crate::domain::Domain;

/// The role of an attribute in a table's access (binding) pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingKind {
    /// `Aᵇ` — every RESTful call must supply a value (or range) for this
    /// attribute.
    Bound,
    /// `Aᶠ` — a call may optionally constrain this attribute.
    Free,
    /// The attribute does not appear in the binding pattern; it can only be
    /// returned, never constrained at the market.
    Output,
}

impl BindingKind {
    /// `true` when the market accepts a constraint on this attribute.
    pub fn constrainable(self) -> bool {
        !matches!(self, BindingKind::Output)
    }

    /// `true` when every call must constrain this attribute.
    pub fn mandatory(self) -> bool {
        matches!(self, BindingKind::Bound)
    }
}

impl fmt::Display for BindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingKind::Bound => write!(f, "b"),
            BindingKind::Free => write!(f, "f"),
            BindingKind::Output => write!(f, "o"),
        }
    }
}

/// A column: name, domain, and binding role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: Arc<str>,
    /// Advertised domain (the market always publishes this basic statistic).
    pub domain: Domain,
    /// Role in the access pattern.
    pub binding: BindingKind,
}

impl Column {
    /// A convenience constructor.
    pub fn new(name: impl Into<Arc<str>>, domain: Domain, binding: BindingKind) -> Self {
        Column {
            name: name.into(),
            domain,
            binding,
        }
    }

    /// A free column (may be constrained).
    pub fn free(name: impl Into<Arc<str>>, domain: Domain) -> Self {
        Self::new(name, domain, BindingKind::Free)
    }

    /// A bound column (must be constrained in every call).
    pub fn bound(name: impl Into<Arc<str>>, domain: Domain) -> Self {
        Self::new(name, domain, BindingKind::Bound)
    }

    /// An output-only column.
    pub fn output(name: impl Into<Arc<str>>, domain: Domain) -> Self {
        Self::new(name, domain, BindingKind::Output)
    }
}

/// A table schema: table name plus ordered columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Table name (unique within a catalog).
    pub table: Arc<str>,
    /// Ordered columns.
    pub columns: Arc<[Column]>,
}

impl Schema {
    /// Build a schema. Panics on duplicate column names (a schema bug).
    pub fn new(table: impl Into<Arc<str>>, columns: Vec<Column>) -> Self {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert!(
                    a.name != b.name,
                    "duplicate column `{}` in table schema",
                    a.name
                );
            }
        }
        Schema {
            table: table.into(),
            columns: columns.into(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| &*c.name == name)
    }

    /// The named column, if present.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| &*c.name == name)
    }

    /// Iterate over the indices of attributes that must be bound in every call.
    pub fn mandatory_bindings(&self) -> impl Iterator<Item = usize> + '_ {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.binding.mandatory())
            .map(|(i, _)| i)
    }

    /// `true` if the table can be downloaded wholesale with a single
    /// unconstrained call — i.e. no attribute is mandatory-bound.
    pub fn downloadable(&self) -> bool {
        self.mandatory_bindings().next().is_none()
    }

    /// Render the binding pattern in the paper's `R(Aᵇ, Aᶠ)` notation.
    pub fn binding_pattern(&self) -> BindingPattern<'_> {
        BindingPattern(self)
    }
}

/// Display adapter rendering a schema's access pattern in paper notation.
pub struct BindingPattern<'a>(&'a Schema);

impl fmt::Display for BindingPattern<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.0.table)?;
        let mut first = true;
        for c in self.0.columns.iter() {
            if c.binding == BindingKind::Output {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}^{}", c.name, c.binding)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station_schema() -> Schema {
        Schema::new(
            "Station",
            vec![
                Column::free("Country", Domain::categorical(["US", "CA"])),
                Column::free("StationID", Domain::int(1, 4000)),
                Column::free("City", Domain::categorical(["Seattle", "Boston"])),
                Column::output("State", Domain::categorical(["WA", "MA"])),
            ],
        )
    }

    #[test]
    fn index_and_lookup() {
        let s = station_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("City"), Some(2));
        assert_eq!(s.index_of("Nope"), None);
        assert_eq!(s.column("Country").unwrap().binding, BindingKind::Free);
    }

    #[test]
    fn downloadable_iff_no_mandatory_binding() {
        let s = station_schema();
        assert!(s.downloadable());
        let t = Schema::new(
            "T",
            vec![
                Column::bound("w", Domain::int(0, 9)),
                Column::free("z", Domain::int(0, 9)),
            ],
        );
        assert!(!t.downloadable());
        assert_eq!(t.mandatory_bindings().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn binding_kind_predicates() {
        assert!(BindingKind::Bound.constrainable());
        assert!(BindingKind::Bound.mandatory());
        assert!(BindingKind::Free.constrainable());
        assert!(!BindingKind::Free.mandatory());
        assert!(!BindingKind::Output.constrainable());
        assert!(!BindingKind::Output.mandatory());
    }

    #[test]
    fn pattern_display_skips_output_columns() {
        let s = station_schema();
        assert_eq!(
            s.binding_pattern().to_string(),
            "Station(Country^f, StationID^f, City^f)"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        let _ = Schema::new(
            "T",
            vec![
                Column::free("a", Domain::int(0, 1)),
                Column::free("a", Domain::int(0, 1)),
            ],
        );
    }
}
