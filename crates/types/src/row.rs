//! Rows (tuples) flowing through the engine.

use std::sync::Arc;

use crate::value::Value;

/// An immutable tuple.
///
/// Rows are shared freely between the market simulator, the semantic store
/// (which retains every retrieved result, per Section 3 of the paper: "we
/// deliberately use cheap storage space to store all intermediate results")
/// and the execution engine; `Arc<[Value]>` makes those shares O(1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row(Arc<[Value]>);

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values.into())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at `idx`. Panics if out of bounds (an engine bug).
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// A new row keeping only the attributes at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate two rows (used by join operators).
    pub fn concat(&self, other: &Row) -> Row {
        Row(self.0.iter().chain(other.0.iter()).cloned().collect())
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

/// Convenience macro for building rows in tests and examples.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let r = row!(1, "x", 3);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(0), &Value::int(1));
        assert_eq!(r[1], Value::str("x"));
        assert_eq!(r.values().len(), 3);
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let r = row!(10, 20, 30);
        let p = r.project(&[2, 0, 0]);
        assert_eq!(p, row!(30, 10, 10));
    }

    #[test]
    fn concat_appends() {
        let a = row!(1, 2);
        let b = row!("x");
        assert_eq!(a.concat(&b), row!(1, 2, "x"));
    }

    #[test]
    fn rows_hash_and_compare_structurally() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(row!(1, "a"));
        assert!(set.contains(&row!(1, "a")));
        assert!(!set.contains(&row!(1, "b")));
        assert!(row!(1, 2) < row!(1, 3));
    }
}
