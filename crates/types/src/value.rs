//! The [`Value`] type: a single attribute value.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// A single attribute value.
///
/// PayLess models the two attribute kinds that appear in data-market access
/// interfaces: 64-bit integers (dates are encoded as `YYYYMMDD` integers, as
/// in the paper's Worldwide Historical Weather examples) and strings.
/// Strings are reference counted so that cloning rows during joins and
/// semantic-store lookups is cheap.
#[derive(Debug, Clone)]
pub enum Value {
    /// A 64-bit signed integer (also used for dates encoded as `YYYYMMDD`).
    Int(i64),
    /// A 64-bit float. Floats never appear in market access interfaces (the
    /// paper's markets bind values or integer ranges); they only arise as
    /// aggregate outputs (`AVG`). Equality/ordering/hashing use the bit
    /// pattern via `f64::total_cmp`, giving a total order.
    Float(f64),
    /// An interned string value.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Construct an integer value.
    pub const fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Returns the integer payload, or `None` otherwise.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload (promoting integers), or `None` for strings.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, or `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if this is an integer value.
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// A human-readable rendering used by examples and the bench harness.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Int(v) => Cow::Owned(v.to_string()),
            Value::Float(v) => Cow::Owned(format!("{v:.2}")),
            Value::Str(s) => Cow::Borrowed(s),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b).is_eq(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Integers sort before floats, which sort before strings; within a kind
    /// the natural order applies (`total_cmp` for floats).
    ///
    /// A total order (even across kinds) keeps sort-based operators simple;
    /// well-typed queries never compare across kinds.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Int(_) => 0,
                Float(_) => 1,
                Str(_) => 2,
            }
        }
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)).then(Ordering::Equal),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                state.write_u8(0);
                v.hash(state);
            }
            Value::Float(v) => {
                state.write_u8(1);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_round_trip() {
        let v = Value::int(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
        assert!(v.is_int());
    }

    #[test]
    fn str_round_trip() {
        let v = Value::str("Seattle");
        assert_eq!(v.as_str(), Some("Seattle"));
        assert_eq!(v.as_int(), None);
        assert!(!v.is_int());
    }

    #[test]
    fn equality_is_kind_aware() {
        assert_eq!(Value::int(1), Value::int(1));
        assert_ne!(Value::int(1), Value::str("1"));
        assert_eq!(Value::str("a"), Value::str("a"));
    }

    #[test]
    fn ordering_within_kinds() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::int(i64::MAX) < Value::str(""));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::int(7)), hash_of(&Value::int(7)));
        assert_eq!(hash_of(&Value::str("x")), hash_of(&Value::str("x")));
        // Kind tag participates in the hash, so Int(0) and Str("") differ.
        assert_ne!(hash_of(&Value::int(0)), hash_of(&Value::str("")));
    }

    #[test]
    fn display_quotes_strings_only() {
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::str("US").to_string(), "'US'");
        assert_eq!(Value::int(5).render(), "5");
        assert_eq!(Value::str("US").render(), "US");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from(3i32), Value::int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("x")), Value::str("x"));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
    }

    #[test]
    fn float_total_order_and_hash() {
        assert_eq!(Value::Float(1.0), Value::Float(1.0));
        assert_ne!(Value::Float(1.0), Value::int(1));
        assert!(Value::Float(1.0) < Value::Float(2.0));
        assert!(Value::Float(f64::NAN) == Value::Float(f64::NAN)); // bitwise
        assert_eq!(hash_of(&Value::Float(2.5)), hash_of(&Value::Float(2.5)));
        assert_eq!(Value::Float(1.0).as_float(), Some(1.0));
        assert_eq!(Value::int(2).as_float(), Some(2.0));
        assert_eq!(Value::str("x").as_float(), None);
    }
}
