//! Comparison operators shared by the SQL front end and the local engine.

use std::fmt;

use crate::value::Value;

/// A binary comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to two values (using the total order on [`Value`]).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, a.cmp(b)),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less | Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less | Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater | Equal)
        )
    }

    /// The operator with operands swapped: `a op b == b op.flip() a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantics() {
        let one = Value::int(1);
        let two = Value::int(2);
        assert!(CmpOp::Eq.eval(&one, &one));
        assert!(!CmpOp::Eq.eval(&one, &two));
        assert!(CmpOp::Ne.eval(&one, &two));
        assert!(CmpOp::Lt.eval(&one, &two));
        assert!(CmpOp::Le.eval(&one, &one));
        assert!(CmpOp::Gt.eval(&two, &one));
        assert!(CmpOp::Ge.eval(&two, &two));
    }

    #[test]
    fn flip_consistency() {
        let a = Value::int(1);
        let b = Value::int(2);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.eval(&a, &b), op.flip().eval(&b, &a));
        }
    }

    #[test]
    fn display() {
        assert_eq!(CmpOp::Le.to_string(), "<=");
        assert_eq!(CmpOp::Ne.to_string(), "<>");
    }
}
