//! JSON conversions for the fundamental types, used by session snapshots.

use crate::constraint::{AttrConstraint, Constraint};
use crate::domain::Domain;
use crate::row::Row;
use crate::schema::{BindingKind, Column, Schema};
use crate::value::Value;
use payless_json::{err, FromJson, Json, JsonError, Result, ToJson};

impl ToJson for Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Int(v) => Json::obj([("i", v.to_json())]),
            Value::Float(v) => Json::obj([("f", v.to_json())]),
            Value::Str(s) => Json::obj([("s", s.to_json())]),
        }
    }
}

impl FromJson for Value {
    fn from_json(j: &Json) -> Result<Self> {
        match j.as_obj()? {
            [(k, v)] if k == "i" => Ok(Value::Int(v.as_i64()?)),
            [(k, v)] if k == "f" => Ok(Value::Float(v.as_f64()?)),
            [(k, v)] if k == "s" => Ok(Value::str(v.as_str()?)),
            _ => err(format!("bad value encoding: {j}")),
        }
    }
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        self.values().to_json()
    }
}

impl FromJson for Row {
    fn from_json(j: &Json) -> Result<Self> {
        Ok(Row::new(Vec::<Value>::from_json(j)?))
    }
}

impl ToJson for Domain {
    fn to_json(&self) -> Json {
        match self {
            Domain::Int { lo, hi } => Json::obj([("lo", lo.to_json()), ("hi", hi.to_json())]),
            Domain::Categorical(values) => Json::obj([(
                "cats",
                Json::Arr(values.iter().map(|v| v.to_json()).collect()),
            )]),
        }
    }
}

impl FromJson for Domain {
    fn from_json(j: &Json) -> Result<Self> {
        if let Some(cats) = j.get_opt("cats") {
            let values: Vec<std::sync::Arc<str>> = FromJson::from_json(cats)?;
            if values.is_empty() {
                return err("empty categorical domain");
            }
            Ok(Domain::Categorical(values.into()))
        } else {
            let lo = j.get("lo")?.as_i64()?;
            let hi = j.get("hi")?.as_i64()?;
            if lo > hi {
                return err(format!("empty integer domain [{lo}, {hi}]"));
            }
            Ok(Domain::Int { lo, hi })
        }
    }
}

impl ToJson for BindingKind {
    fn to_json(&self) -> Json {
        Json::str(match self {
            BindingKind::Bound => "bound",
            BindingKind::Free => "free",
            BindingKind::Output => "output",
        })
    }
}

impl FromJson for BindingKind {
    fn from_json(j: &Json) -> Result<Self> {
        match j.as_str()? {
            "bound" => Ok(BindingKind::Bound),
            "free" => Ok(BindingKind::Free),
            "output" => Ok(BindingKind::Output),
            other => err(format!("bad binding kind {other:?}")),
        }
    }
}

impl ToJson for Column {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("domain", self.domain.to_json()),
            ("binding", self.binding.to_json()),
        ])
    }
}

impl FromJson for Column {
    fn from_json(j: &Json) -> Result<Self> {
        Ok(Column {
            name: FromJson::from_json(j.get("name")?)?,
            domain: FromJson::from_json(j.get("domain")?)?,
            binding: FromJson::from_json(j.get("binding")?)?,
        })
    }
}

impl ToJson for Schema {
    fn to_json(&self) -> Json {
        Json::obj([
            ("table", self.table.to_json()),
            (
                "columns",
                Json::Arr(self.columns.iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for Schema {
    fn from_json(j: &Json) -> Result<Self> {
        let table: std::sync::Arc<str> = FromJson::from_json(j.get("table")?)?;
        let columns: Vec<Column> = FromJson::from_json(j.get("columns")?)?;
        // Re-validate the duplicate-name invariant on load.
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                if a.name == b.name {
                    return Err(JsonError(format!(
                        "duplicate column `{}` in schema for `{table}`",
                        a.name
                    )));
                }
            }
        }
        Ok(Schema {
            table,
            columns: columns.into(),
        })
    }
}

impl ToJson for Constraint {
    fn to_json(&self) -> Json {
        match self {
            Constraint::Eq(v) => Json::obj([("eq", v.to_json())]),
            Constraint::IntRange { lo, hi } => {
                Json::obj([("lo", lo.to_json()), ("hi", hi.to_json())])
            }
        }
    }
}

impl FromJson for Constraint {
    fn from_json(j: &Json) -> Result<Self> {
        if let Some(v) = j.get_opt("eq") {
            Ok(Constraint::Eq(Value::from_json(v)?))
        } else {
            Ok(Constraint::IntRange {
                lo: j.get("lo")?.as_i64()?,
                hi: j.get("hi")?.as_i64()?,
            })
        }
    }
}

impl ToJson for AttrConstraint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("attr", self.attr.to_json()),
            ("constraint", self.constraint.to_json()),
        ])
    }
}

impl FromJson for AttrConstraint {
    fn from_json(j: &Json) -> Result<Self> {
        Ok(AttrConstraint {
            attr: FromJson::from_json(j.get("attr")?)?,
            constraint: FromJson::from_json(j.get("constraint")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_json::parse;

    fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: T) {
        let text = v.to_json().to_string_compact();
        let back = T::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, v, "round trip via {text}");
    }

    #[test]
    fn values_round_trip() {
        round_trip(Value::int(-(1 << 62)));
        round_trip(Value::Float(f64::NAN));
        round_trip(Value::Float(-0.0));
        round_trip(Value::str("hi \"there\""));
        round_trip(Row::new(vec![Value::int(1), Value::str("x")]));
    }

    #[test]
    fn schemas_round_trip() {
        round_trip(Schema::new(
            "T",
            vec![
                Column::bound("a", Domain::int(-5, 9)),
                Column::free("b", Domain::categorical(["x", "y"])),
                Column::output("c", Domain::int(0, 1)),
            ],
        ));
    }

    #[test]
    fn constraints_round_trip() {
        round_trip(Constraint::Eq(Value::str("v")));
        round_trip(Constraint::IntRange { lo: -3, hi: 7 });
    }

    #[test]
    fn loading_rejects_corrupt_schema() {
        let j = Schema::new("T", vec![Column::free("a", Domain::int(0, 1))]).to_json();
        let mut text = j.to_string_compact();
        text = text.replace(
            "\"columns\":[",
            "\"columns\":[{\"name\":\"a\",\"domain\":{\"lo\":0,\"hi\":1},\"binding\":\"free\"},",
        );
        assert!(Schema::from_json(&parse(&text).unwrap()).is_err());
    }
}
