//! Attribute domains — the "basic statistics" a data market publishes.
//!
//! Per Section 2.1 of the paper, datasets in a data market are tagged only
//! with the domain of each attribute and the table cardinality. The optimizer
//! starts from exactly this information (uniformity assumption) before any
//! query feedback arrives.

use std::sync::Arc;

use crate::value::Value;

/// The advertised domain of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// Integers in the inclusive range `[lo, hi]`.
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// A finite set of categorical (string) values.
    ///
    /// The order of values is the canonical enumeration order used when a
    /// query must be decomposed per category (e.g. a bounding box that spans
    /// the whole categorical domain).
    Categorical(Arc<[Arc<str>]>),
}

impl Domain {
    /// An integer domain `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn int(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty integer domain [{lo}, {hi}]");
        Domain::Int { lo, hi }
    }

    /// A categorical domain over the given values.
    pub fn categorical<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Arc<str>>,
    {
        let values: Vec<Arc<str>> = values.into_iter().map(Into::into).collect();
        assert!(!values.is_empty(), "empty categorical domain");
        Domain::Categorical(values.into())
    }

    /// Number of distinct values in the domain.
    ///
    /// This is the denominator of the textbook uniform-selectivity estimate
    /// the optimizer uses before feedback statistics exist.
    pub fn size(&self) -> u64 {
        match self {
            Domain::Int { lo, hi } => (hi - lo) as u64 + 1,
            Domain::Categorical(values) => values.len() as u64,
        }
    }

    /// `true` if the domain is an integer range.
    pub fn is_int(&self) -> bool {
        matches!(self, Domain::Int { .. })
    }

    /// Whether `value` belongs to the domain.
    pub fn contains(&self, value: &Value) -> bool {
        match (self, value) {
            (Domain::Int { lo, hi }, Value::Int(v)) => lo <= v && v <= hi,
            (Domain::Categorical(values), Value::Str(s)) => values.iter().any(|v| v == s),
            _ => false,
        }
    }

    /// The categorical values, if this is a categorical domain.
    pub fn categories(&self) -> Option<&[Arc<str>]> {
        match self {
            Domain::Int { .. } => None,
            Domain::Categorical(values) => Some(values),
        }
    }

    /// The integer bounds, if this is an integer domain.
    pub fn int_bounds(&self) -> Option<(i64, i64)> {
        match self {
            Domain::Int { lo, hi } => Some((*lo, *hi)),
            Domain::Categorical(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_domain_size_and_contains() {
        let d = Domain::int(10, 19);
        assert_eq!(d.size(), 10);
        assert!(d.contains(&Value::int(10)));
        assert!(d.contains(&Value::int(19)));
        assert!(!d.contains(&Value::int(9)));
        assert!(!d.contains(&Value::int(20)));
        assert!(!d.contains(&Value::str("10")));
        assert_eq!(d.int_bounds(), Some((10, 19)));
        assert!(d.is_int());
    }

    #[test]
    fn singleton_int_domain() {
        let d = Domain::int(5, 5);
        assert_eq!(d.size(), 1);
        assert!(d.contains(&Value::int(5)));
    }

    #[test]
    #[should_panic(expected = "empty integer domain")]
    fn empty_int_domain_panics() {
        let _ = Domain::int(3, 2);
    }

    #[test]
    fn categorical_domain() {
        let d = Domain::categorical(["US", "CA", "DE"]);
        assert_eq!(d.size(), 3);
        assert!(d.contains(&Value::str("CA")));
        assert!(!d.contains(&Value::str("FR")));
        assert!(!d.contains(&Value::int(1)));
        assert_eq!(d.categories().unwrap().len(), 3);
        assert!(d.int_bounds().is_none());
        assert!(!d.is_int());
    }

    #[test]
    #[should_panic(expected = "empty categorical domain")]
    fn empty_categorical_domain_panics() {
        let _ = Domain::categorical(Vec::<&str>::new());
    }

    #[test]
    fn full_i64_range_size_is_exact() {
        // (hi - lo) would overflow i64 if computed naively on the full range;
        // we only promise correctness when hi - lo fits, which covers every
        // realistic data-market domain. Use a wide but safe range here.
        let d = Domain::int(-(1 << 62), (1 << 62) - 1);
        assert_eq!(d.size(), (1u64 << 63));
    }
}
