//! Aggregate function names, shared by the SQL front end and the engine.

use std::fmt;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(col)` or `COUNT(*)`.
    Count,
    /// `SUM(col)` over integers.
    Sum,
    /// `AVG(col)`; produces a float.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Parse a (case-insensitive) SQL spelling.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_names() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
            assert_eq!(AggFunc::from_name(&f.name().to_lowercase()), Some(f));
        }
        assert_eq!(AggFunc::from_name("MEDIAN"), None);
        assert_eq!(AggFunc::Avg.to_string(), "AVG");
    }
}
