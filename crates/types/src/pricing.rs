//! Transaction arithmetic — Eq. (1) of the paper.
//!
//! > A *transaction* represents a page of `t` tuples (e.g., 100 tuples) and it
//! > is the smallest pricing unit. Let `p` be the price per transaction for a
//! > particular dataset. Then, the total price of a RESTful call is
//! > `p · ceil(records / t)`.

/// A count of data-market transactions (the paper's pricing unit).
pub type Transactions = u64;

/// Number of transactions charged for a call returning `records` tuples when
/// a transaction covers `page_size` tuples.
///
/// A call that returns zero records is free: `ceil(0 / t) = 0`. This matters
/// for bind joins — probing a binding value with no matching tuples costs
/// nothing.
#[inline]
pub fn transactions(records: u64, page_size: u64) -> Transactions {
    assert!(page_size > 0, "transaction page size must be positive");
    records.div_ceil(page_size)
}

/// Price of one transaction for a dataset, in abstract currency units.
///
/// The paper normalizes `p = $1` throughout; the simulator keeps the knob so
/// multi-dataset totals with heterogeneous prices can be reported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricePerTransaction(pub f64);

impl PricePerTransaction {
    /// The paper's normalized `$1` per transaction.
    pub const UNIT: PricePerTransaction = PricePerTransaction(1.0);

    /// Total monetary price for `n` transactions.
    pub fn total(&self, n: Transactions) -> f64 {
        self.0 * n as f64
    }
}

impl Default for PricePerTransaction {
    fn default() -> Self {
        Self::UNIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_paper_examples() {
        // 4400 records at t=100 is 44 transactions (Section 1).
        assert_eq!(transactions(4400, 100), 44);
        // 788 stations x 30 days at t=100 is 237 transactions (Figure 1b).
        assert_eq!(transactions(788 * 30, 100), 237);
        // 30 records is a single transaction (Figure 1c).
        assert_eq!(transactions(30, 100), 1);
    }

    #[test]
    fn zero_records_is_free() {
        assert_eq!(transactions(0, 100), 0);
    }

    #[test]
    fn exact_page_boundaries() {
        assert_eq!(transactions(100, 100), 1);
        assert_eq!(transactions(101, 100), 2);
        assert_eq!(transactions(200, 100), 2);
    }

    #[test]
    #[should_panic(expected = "page size must be positive")]
    fn zero_page_size_panics() {
        let _ = transactions(1, 0);
    }

    #[test]
    fn price_total() {
        assert_eq!(PricePerTransaction::UNIT.total(44), 44.0);
        assert_eq!(PricePerTransaction(0.12).total(100), 12.0);
        assert_eq!(PricePerTransaction::default(), PricePerTransaction::UNIT);
    }

    proptest! {
        /// `ceil` semantics: t*(k-1) < records <= t*k  =>  k transactions.
        #[test]
        fn ceil_invariant(records in 0u64..1_000_000, t in 1u64..10_000) {
            let k = transactions(records, t);
            prop_assert!(k * t >= records);
            if k > 0 {
                prop_assert!((k - 1) * t < records);
            } else {
                prop_assert_eq!(records, 0);
            }
        }

        /// Splitting a retrieval into two calls never reduces the total
        /// transaction count (subadditivity in reverse) — the formal basis of
        /// the paper's observation that decomposition can only cost more per
        /// tuple, never less.
        #[test]
        fn splitting_never_cheaper(a in 0u64..100_000, b in 0u64..100_000, t in 1u64..1_000) {
            prop_assert!(transactions(a, t) + transactions(b, t) >= transactions(a + b, t));
        }
    }
}
