//! Continuous spend reconciliation while a mix is running.
//!
//! `run_mix` has always reconciled Σ per-query ledger pages against the
//! billing meter — but only once, at exit. The [`Watchdog`] moves that
//! cross-check into the run: every K completed queries it samples the
//! meter and compares it against the pages attributed so far, globally and
//! per table.
//!
//! **Soundness under concurrency.** A sample reads the attributed totals
//! *before* reading the meter. Every ledger entry corresponds to a meter
//! charge that already happened, so at that instant `meter ≥ attributed`
//! always holds; the difference ("drift") is spend whose queries are still
//! in flight, and it must return to zero at quiescence. `attributed >
//! meter` can never legitimately happen — it means double-counted ledger
//! entries — and is flagged as a violation the moment it is seen.
//!
//! Drift is recorded into the metrics hub (`payless_watchdog_*`); under
//! strict mode a violation aborts the mix immediately instead of waiting
//! for the exit reconciliation. With one worker thread there is no
//! in-flight spend at sample time, so strict mode additionally requires
//! exact zero drift at every sample.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use payless_market::DataMarket;
use payless_metrics::MetricsHub;
use payless_telemetry::TelemetrySnapshot;
use payless_types::{PaylessError, Result};

/// What the watchdog saw over one mix (folded into the serve report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Mid-run reconciliation samples taken.
    pub samples: u64,
    /// Largest in-flight drift (meter minus attributed pages) sampled.
    pub max_drift_pages: u64,
}

/// Samples `Σ attributed ledger pages == billing meter` every K queries.
pub struct Watchdog<'a> {
    market: &'a DataMarket,
    every: u64,
    strict: bool,
    /// One worker thread: no spend can be in flight at a sample, so any
    /// nonzero drift is itself a violation.
    exact: bool,
    base_pages: u64,
    base_by_table: HashMap<Arc<str>, u64>,
    attributed: AtomicU64,
    by_table: Mutex<HashMap<Arc<str>, u64>>,
    completed: AtomicU64,
    samples: AtomicU64,
    max_drift: AtomicU64,
    hub: Option<Arc<MetricsHub>>,
}

fn table_pages(report: &payless_market::BillingReport) -> HashMap<Arc<str>, u64> {
    report
        .by_table
        .iter()
        .map(|(t, b)| (t.clone(), b.transactions))
        .collect()
}

impl<'a> Watchdog<'a> {
    /// Start watching `market` from its current meter state.
    pub fn new(
        market: &'a DataMarket,
        every: u64,
        strict: bool,
        threads: usize,
        hub: Option<Arc<MetricsHub>>,
    ) -> Self {
        let base = market.bill();
        Watchdog {
            market,
            every: every.max(1),
            strict,
            exact: threads <= 1,
            base_pages: base.transactions(),
            base_by_table: table_pages(&base),
            attributed: AtomicU64::new(0),
            by_table: Mutex::new(HashMap::new()),
            completed: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            max_drift: AtomicU64::new(0),
            hub,
        }
    }

    /// Attribute one finished query's ledger; every K-th completion takes
    /// a reconciliation sample. Errors only under strict mode.
    pub fn note_query(&self, snap: &TelemetrySnapshot) -> Result<()> {
        {
            let mut per = self.by_table.lock().unwrap_or_else(|e| e.into_inner());
            for tr in &snap.ledger {
                *per.entry(tr.table.clone()).or_default() += tr.pages;
            }
        }
        self.attributed
            .fetch_add(snap.total_pages(), Ordering::SeqCst);
        let done = self.completed.fetch_add(1, Ordering::SeqCst) + 1;
        if done.is_multiple_of(self.every) {
            self.sample()?;
        }
        Ok(())
    }

    /// One mid-run cross-check. Ordering matters: attributed totals are
    /// read *before* the meter, so `meter ≥ attributed` is guaranteed for
    /// correctly-attributed spend and any excess is true drift.
    fn sample(&self) -> Result<()> {
        let attributed = self.attributed.load(Ordering::SeqCst);
        let per_attr: HashMap<Arc<str>, u64> = self
            .by_table
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let bill = self.market.bill();
        let meter = bill.transactions() - self.base_pages;
        let meter_by_table = table_pages(&bill);

        self.samples.fetch_add(1, Ordering::SeqCst);
        let mut violation: Option<String> = None;
        if attributed > meter {
            violation = Some(format!(
                "over-attribution: Σ ledger pages {attributed} exceeds meter delta {meter}"
            ));
        }
        for (table, &attr) in &per_attr {
            let base = self.base_by_table.get(table).copied().unwrap_or(0);
            let meter_t = meter_by_table.get(table).copied().unwrap_or(0) - base;
            if attr > meter_t {
                violation = Some(format!(
                    "over-attribution on `{table}`: ledger {attr} exceeds meter delta {meter_t}"
                ));
                break;
            }
        }
        let drift = meter.saturating_sub(attributed);
        if violation.is_none() && self.exact && drift != 0 {
            violation = Some(format!(
                "single-threaded run sampled nonzero drift: meter delta {meter}, attributed {attributed}"
            ));
        }
        self.max_drift.fetch_max(drift, Ordering::SeqCst);
        if let Some(hub) = &self.hub {
            hub.watchdog_samples.inc(1);
            hub.watchdog_drift_pages.set(drift);
            hub.watchdog_max_drift_pages
                .set(self.max_drift.load(Ordering::SeqCst));
            if violation.is_some() {
                hub.watchdog_violations.inc(1);
            }
        }
        match violation {
            Some(v) if self.strict => Err(PaylessError::Internal(format!(
                "reconciliation watchdog (strict): {v}"
            ))),
            _ => Ok(()),
        }
    }

    /// Final reconciliation at quiescence: the meter delta must equal the
    /// attributed pages exactly, globally and per table. Panics on
    /// mismatch, like `run_mix`'s historical exit assert.
    pub fn finish(&self) -> WatchdogReport {
        let attributed = self.attributed.load(Ordering::SeqCst);
        let per_attr = self.by_table.lock().unwrap_or_else(|e| e.into_inner());
        let bill = self.market.bill();
        let meter = bill.transactions() - self.base_pages;
        assert_eq!(
            attributed, meter,
            "spend ledger must reconcile with the billing meter: \
             Σ per-query ledger pages = {attributed}, meter delta = {meter}"
        );
        let meter_by_table = table_pages(&bill);
        for (table, bill_pages) in &meter_by_table {
            let base = self.base_by_table.get(table).copied().unwrap_or(0);
            let attr = per_attr.get(table).copied().unwrap_or(0);
            assert_eq!(
                attr,
                bill_pages - base,
                "per-table reconciliation failed for `{table}`"
            );
        }
        if let Some(hub) = &self.hub {
            hub.watchdog_drift_pages.set(0);
        }
        WatchdogReport {
            samples: self.samples.load(Ordering::SeqCst),
            max_drift_pages: self.max_drift.load(Ordering::SeqCst),
        }
    }
}
