//! Continuous spend reconciliation while a mix is running.
//!
//! `run_mix` has always reconciled Σ per-query ledger pages against the
//! billing meter — but only once, at exit. The [`Watchdog`] moves that
//! cross-check into the run: every K completed queries it samples the
//! meter and compares it against the pages attributed so far, globally and
//! per table.
//!
//! **Soundness under concurrency.** A sample reads the attributed totals
//! *before* reading the meter. Every ledger entry corresponds to a meter
//! charge that already happened, so at that instant `meter ≥ attributed`
//! always holds; the difference ("drift") is spend whose queries are still
//! in flight, and it must return to zero at quiescence. `attributed >
//! meter` can never legitimately happen — it means double-counted ledger
//! entries — and is flagged as a violation the moment it is seen.
//!
//! Drift is recorded into the metrics hub (`payless_watchdog_*`); under
//! strict mode a violation aborts the mix immediately instead of waiting
//! for the exit reconciliation. With one worker thread there is no
//! in-flight spend at sample time, so strict mode additionally requires
//! exact zero drift at every sample.
//!
//! **Batched purchasing.** A batch leader charges the meter once and
//! settles shares onto members whose queries have *not completed yet* —
//! spend that is neither in flight nor attributed, and that would trip the
//! exact-mode zero-drift check even single-threaded. The planner tracks
//! exactly those pages in a deferred register
//! ([`payless_exec::BatchPlanner::deferred_handle`], incremented *before*
//! any member share becomes visible); [`Watchdog::with_deferred`] attaches
//! it, the exact-mode check then permits `drift ≤ deferred`, and
//! [`Watchdog::note_query`] drains each completed member's settled pages
//! (`batch.settled_pages`) back off the register. The over-attribution
//! checks are untouched: a share is distributed only after its meter
//! charge, so `attributed ≤ meter` still always holds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use payless_events::{EventJournal, EventKind, Severity};
use payless_market::DataMarket;
use payless_metrics::MetricsHub;
use payless_telemetry::TelemetrySnapshot;
use payless_types::{PaylessError, Result};

/// One table's figures from a reconciliation sample: pages the completed
/// queries' ledgers attribute to it versus the billing meter's delta.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableDrift {
    /// Market table name.
    pub table: String,
    /// Pages attributed by completed queries' ledgers.
    pub attributed_pages: u64,
    /// The meter's page delta for the table since the watchdog started.
    pub meter_pages: u64,
}

impl TableDrift {
    /// Pages billed but not yet attributed (in-flight or deferred spend).
    pub fn drift_pages(&self) -> u64 {
        self.meter_pages.saturating_sub(self.attributed_pages)
    }
}

/// Render a per-table breakdown for violation messages: only tables with
/// nonzero drift, worst first.
fn render_breakdown(rows: &[TableDrift]) -> String {
    let mut drifting: Vec<&TableDrift> = rows
        .iter()
        .filter(|r| r.attributed_pages != r.meter_pages)
        .collect();
    drifting.sort_by_key(|r| std::cmp::Reverse(r.drift_pages()));
    if drifting.is_empty() {
        return "all tables reconciled".into();
    }
    drifting
        .iter()
        .map(|r| {
            format!(
                "`{}` ledger {} vs meter {}",
                r.table, r.attributed_pages, r.meter_pages
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// What the watchdog saw over one mix (folded into the serve report).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Mid-run reconciliation samples taken.
    pub samples: u64,
    /// Largest in-flight drift (meter minus attributed pages) sampled.
    pub max_drift_pages: u64,
    /// Per-table breakdown from the last reconciliation sample (the exit
    /// reconciliation when the mix ran to completion), sorted by table.
    pub last_sample: Vec<TableDrift>,
}

/// Samples `Σ attributed ledger pages == billing meter` every K queries.
pub struct Watchdog<'a> {
    market: &'a DataMarket,
    every: u64,
    strict: bool,
    /// One worker thread: no spend can be in flight at a sample, so any
    /// nonzero drift is itself a violation.
    exact: bool,
    base_pages: u64,
    base_by_table: HashMap<Arc<str>, u64>,
    attributed: AtomicU64,
    by_table: Mutex<HashMap<Arc<str>, u64>>,
    completed: AtomicU64,
    samples: AtomicU64,
    max_drift: AtomicU64,
    /// Pages settled onto batch members that have not completed yet —
    /// drift the exact-mode check must allow (see module docs).
    deferred: Option<Arc<AtomicU64>>,
    hub: Option<Arc<MetricsHub>>,
    /// Flight recorder: every sample is journaled, and a violation becomes
    /// an error event before it aborts anything.
    events: Option<Arc<EventJournal>>,
    /// Per-table breakdown of the most recent sample (see
    /// [`WatchdogReport::last_sample`]).
    last_sample: Mutex<Vec<TableDrift>>,
}

fn table_pages(report: &payless_market::BillingReport) -> HashMap<Arc<str>, u64> {
    report
        .by_table
        .iter()
        .map(|(t, b)| (t.clone(), b.transactions))
        .collect()
}

impl<'a> Watchdog<'a> {
    /// Start watching `market` from its current meter state.
    pub fn new(
        market: &'a DataMarket,
        every: u64,
        strict: bool,
        threads: usize,
        hub: Option<Arc<MetricsHub>>,
    ) -> Self {
        let base = market.bill();
        Watchdog {
            market,
            every: every.max(1),
            strict,
            exact: threads <= 1,
            base_pages: base.transactions(),
            base_by_table: table_pages(&base),
            attributed: AtomicU64::new(0),
            by_table: Mutex::new(HashMap::new()),
            completed: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            max_drift: AtomicU64::new(0),
            deferred: None,
            hub,
            events: None,
            last_sample: Mutex::new(Vec::new()),
        }
    }

    /// Attach a batch planner's deferred-pages register: spend settled
    /// onto still-running batch members, which the exact-mode drift check
    /// must tolerate and which each completing member drains via its
    /// `batch.settled_pages` counter.
    pub fn with_deferred(mut self, deferred: Arc<AtomicU64>) -> Self {
        self.deferred = Some(deferred);
        self
    }

    /// Attach a flight-recorder journal: every reconciliation sample is
    /// journaled (`watchdog_sample`), and any violation is journaled as an
    /// error event before strict mode aborts or `finish` panics — so the
    /// black-box dump always covers the violating sample.
    pub fn with_events(mut self, journal: Arc<EventJournal>) -> Self {
        self.events = Some(journal);
        self
    }

    /// Attribute one finished query's ledger; every K-th completion takes
    /// a reconciliation sample. Errors only under strict mode.
    pub fn note_query(&self, snap: &TelemetrySnapshot) -> Result<()> {
        {
            let mut per = self.by_table.lock().unwrap_or_else(|e| e.into_inner());
            for tr in &snap.ledger {
                *per.entry(tr.table.clone()).or_default() += tr.pages;
            }
        }
        self.attributed
            .fetch_add(snap.total_pages(), Ordering::SeqCst);
        // A completing batch member's settled pages are attributed now, so
        // they stop being deferred. The order matters: attribute first,
        // then drain — a sample in between sees the pages double-counted
        // on the tolerance side (drift ≤ deferred stays safe), never
        // missing from both.
        if let Some(deferred) = &self.deferred {
            let settled = snap
                .counters
                .iter()
                .find(|(k, _)| *k == "batch.settled_pages")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            if settled > 0 {
                let _ = deferred.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |d| {
                    Some(d.saturating_sub(settled))
                });
                if let Some(hub) = &self.hub {
                    hub.batch_deferred_pages
                        .set(deferred.load(Ordering::SeqCst));
                }
            }
        }
        let done = self.completed.fetch_add(1, Ordering::SeqCst) + 1;
        if done.is_multiple_of(self.every) {
            self.sample()?;
        }
        Ok(())
    }

    /// Per-table breakdown of one sample: every table the meter or the
    /// ledgers have touched, sorted by name.
    fn breakdown(
        &self,
        per_attr: &HashMap<Arc<str>, u64>,
        meter_by_table: &HashMap<Arc<str>, u64>,
    ) -> Vec<TableDrift> {
        let mut rows: Vec<TableDrift> = meter_by_table
            .iter()
            .map(|(t, &pages)| {
                let base = self.base_by_table.get(t).copied().unwrap_or(0);
                TableDrift {
                    table: t.to_string(),
                    attributed_pages: per_attr.get(t).copied().unwrap_or(0),
                    meter_pages: pages.saturating_sub(base),
                }
            })
            .filter(|r| r.attributed_pages > 0 || r.meter_pages > 0)
            .collect();
        // A table attributed but never metered is pure over-attribution;
        // it must show up in the breakdown too.
        for (t, &attr) in per_attr {
            if attr > 0 && !meter_by_table.contains_key(t) {
                rows.push(TableDrift {
                    table: t.to_string(),
                    attributed_pages: attr,
                    meter_pages: 0,
                });
            }
        }
        rows.sort_by(|a, b| a.table.cmp(&b.table));
        rows
    }

    /// One mid-run cross-check. Ordering matters: attributed totals are
    /// read *before* the meter, so `meter ≥ attributed` is guaranteed for
    /// correctly-attributed spend and any excess is true drift.
    fn sample(&self) -> Result<()> {
        let attributed = self.attributed.load(Ordering::SeqCst);
        let per_attr: HashMap<Arc<str>, u64> = self
            .by_table
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let bill = self.market.bill();
        let meter = bill.transactions() - self.base_pages;
        let meter_by_table = table_pages(&bill);
        let rows = self.breakdown(&per_attr, &meter_by_table);
        *self.last_sample.lock().unwrap_or_else(|e| e.into_inner()) = rows.clone();

        let sample_no = self.samples.fetch_add(1, Ordering::SeqCst) + 1;
        let mut violation: Option<String> = None;
        if attributed > meter {
            violation = Some(format!(
                "over-attribution: Σ ledger pages {attributed} exceeds meter delta {meter} \
                 ({})",
                render_breakdown(&rows)
            ));
        }
        for (table, &attr) in &per_attr {
            let base = self.base_by_table.get(table).copied().unwrap_or(0);
            let meter_t = meter_by_table.get(table).copied().unwrap_or(0) - base;
            if attr > meter_t {
                violation = Some(format!(
                    "over-attribution on `{table}`: ledger {attr} exceeds meter delta {meter_t}"
                ));
                break;
            }
        }
        let drift = meter.saturating_sub(attributed);
        // Pages settled onto batch members whose queries are still running
        // are legitimately unattributed; only drift beyond that register is
        // a violation in exact mode.
        let deferred = self
            .deferred
            .as_ref()
            .map(|d| d.load(Ordering::SeqCst))
            .unwrap_or(0);
        if violation.is_none() && self.exact && drift > deferred {
            violation = Some(format!(
                "single-threaded run sampled drift beyond the batch-deferred register: \
                 meter delta {meter}, attributed {attributed}, deferred {deferred} \
                 ({})",
                render_breakdown(&rows)
            ));
        }
        self.max_drift.fetch_max(drift, Ordering::SeqCst);
        if let Some(j) = &self.events {
            j.emit(None, Severity::Debug, || EventKind::WatchdogSample {
                sample: sample_no,
                attributed_pages: attributed,
                meter_pages: meter,
                deferred_pages: deferred,
                exact: self.exact,
            });
            if let Some(v) = &violation {
                j.emit(None, Severity::Error, || EventKind::WatchdogViolation {
                    detail: v.clone(),
                });
            }
        }
        if let Some(hub) = &self.hub {
            hub.watchdog_samples.inc(1);
            hub.watchdog_drift_pages.set(drift);
            hub.watchdog_max_drift_pages
                .set(self.max_drift.load(Ordering::SeqCst));
            if violation.is_some() {
                hub.watchdog_violations.inc(1);
            }
        }
        match violation {
            Some(v) if self.strict => Err(PaylessError::Internal(format!(
                "reconciliation watchdog (strict): {v}"
            ))),
            _ => Ok(()),
        }
    }

    /// Final reconciliation at quiescence: the meter delta must equal the
    /// attributed pages exactly, globally and per table. Panics on
    /// mismatch, like `run_mix`'s historical exit assert — with the
    /// per-table breakdown in the message, and an error event journaled
    /// first so the black-box dump covers the violating reconciliation.
    pub fn finish(&self) -> WatchdogReport {
        let attributed = self.attributed.load(Ordering::SeqCst);
        let per_attr = self
            .by_table
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let bill = self.market.bill();
        let meter = bill.transactions() - self.base_pages;
        let meter_by_table = table_pages(&bill);
        let rows = self.breakdown(&per_attr, &meter_by_table);
        *self.last_sample.lock().unwrap_or_else(|e| e.into_inner()) = rows.clone();

        let mut violation: Option<String> = None;
        if attributed != meter {
            violation = Some(format!(
                "spend ledger must reconcile with the billing meter: \
                 Σ per-query ledger pages = {attributed}, meter delta = {meter} \
                 ({})",
                render_breakdown(&rows)
            ));
        } else if let Some(r) = rows.iter().find(|r| r.attributed_pages != r.meter_pages) {
            violation = Some(format!(
                "per-table reconciliation failed for `{}`: ledger {} vs meter {} \
                 ({})",
                r.table,
                r.attributed_pages,
                r.meter_pages,
                render_breakdown(&rows)
            ));
        }
        if let Some(v) = violation {
            if let Some(j) = &self.events {
                j.emit(None, Severity::Error, || EventKind::WatchdogViolation {
                    detail: v.clone(),
                });
            }
            panic!("{v}");
        }
        if let Some(hub) = &self.hub {
            hub.watchdog_drift_pages.set(0);
        }
        WatchdogReport {
            samples: self.samples.load(Ordering::SeqCst),
            max_drift_pages: self.max_drift.load(Ordering::SeqCst),
            last_sample: rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_market::Dataset;
    use payless_telemetry::{CallKind, TransactionRecord};

    fn market() -> DataMarket {
        DataMarket::new(vec![Dataset::new("d")])
    }

    /// A completed query's snapshot: `pages` attributed to table `T`, and
    /// (for batch members) `settled` pages counted as `batch.settled_pages`.
    fn snap(pages: u64, settled: u64) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::default();
        if pages > 0 {
            s.ledger.push(TransactionRecord {
                seq: 0,
                dataset: "d".into(),
                table: "T".into(),
                kind: CallKind::Remainder,
                records: pages,
                page_size: 1,
                pages,
                price: pages as f64,
                wasted: false,
                at_nanos: 0,
            });
        }
        if settled > 0 {
            s.counters.push(("batch.settled_pages", settled));
        }
        s
    }

    /// Regression (batched purchasing): a leader charges the meter for the
    /// whole batch but members' shares are attributed only when *their*
    /// queries complete. Strict exact mode must tolerate exactly that much
    /// drift — no more — and the register must drain as members finish.
    #[test]
    fn deferred_share_pages_are_tolerated_then_drained() {
        let market = market();
        let deferred = Arc::new(AtomicU64::new(0));
        let dog = Watchdog::new(&market, 1, true, 1, None).with_deferred(deferred.clone());

        // Leader buys 10 pages for the batch: 4 its own, 6 settled onto a
        // still-running sibling (registered before any share is visible).
        market.meter().charge(&"T".into(), 10, 10);
        deferred.store(6, Ordering::SeqCst);
        dog.note_query(&snap(4, 0))
            .expect("drift equal to the deferred register must pass exact mode");

        // The sibling completes, attributing its 6-page share and draining
        // the register; drift returns to zero and the run reconciles.
        dog.note_query(&snap(6, 6)).expect("drained sample");
        assert_eq!(deferred.load(Ordering::SeqCst), 0);
        let report = dog.finish();
        assert_eq!(report.samples, 2);
        assert_eq!(report.max_drift_pages, 6);
    }

    #[test]
    fn drift_beyond_deferred_register_still_flags() {
        let market = market();
        let deferred = Arc::new(AtomicU64::new(2));
        let dog = Watchdog::new(&market, 1, true, 1, None).with_deferred(deferred);
        market.meter().charge(&"T".into(), 10, 10);
        let err = dog.note_query(&snap(4, 0)).unwrap_err();
        assert!(
            err.to_string().contains("deferred"),
            "exact mode must flag drift beyond the register: {err}"
        );
    }

    #[test]
    fn exact_mode_without_register_flags_any_drift() {
        let market = market();
        let dog = Watchdog::new(&market, 1, true, 1, None);
        market.meter().charge(&"T".into(), 5, 5);
        assert!(dog.note_query(&snap(2, 0)).is_err());
    }
}
