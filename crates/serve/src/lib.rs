//! Concurrent multi-session serving over one shared semantic store.
//!
//! [`Serve`] is the middleware shape the ROADMAP's "many users" goal needs:
//! N client sessions run queries in parallel against a single market, one
//! shared local mirror, one shared statistics registry, and one shared
//! (per-table sharded) semantic store — so every client benefits from every
//! other client's purchases. Overlapping in-flight purchases are coalesced
//! to a single flight ([`payless_exec::CallCoalescer`]); each query carries
//! its own telemetry recorder whose spend ledger is synthesized at the call
//! layer, attributing every shared purchase to the query that triggered it.
//!
//! [`run_mix`] is the deterministic multi-client workload driver behind the
//! CI serve-smoke: it replays a seeded query mix across K worker threads
//! (K = 1 is the serial oracle), then reconciles total spend against the
//! market's billing meter. See DESIGN.md "Concurrent serving & call
//! coalescing" for the invariants, and [`report`] for the JSON dump the
//! smoke compares across thread counts.

#![warn(missing_docs)]

pub mod report;
pub mod watchdog;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use payless_exec::{BatchPlanner, CallCoalescer, ExecConfig, Executor, RetryPolicy, SharedState};
use payless_geometry::QuerySpace;
use payless_market::DataMarket;
use payless_metrics::MetricsHub;
use payless_optimizer::{optimize, OptimizerConfig};
use payless_semantic::{
    Consistency, RewriteConfig, SemanticStore, SharedSemanticStore, StoreConfig,
};
use payless_sql::{analyze, parse, MapCatalog, SelectStmt, TableLocation};
use payless_stats::StatsRegistry;
use payless_storage::{Database, LocalTable};
use payless_telemetry::Recorder;
use payless_types::{PaylessError, Result};
use payless_workload::MixItem;

use payless_events::{EventJournal, EventKind, Severity};

pub use payless_exec::BatchConfig;
pub use report::{ClientSpend, QueryRow, ServeReport};
pub use watchdog::{TableDrift, Watchdog, WatchdogReport};

/// Serving-layer options. Everything is explicit — the library reads no
/// environment variables; the CLI and bench map `PAYLESS_*` knobs onto
/// these fields.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads replaying the mix. `1` is the serial oracle.
    pub threads: usize,
    /// Single-flight coalescing of overlapping market calls
    /// (`PAYLESS_COALESCE=0` maps to `false`).
    pub coalesce: bool,
    /// Store-freshness policy shared by every client.
    pub consistency: Consistency,
    /// Rewrite knobs. Defaults to [`RewriteConfig::exact`]: raw subtraction
    /// remainders never overlap stored coverage, so no record is bought
    /// twice and delivered spend is reproducible across thread
    /// interleavings — the property the serve-smoke's cross-thread
    /// reconciliation asserts. Single-tenant sessions keep Algorithm 1
    /// merging instead.
    pub rewrite: RewriteConfig,
    /// Retry/backoff policy for market calls. Fault-injected runs should
    /// use [`RetryPolicy::unlimited`] so every query eventually answers
    /// and runs stay comparable across thread counts.
    pub retry: RetryPolicy,
    /// Live metrics hub shared by every client session. When set, the
    /// call layer, coalescer, shared store, and serving driver all report
    /// into it (the CLI maps `PAYLESS_METRICS*` knobs onto this).
    pub metrics: Option<Arc<MetricsHub>>,
    /// The reconciliation watchdog samples the billing meter every this
    /// many completed queries while the mix runs.
    pub watchdog_every: u64,
    /// Fail a mix the moment the watchdog sees a violation instead of
    /// waiting for the exit reconciliation (`PAYLESS_METRICS_STRICT=1`).
    pub strict_reconcile: bool,
    /// Shared-store tuning: per-table view cap and compaction toggle
    /// (`PAYLESS_STORE_MAX_VIEWS` / `PAYLESS_STORE_COMPACT` map here).
    /// Applied to every table shard before the mix starts.
    pub store: StoreConfig,
    /// Cross-query batched purchasing: queries arriving within the window
    /// park their uncovered remainders with a shared [`BatchPlanner`]; one
    /// leader buys the merged remainder and the cost splits exactly across
    /// the members (`PAYLESS_BATCH_WINDOW_MS` / `PAYLESS_BATCH_MAX` map
    /// here). `None` (the default) buys per query, as before.
    pub batch: Option<BatchConfig>,
    /// Flight recorder shared by every client session: query lifecycle,
    /// call attempts/faults, coalescer claims, batch shares, store
    /// lifecycle, and watchdog samples all journal here (the CLI maps
    /// `PAYLESS_EVENTS*` knobs onto this). `None` costs nothing.
    pub events: Option<Arc<EventJournal>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 1,
            coalesce: true,
            consistency: Consistency::Weak,
            rewrite: RewriteConfig::exact(),
            retry: RetryPolicy::default(),
            metrics: None,
            watchdog_every: 8,
            strict_reconcile: false,
            store: StoreConfig::default(),
            batch: None,
            events: None,
        }
    }
}

/// A serving layer fronting one market: shared buyer-side state plus the
/// coalescing rendezvous. All methods take `&self`; wrap in an `Arc` to
/// share with worker threads.
pub struct Serve {
    market: Arc<DataMarket>,
    catalog: MapCatalog,
    state: SharedState,
    coalescer: CallCoalescer,
    /// Cross-query batching rendezvous; `Some` iff `cfg.batch` is set.
    batcher: Option<BatchPlanner>,
    /// Logical clock: each query gets a distinct `now`, like a session's
    /// per-query increment but shared across clients.
    clock: AtomicU64,
    cfg: ServeConfig,
}

impl Serve {
    /// Assemble a serving layer over `market`, registering every market
    /// table (like a single-tenant session does) plus the given local
    /// tables.
    pub fn new(market: Arc<DataMarket>, locals: &[LocalTable], cfg: ServeConfig) -> Self {
        Self::with_store(market, locals, cfg, SemanticStore::new())
    }

    /// As [`Serve::new`], but seeding the shared store from `store` — a
    /// warm store recovered from disk, whose coverage the serving layer
    /// keeps honoring so already-purchased regions are never re-bought.
    /// Market tables missing from `store` are registered fresh.
    pub fn with_store(
        market: Arc<DataMarket>,
        locals: &[LocalTable],
        cfg: ServeConfig,
        mut store: SemanticStore,
    ) -> Self {
        let mut catalog = MapCatalog::new();
        let mut stats = StatsRegistry::new();
        store.set_config(cfg.store);
        let mut db = Database::new();
        for name in market.table_names() {
            let schema = market.schema(&name).expect("listed table").clone();
            let cardinality = market.cardinality(&name).expect("listed table");
            catalog.add(schema.clone(), TableLocation::Market);
            stats.register(&schema, cardinality);
            store.register(QuerySpace::of(&schema));
        }
        for t in locals {
            catalog.add(t.schema.clone(), TableLocation::Local);
            stats.register(&t.schema, t.len() as u64);
            db.register(t.clone());
        }
        let state = SharedState::new(db, SharedSemanticStore::new(store), stats);
        let coalescer = match &cfg.metrics {
            Some(hub) => {
                state.store().attach_metrics(Arc::clone(hub));
                CallCoalescer::with_metrics(Arc::clone(hub))
            }
            None => CallCoalescer::new(),
        };
        if let Some(j) = &cfg.events {
            state.store().attach_events(Arc::clone(j));
        }
        let batcher = cfg.batch.map(|b| {
            let planner = match &cfg.metrics {
                Some(hub) => BatchPlanner::with_metrics(b, Arc::clone(hub)),
                None => BatchPlanner::new(b),
            };
            match &cfg.events {
                Some(j) => planner.with_events(Arc::clone(j)),
                None => planner,
            }
        });
        Serve {
            market,
            catalog,
            state,
            coalescer,
            batcher,
            clock: AtomicU64::new(0),
            cfg,
        }
    }

    /// The market this layer fronts.
    pub fn market(&self) -> &DataMarket {
        &self.market
    }

    /// The shared semantic store behind this layer — what a durability
    /// layer observes (spend log) and snapshots.
    pub fn shared_store(&self) -> &SharedSemanticStore {
        self.state.store()
    }

    /// Attach an observer for market deliveries landing in the local
    /// mirror ([`payless_exec::RowObserver`]) — the durability layer's row
    /// log. First caller wins, like every other attach hook.
    pub fn attach_row_observer(&self, observer: Arc<payless_exec::RowObserver>) {
        self.state.attach_row_observer(observer);
    }

    /// Insert recovered market rows into the local mirror without
    /// notifying the row observer (they are already durable). Unknown
    /// tables are an error — recovered data must match the market.
    pub fn seed_mirror(&self, table: &str, rows: Vec<payless_types::Row>) -> Result<()> {
        let schema = self
            .market
            .schema(table)
            .ok_or_else(|| payless_types::PaylessError::UnknownTable(table.into()))?
            .clone();
        self.state.seed_mirror(&schema, rows);
        Ok(())
    }

    /// A point-in-time copy of every market table's mirror rows — what the
    /// durability layer folds into its snapshot so recovered coverage
    /// always has its data.
    pub fn mirror_dump(&self) -> Vec<(String, Vec<payless_types::Row>)> {
        self.state.with_db(|db| {
            self.market
                .table_names()
                .into_iter()
                .filter_map(|name| {
                    let rows = db.table(&name).ok()?.rows().to_vec();
                    (!rows.is_empty()).then_some((name.to_string(), rows))
                })
                .collect()
        })
    }

    /// Attach a store-level recorder for the shared store's index
    /// counters. These are a property of the shared store, not of any one
    /// client query — which is why per-query recorders never see them.
    pub fn attach_store_recorder(&self, recorder: Arc<Recorder>) {
        self.state.store().attach_recorder(recorder);
    }

    /// Parse a workload template (shared across clients).
    pub fn prepare(&self, sql: &str) -> Result<SelectStmt> {
        parse(sql)
    }

    /// Run one client query: bind, analyze, optimize against point-in-time
    /// snapshots of the shared store and statistics, then execute against
    /// the shared state. Returns the query's result rows together with the
    /// telemetry snapshot of its private recorder (ledger, coalesce
    /// counters).
    pub fn run_query(
        &self,
        template: &SelectStmt,
        params: &[payless_types::Value],
    ) -> Result<(
        payless_exec::QueryResult,
        payless_telemetry::TelemetrySnapshot,
    )> {
        self.run_query_traced(template, params).1
    }

    /// As [`Serve::run_query`], also returning the query's causal id (its
    /// logical-clock tick) — the id every flight-recorder event for this
    /// query carries, and the argument `\why` takes.
    pub fn run_query_traced(
        &self,
        template: &SelectStmt,
        params: &[payless_types::Value],
    ) -> (
        u64,
        Result<(
            payless_exec::QueryResult,
            payless_telemetry::TelemetrySnapshot,
        )>,
    ) {
        let started = self.cfg.metrics.as_ref().map(|_| Instant::now());
        let now = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(j) = &self.cfg.events {
            j.emit(Some(now), Severity::Info, || EventKind::QueryStart);
        }
        let out = self.run_query_inner(template, params, now);
        if let Some(j) = &self.cfg.events {
            let (ok, pages, wasted_pages) = match &out {
                Ok((_, snap)) => (true, snap.total_pages(), snap.wasted_pages()),
                Err(_) => (false, 0, 0),
            };
            let sev = if ok { Severity::Info } else { Severity::Warn };
            j.emit(Some(now), sev, || EventKind::QueryDone {
                ok,
                pages,
                wasted_pages,
            });
        }
        if let (Some(hub), Some(t0)) = (&self.cfg.metrics, started) {
            hub.serve_queries.inc(1);
            hub.serve_query_nanos.record(t0.elapsed().as_nanos() as u64);
            hub.maybe_roll();
        }
        (now, out)
    }

    fn run_query_inner(
        &self,
        template: &SelectStmt,
        params: &[payless_types::Value],
        now: u64,
    ) -> Result<(
        payless_exec::QueryResult,
        payless_telemetry::TelemetrySnapshot,
    )> {
        let recorder = Recorder::enabled();
        let bound = template.bind(params)?;
        let query = analyze(&bound, &self.catalog)?;
        let exec_cfg = ExecConfig {
            sqr: true,
            rewrite: self.cfg.rewrite.clone(),
            consistency: self.cfg.consistency,
            recorder: Some(recorder.clone()),
            retry: self.cfg.retry.clone(),
            // No recorder is attached to the shared market, so the call
            // layer writes this query's ledger itself.
            synthesize_ledger: true,
            metrics: self.cfg.metrics.clone(),
            events: self.cfg.events.clone(),
        };
        if query.unsatisfiable {
            let executor =
                Executor::shared(&query, &self.market, &self.state, &exec_cfg, now, None);
            let result = executor.empty_result()?;
            return Ok((result, recorder.take()));
        }
        let mut opt_cfg = OptimizerConfig::payless();
        opt_cfg.rewrite = self.cfg.rewrite.clone();
        opt_cfg.consistency = self.cfg.consistency;
        // Plan against point-in-time snapshots: cheap (Arc'd views), and
        // the executor re-rewrites against live state anyway.
        let store_snap = self.state.store().snapshot();
        let stats_snap = self.state.stats_snapshot();
        let optimized = optimize(
            &query,
            &stats_snap,
            &store_snap,
            self.market.as_ref(),
            &opt_cfg,
            now,
        )?;
        // The activity bracket lets the planner's quiescence trigger see
        // this query: when every active query is parked, batches seal
        // immediately instead of waiting out the window.
        let _activity = self.batcher.as_ref().map(|b| b.activity());
        let mut executor = Executor::shared(
            &query,
            &self.market,
            &self.state,
            &exec_cfg,
            now,
            self.cfg.coalesce.then_some(&self.coalescer),
        )
        .with_batcher(self.batcher.as_ref());
        let result = executor.execute(&optimized.plan)?;
        Ok((result, recorder.take()))
    }
}

/// Order-insensitive digest of a result: FNV-1a over the sorted rendered
/// rows. Insensitive to mirror insertion order, which varies across
/// interleavings; sensitive to multiplicity and every value.
pub fn digest_rows(result: &payless_exec::QueryResult) -> u64 {
    digest_row_slice(&result.rows)
}

/// [`digest_rows`] over a bare row slice — what a network client computes
/// from decoded wire rows to compare against the in-process oracle.
pub fn digest_row_slice(rows: &[payless_types::Row]) -> u64 {
    let mut rendered: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    rendered.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in &rendered {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ["ab"] and ["a","b"] differ.
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Dumps the flight recorder's black box when the enclosing scope unwinds
/// (a watchdog `finish` assert, or any panic that escapes a worker): the
/// journal's last events land on disk before the process dies.
struct BlackBoxOnPanic<'a>(Option<&'a EventJournal>);

impl Drop for BlackBoxOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Some(j) = self.0 {
                let _ = j.dump_blackbox("panic during run_mix");
            }
        }
    }
}

/// Replay `mix` across `serve.cfg.threads` workers pulling from one global
/// queue, then reconcile: the sum of every query's synthesized ledger must
/// equal the market meter's delta, page for page — clean and under
/// injected faults. Panics on reconciliation failure (this is the driver
/// the CI smoke trusts); query errors are returned.
///
/// Post-mortem: when the journal has a black-box path configured, a strict
/// watchdog abort, a failed query, or a panicking reconciliation dumps the
/// last events as JSONL before this function returns or unwinds.
pub fn run_mix(serve: &Serve, mix: &[MixItem], templates: &[SelectStmt]) -> Result<ServeReport> {
    let threads = serve.cfg.threads.max(1);
    let _blackbox_guard = BlackBoxOnPanic(serve.cfg.events.as_deref());
    let meter_before = serve.market.bill();
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<QueryRow>>> = Mutex::new(vec![None; mix.len()]);
    let failure: Mutex<Option<PaylessError>> = Mutex::new(None);
    let mut dog = Watchdog::new(
        &serve.market,
        serve.cfg.watchdog_every,
        serve.cfg.strict_reconcile,
        threads,
        serve.cfg.metrics.clone(),
    );
    if let Some(b) = &serve.batcher {
        // Batch settlements attribute pages to queries that have not
        // completed yet; the watchdog's drift bound must allow exactly
        // that much (see `watchdog.rs`).
        dog = dog.with_deferred(b.deferred_handle());
    }
    if let Some(j) = &serve.cfg.events {
        dog = dog.with_events(Arc::clone(j));
    }

    std::thread::scope(|s| {
        for _ in 0..threads.min(mix.len().max(1)) {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::SeqCst);
                if idx >= mix.len() {
                    return;
                }
                let item = &mix[idx];
                let t0 = Instant::now();
                let (query_id, outcome) =
                    serve.run_query_traced(&templates[item.template], &item.params);
                let outcome = outcome.and_then(|(result, snap)| {
                    dog.note_query(&snap)?;
                    Ok((result, snap))
                });
                match outcome {
                    Ok((result, snap)) => {
                        let counter = |name: &str| {
                            snap.counters
                                .iter()
                                .find(|(k, _)| *k == name)
                                .map(|(_, v)| *v)
                                .unwrap_or(0)
                        };
                        let row = QueryRow {
                            query_id,
                            client: item.client as u64,
                            template: item.template as u64,
                            digest: digest_rows(&result),
                            rows: result.rows.len() as u64,
                            pages: snap.total_pages(),
                            wasted_pages: snap.wasted_pages(),
                            records: snap.total_records(),
                            price: snap.total_price(),
                            coalesce_waits: counter("coalesce.waits"),
                            saved_pages: counter("coalesce.saved_pages"),
                            batch_joins: counter("batch.joins"),
                            shared_pages: counter("batch.shared_pages"),
                            wall_nanos: t0.elapsed().as_nanos() as u64,
                        };
                        slots.lock().unwrap_or_else(|e| e.into_inner())[idx] = Some(row);
                    }
                    Err(e) => {
                        let mut f = failure.lock().unwrap_or_else(|e| e.into_inner());
                        if f.is_none() {
                            *f = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        // Post-mortem dump: a strict watchdog abort (or any failing query)
        // leaves the journal's last events on disk for `\why`-style
        // analysis. First dump wins; errors writing it never mask `e`.
        if let Some(j) = &serve.cfg.events {
            let _ = j.dump_blackbox(&format!("run_mix aborted: {e}"));
        }
        return Err(e);
    }
    let per_query: Vec<QueryRow> = slots
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|s| s.expect("no failure recorded, so every slot is filled"))
        .collect();

    // Final reconciliation at quiescence: global and per-table, exact.
    let dog_report = dog.finish();

    let meter_after = serve.market.bill();
    let meter_calls = meter_after.calls() - meter_before.calls();
    let meter_transactions = meter_after.transactions() - meter_before.transactions();
    let meter_records = meter_after.records() - meter_before.records();

    let ledger_pages: u64 = per_query.iter().map(|q| q.pages).sum();
    assert_eq!(
        ledger_pages, meter_transactions,
        "spend ledger must reconcile with the billing meter: \
         Σ per-query ledger pages = {ledger_pages}, meter delta = {meter_transactions}"
    );

    let mut per_client: Vec<ClientSpend> = Vec::new();
    for q in &per_query {
        match per_client.iter_mut().find(|c| c.client == q.client) {
            Some(c) => c.absorb(q),
            None => {
                let mut c = ClientSpend::new(q.client);
                c.absorb(q);
                per_client.push(c);
            }
        }
    }
    per_client.sort_by_key(|c| c.client);
    for c in &mut per_client {
        let mut samples: Vec<u64> = per_query
            .iter()
            .filter(|q| q.client == c.client)
            .map(|q| q.wall_nanos)
            .collect();
        c.set_latencies(&mut samples);
    }

    Ok(ServeReport {
        threads: threads as u64,
        queries: mix.len() as u64,
        coalesce: serve.cfg.coalesce,
        total_rows: per_query.iter().map(|q| q.rows).sum(),
        total_pages: ledger_pages,
        wasted_pages: per_query.iter().map(|q| q.wasted_pages).sum(),
        total_records: per_query.iter().map(|q| q.records).sum(),
        total_price: per_query.iter().fold(0.0, |a, q| a + q.price),
        coalesce_waits: per_query.iter().map(|q| q.coalesce_waits).sum(),
        saved_pages: per_query.iter().map(|q| q.saved_pages).sum(),
        batch: serve.cfg.batch.is_some(),
        batch_joins: per_query.iter().map(|q| q.batch_joins).sum(),
        shared_pages: per_query.iter().map(|q| q.shared_pages).sum(),
        meter_calls,
        meter_transactions,
        meter_records,
        watchdog_samples: dog_report.samples,
        watchdog_max_drift_pages: dog_report.max_drift_pages,
        watchdog_tables: dog_report.last_sample,
        per_client,
        per_query,
        ..ServeReport::default()
    })
}
