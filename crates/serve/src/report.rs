//! The serving driver's JSON report — what the CI serve-smoke dumps at
//! each thread count and reconciles across runs.

use payless_json::{FromJson, Json, JsonError, ToJson};

use crate::watchdog::TableDrift;

/// Read an integer field that older report dumps predate, defaulting to 0.
fn u64_or_zero(j: &Json, key: &str) -> Result<u64, JsonError> {
    match j.get_opt(key) {
        Some(v) => u64::from_json(v),
        None => Ok(0),
    }
}

/// Read a flag field that older report dumps predate, defaulting to false.
fn bool_or_false(j: &Json, key: &str) -> Result<bool, JsonError> {
    match j.get_opt(key) {
        Some(v) => v.as_bool(),
        None => Ok(false),
    }
}

/// One query of the mix, in global submission order. Submission order is
//  identical across thread counts, so validators compare rows pairwise.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// The query's causal id (the serving layer's logical-clock tick) —
    /// the id its flight-recorder events carry and `\why` takes. Zero in
    /// dumps written before the flight recorder existed.
    pub query_id: u64,
    /// Client session that issued the query.
    pub client: u64,
    /// Workload template index.
    pub template: u64,
    /// Order-insensitive digest of the result rows
    /// ([`crate::digest_rows`]).
    pub digest: u64,
    /// Result row count.
    pub rows: u64,
    /// Pages billed to this query (its synthesized ledger total).
    pub pages: u64,
    /// Pages billed without a usable delivery (injected faults).
    pub wasted_pages: u64,
    /// Records delivered to this query.
    pub records: u64,
    /// Money billed to this query.
    pub price: f64,
    /// Times this query waited on another query's in-flight purchase.
    pub coalesce_waits: u64,
    /// Estimated pages those waits avoided buying.
    pub saved_pages: u64,
    /// Times this query parked a remainder in a purchase batch.
    pub batch_joins: u64,
    /// Pages of this query's spend that came from a shared (≥2-member)
    /// batch purchase — its exact attribution share, not the batch total.
    pub shared_pages: u64,
    /// End-to-end wall-clock latency of the query, in nanoseconds.
    pub wall_nanos: u64,
}

impl ToJson for QueryRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("query_id", self.query_id.to_json()),
            ("client", self.client.to_json()),
            ("template", self.template.to_json()),
            ("digest", self.digest.to_json()),
            ("rows", self.rows.to_json()),
            ("pages", self.pages.to_json()),
            ("wasted_pages", self.wasted_pages.to_json()),
            ("records", self.records.to_json()),
            ("price", self.price.to_json()),
            ("coalesce_waits", self.coalesce_waits.to_json()),
            ("saved_pages", self.saved_pages.to_json()),
            ("batch_joins", self.batch_joins.to_json()),
            ("shared_pages", self.shared_pages.to_json()),
            ("wall_nanos", self.wall_nanos.to_json()),
        ])
    }
}

impl FromJson for QueryRow {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(QueryRow {
            query_id: u64_or_zero(j, "query_id")?,
            client: u64::from_json(j.get("client")?)?,
            template: u64::from_json(j.get("template")?)?,
            digest: u64::from_json(j.get("digest")?)?,
            rows: u64::from_json(j.get("rows")?)?,
            pages: u64::from_json(j.get("pages")?)?,
            wasted_pages: u64::from_json(j.get("wasted_pages")?)?,
            records: u64::from_json(j.get("records")?)?,
            price: f64::from_json(j.get("price")?)?,
            coalesce_waits: u64::from_json(j.get("coalesce_waits")?)?,
            saved_pages: u64::from_json(j.get("saved_pages")?)?,
            batch_joins: u64_or_zero(j, "batch_joins")?,
            shared_pages: u64_or_zero(j, "shared_pages")?,
            wall_nanos: u64_or_zero(j, "wall_nanos")?,
        })
    }
}

impl ToJson for TableDrift {
    fn to_json(&self) -> Json {
        Json::obj([
            ("table", self.table.to_json()),
            ("attributed_pages", self.attributed_pages.to_json()),
            ("meter_pages", self.meter_pages.to_json()),
        ])
    }
}

impl FromJson for TableDrift {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(TableDrift {
            table: String::from_json(j.get("table")?)?,
            attributed_pages: u64::from_json(j.get("attributed_pages")?)?,
            meter_pages: u64::from_json(j.get("meter_pages")?)?,
        })
    }
}

/// Spend attributed to one client session across the mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSpend {
    /// Client session index.
    pub client: u64,
    /// Queries the client issued.
    pub queries: u64,
    /// Pages billed to the client's queries.
    pub pages: u64,
    /// Money billed to the client's queries.
    pub price: f64,
    /// Median end-to-end query latency for this client, in nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile end-to-end query latency, in nanoseconds.
    pub p95_nanos: u64,
    /// 99th-percentile end-to-end query latency, in nanoseconds.
    pub p99_nanos: u64,
}

impl ClientSpend {
    /// A zeroed row for `client`.
    pub fn new(client: u64) -> Self {
        ClientSpend {
            client,
            queries: 0,
            pages: 0,
            price: 0.0,
            p50_nanos: 0,
            p95_nanos: 0,
            p99_nanos: 0,
        }
    }

    /// Fold one query's spend into this client's totals.
    pub fn absorb(&mut self, q: &QueryRow) {
        self.queries += 1;
        self.pages += q.pages;
        self.price += q.price;
    }

    /// Fill the latency percentiles from this client's per-query
    /// wall-clock samples (exact nearest-rank over the sorted samples).
    pub fn set_latencies(&mut self, samples: &mut [u64]) {
        if samples.is_empty() {
            return;
        }
        samples.sort_unstable();
        let rank = |p: f64| {
            let idx = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[idx.min(samples.len() - 1)]
        };
        self.p50_nanos = rank(0.50);
        self.p95_nanos = rank(0.95);
        self.p99_nanos = rank(0.99);
    }
}

impl ToJson for ClientSpend {
    fn to_json(&self) -> Json {
        Json::obj([
            ("client", self.client.to_json()),
            ("queries", self.queries.to_json()),
            ("pages", self.pages.to_json()),
            ("price", self.price.to_json()),
            ("p50_nanos", self.p50_nanos.to_json()),
            ("p95_nanos", self.p95_nanos.to_json()),
            ("p99_nanos", self.p99_nanos.to_json()),
        ])
    }
}

impl FromJson for ClientSpend {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(ClientSpend {
            client: u64::from_json(j.get("client")?)?,
            queries: u64::from_json(j.get("queries")?)?,
            pages: u64::from_json(j.get("pages")?)?,
            price: f64::from_json(j.get("price")?)?,
            p50_nanos: u64_or_zero(j, "p50_nanos")?,
            p95_nanos: u64_or_zero(j, "p95_nanos")?,
            p99_nanos: u64_or_zero(j, "p99_nanos")?,
        })
    }
}

/// One serve run, reconciled: the driver asserts Σ per-query ledger pages
/// equals the meter's transaction delta before this report exists.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    /// Mix seed (filled by the caller that built the mix).
    pub seed: u64,
    /// Client sessions in the mix (filled by the caller).
    pub clients: u64,
    /// Worker threads that replayed the mix.
    pub threads: u64,
    /// Queries replayed.
    pub queries: u64,
    /// Market page size (filled by the caller).
    pub page_size: u64,
    /// Was single-flight coalescing on?
    pub coalesce: bool,
    /// Was batched cross-query purchasing on?
    pub batch: bool,
    /// Fault-injection seed, if the market was fault-injected (caller).
    pub fault_seed: Option<u64>,
    /// Total result rows across queries.
    pub total_rows: u64,
    /// Σ per-query ledger pages (== meter transaction delta).
    pub total_pages: u64,
    /// Pages billed without a usable delivery.
    pub wasted_pages: u64,
    /// Records delivered across queries.
    pub total_records: u64,
    /// Money billed across queries.
    pub total_price: f64,
    /// Total coalescing waits.
    pub coalesce_waits: u64,
    /// Estimated pages avoided by coalescing waits.
    pub saved_pages: u64,
    /// Total batch joins across queries.
    pub batch_joins: u64,
    /// Σ per-query shared-batch attribution shares.
    pub shared_pages: u64,
    /// Market calls in the meter delta.
    pub meter_calls: u64,
    /// Meter transaction (page) delta — the seller's view of the bill.
    pub meter_transactions: u64,
    /// Meter record delta. Under injected truncation the seller counts
    /// pre-truncation records the buyer never saw, so this only equals
    /// [`ServeReport::total_records`] on clean runs.
    pub meter_records: u64,
    /// Mid-run reconciliation samples taken by the watchdog.
    pub watchdog_samples: u64,
    /// Largest in-flight drift (meter minus attributed pages) the
    /// watchdog sampled; returns to 0 at quiescence.
    pub watchdog_max_drift_pages: u64,
    /// Per-table breakdown from the watchdog's last reconciliation (the
    /// exit reconciliation on a completed mix): attributed vs metered
    /// pages for every table the run touched.
    pub watchdog_tables: Vec<TableDrift>,
    /// Spend attribution by client.
    pub per_client: Vec<ClientSpend>,
    /// Every query, in global submission order.
    pub per_query: Vec<QueryRow>,
}

impl ServeReport {
    /// Pages billed for usable deliveries (total minus wasted). This is
    /// the quantity that can only shrink when coalescing is on: wasted
    /// pages depend on where injected faults land, which differs across
    /// interleavings.
    pub fn delivered_pages(&self) -> u64 {
        self.total_pages - self.wasted_pages
    }
}

impl ToJson for ServeReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seed", self.seed.to_json()),
            ("clients", self.clients.to_json()),
            ("threads", self.threads.to_json()),
            ("queries", self.queries.to_json()),
            ("page_size", self.page_size.to_json()),
            ("coalesce", Json::Bool(self.coalesce)),
            ("batch", Json::Bool(self.batch)),
            (
                "fault_seed",
                match self.fault_seed {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
            ("total_rows", self.total_rows.to_json()),
            ("total_pages", self.total_pages.to_json()),
            ("wasted_pages", self.wasted_pages.to_json()),
            ("total_records", self.total_records.to_json()),
            ("total_price", self.total_price.to_json()),
            ("coalesce_waits", self.coalesce_waits.to_json()),
            ("saved_pages", self.saved_pages.to_json()),
            ("batch_joins", self.batch_joins.to_json()),
            ("shared_pages", self.shared_pages.to_json()),
            ("meter_calls", self.meter_calls.to_json()),
            ("meter_transactions", self.meter_transactions.to_json()),
            ("meter_records", self.meter_records.to_json()),
            ("watchdog_samples", self.watchdog_samples.to_json()),
            (
                "watchdog_max_drift_pages",
                self.watchdog_max_drift_pages.to_json(),
            ),
            (
                "watchdog_tables",
                Json::Arr(self.watchdog_tables.iter().map(|t| t.to_json()).collect()),
            ),
            (
                "per_client",
                Json::Arr(self.per_client.iter().map(|c| c.to_json()).collect()),
            ),
            (
                "per_query",
                Json::Arr(self.per_query.iter().map(|q| q.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for ServeReport {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let fault_seed = match j.get("fault_seed")? {
            Json::Null => None,
            other => Some(u64::from_json(other)?),
        };
        Ok(ServeReport {
            seed: u64::from_json(j.get("seed")?)?,
            clients: u64::from_json(j.get("clients")?)?,
            threads: u64::from_json(j.get("threads")?)?,
            queries: u64::from_json(j.get("queries")?)?,
            page_size: u64::from_json(j.get("page_size")?)?,
            coalesce: j.get("coalesce")?.as_bool()?,
            batch: bool_or_false(j, "batch")?,
            fault_seed,
            total_rows: u64::from_json(j.get("total_rows")?)?,
            total_pages: u64::from_json(j.get("total_pages")?)?,
            wasted_pages: u64::from_json(j.get("wasted_pages")?)?,
            total_records: u64::from_json(j.get("total_records")?)?,
            total_price: f64::from_json(j.get("total_price")?)?,
            coalesce_waits: u64::from_json(j.get("coalesce_waits")?)?,
            saved_pages: u64::from_json(j.get("saved_pages")?)?,
            batch_joins: u64_or_zero(j, "batch_joins")?,
            shared_pages: u64_or_zero(j, "shared_pages")?,
            meter_calls: u64::from_json(j.get("meter_calls")?)?,
            meter_transactions: u64::from_json(j.get("meter_transactions")?)?,
            meter_records: u64::from_json(j.get("meter_records")?)?,
            watchdog_samples: u64_or_zero(j, "watchdog_samples")?,
            watchdog_max_drift_pages: u64_or_zero(j, "watchdog_max_drift_pages")?,
            watchdog_tables: match j.get_opt("watchdog_tables") {
                Some(v) => v
                    .as_arr()?
                    .iter()
                    .map(TableDrift::from_json)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
            per_client: j
                .get("per_client")?
                .as_arr()?
                .iter()
                .map(ClientSpend::from_json)
                .collect::<Result<_, _>>()?,
            per_query: j
                .get("per_query")?
                .as_arr()?
                .iter()
                .map(QueryRow::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = ServeReport {
            seed: 48879,
            clients: 4,
            threads: 4,
            queries: 2,
            page_size: 1,
            coalesce: true,
            batch: true,
            fault_seed: Some(7),
            total_rows: 10,
            total_pages: 12,
            wasted_pages: 2,
            total_records: 12,
            total_price: 0.6,
            coalesce_waits: 1,
            saved_pages: 3,
            batch_joins: 2,
            shared_pages: 4,
            meter_calls: 5,
            meter_transactions: 12,
            meter_records: 14,
            watchdog_samples: 2,
            watchdog_max_drift_pages: 4,
            watchdog_tables: vec![TableDrift {
                table: "T".into(),
                attributed_pages: 12,
                meter_pages: 12,
            }],
            per_client: vec![ClientSpend {
                client: 0,
                queries: 2,
                pages: 12,
                price: 0.6,
                p50_nanos: 1_000,
                p95_nanos: 9_000,
                p99_nanos: 9_500,
            }],
            per_query: vec![QueryRow {
                query_id: 2,
                client: 0,
                template: 1,
                digest: u64::MAX - 3, // exceeds i64: exercises the string fallback
                rows: 5,
                pages: 6,
                wasted_pages: 1,
                records: 6,
                price: 0.3,
                coalesce_waits: 1,
                saved_pages: 3,
                batch_joins: 2,
                shared_pages: 4,
                wall_nanos: 5_500,
            }],
        };
        let text = report.to_json().to_string_pretty();
        let parsed = ServeReport::from_json(&payless_json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(parsed.delivered_pages(), 10);
    }

    #[test]
    fn pre_metrics_dumps_still_parse() {
        // Reports written before latency/watchdog fields existed must load
        // with those fields zeroed, not fail.
        let mut j = ServeReport::default().to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "watchdog_samples"
                        | "watchdog_max_drift_pages"
                        | "watchdog_tables"
                        | "batch"
                        | "batch_joins"
                        | "shared_pages"
                )
            });
        }
        let parsed = ServeReport::from_json(&j).unwrap();
        assert_eq!(parsed.watchdog_samples, 0);
        assert_eq!(parsed.watchdog_max_drift_pages, 0);
        assert!(parsed.watchdog_tables.is_empty());
        assert!(!parsed.batch);
        assert_eq!(parsed.batch_joins, 0);
        assert_eq!(parsed.shared_pages, 0);

        // Per-query rows from before the flight recorder lack query_id.
        let mut j = ServeReport {
            per_query: vec![QueryRow {
                query_id: 7,
                client: 0,
                template: 0,
                digest: 0,
                rows: 0,
                pages: 0,
                wasted_pages: 0,
                records: 0,
                price: 0.0,
                coalesce_waits: 0,
                saved_pages: 0,
                batch_joins: 0,
                shared_pages: 0,
                wall_nanos: 0,
            }],
            ..Default::default()
        }
        .to_json();
        if let Json::Obj(fields) = &mut j {
            if let Some((_, Json::Arr(rows))) = fields.iter_mut().find(|(k, _)| k == "per_query") {
                for row in rows {
                    if let Json::Obj(row_fields) = row {
                        row_fields.retain(|(k, _)| k != "query_id");
                    }
                }
            }
        }
        let parsed = ServeReport::from_json(&j).unwrap();
        assert_eq!(parsed.per_query[0].query_id, 0);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let mut spend = ClientSpend::new(0);
        let mut samples: Vec<u64> = (1..=100).rev().collect();
        spend.set_latencies(&mut samples);
        assert_eq!(spend.p50_nanos, 51); // round(99 * .5) = 50 → samples[50]
        assert_eq!(spend.p95_nanos, 95);
        assert_eq!(spend.p99_nanos, 99);

        let mut single = ClientSpend::new(1);
        single.set_latencies(&mut [42]);
        assert_eq!((single.p50_nanos, single.p99_nanos), (42, 42));

        let mut empty = ClientSpend::new(2);
        empty.set_latencies(&mut Vec::new());
        assert_eq!(empty.p50_nanos, 0);
    }

    #[test]
    fn missing_fault_seed_is_none() {
        let report = ServeReport {
            fault_seed: None,
            ..Default::default()
        };
        let text = report.to_json().to_string_compact();
        let parsed = ServeReport::from_json(&payless_json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.fault_seed, None);
    }
}
