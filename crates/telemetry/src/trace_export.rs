//! Chrome-trace export: turn drained [`TelemetrySnapshot`]s into the JSON
//! object format understood by `chrome://tracing` and Perfetto.
//!
//! Each query becomes one logical thread (`tid`) inside a single process,
//! so a session's queries stack vertically in the viewer. Spans map to
//! complete (`"ph": "X"`) events; ledger lines, point events, and q-error
//! scores map to instant (`"ph": "i"`) events carrying their payload in
//! `args`. Timestamps are the recorder's epoch-relative nanosecond stamps,
//! converted to the microseconds the format requires.

use crate::TelemetrySnapshot;
use payless_json::{Json, ToJson};

/// Accumulates queries into one `chrome://tracing` document.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<Json>,
    queries: u64,
}

/// Microseconds (possibly fractional) from a nanosecond stamp.
fn us(nanos: u64) -> Json {
    (nanos as f64 / 1e3).to_json()
}

impl ChromeTraceBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries added so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// `true` when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Add one query's drained telemetry as the next logical thread.
    /// `name` labels the thread lane (typically the SQL text).
    pub fn add_query(&mut self, name: &str, snap: &TelemetrySnapshot) {
        self.queries += 1;
        let tid = self.queries;
        let lane = |ph: &str, name: &str, ts: Json| {
            vec![
                ("name", Json::str(name)),
                ("ph", Json::str(ph)),
                ("pid", 1u64.to_json()),
                ("tid", tid.to_json()),
                ("ts", ts),
            ]
        };
        // Thread-name metadata so the viewer shows the SQL, not a number.
        self.events.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", 1u64.to_json()),
            ("tid", tid.to_json()),
            ("args", Json::obj([("name", Json::str(name))])),
        ]));
        for sp in &snap.spans {
            let mut fields = lane("X", sp.label, us(sp.start_nanos));
            fields.push(("cat", Json::str("span")));
            fields.push(("dur", us(sp.nanos)));
            if let Some(d) = &sp.detail {
                fields.push(("args", Json::obj([("detail", Json::str(d.as_str()))])));
            }
            self.events.push(Json::obj(fields));
        }
        for t in &snap.ledger {
            let label = format!("buy {} ({})", t.table, t.kind.label());
            let mut fields = lane("i", &label, us(t.at_nanos));
            fields.push(("cat", Json::str("ledger")));
            fields.push(("s", Json::str("t")));
            fields.push(("args", t.to_json()));
            self.events.push(Json::obj(fields));
        }
        for e in &snap.events {
            let mut fields = lane("i", e.label, us(e.at_nanos));
            fields.push(("cat", Json::str("event")));
            fields.push(("s", Json::str("t")));
            fields.push((
                "args",
                Json::obj([("detail", Json::str(e.detail.as_str()))]),
            ));
            self.events.push(Json::obj(fields));
        }
        for q in &snap.qerrors {
            let label = format!("q-error {} ({})", q.table, q.estimator);
            // q-errors carry no stamp of their own; anchor them at the lane
            // end so they read as post-hoc scores.
            let at = snap.ledger.last().map(|t| t.at_nanos).unwrap_or_default();
            let mut fields = lane("i", &label, us(at));
            fields.push(("cat", Json::str("q-error")));
            fields.push(("s", Json::str("t")));
            fields.push(("args", q.to_json()));
            self.events.push(Json::obj(fields));
        }
    }

    /// Produce the final trace document. `other_data` is free-form metadata
    /// (the session-wide spend rollup goes here).
    pub fn finish(self, other_data: Json) -> Json {
        Json::obj([
            ("traceEvents", Json::Arr(self.events)),
            ("otherData", other_data),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CallKind, QErrorRecord, SpanRecord, TransactionRecord};
    use std::sync::Arc;

    fn snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            spans: vec![SpanRecord {
                start_seq: 0,
                label: "phase.execute",
                detail: Some("Weather".into()),
                start_nanos: 1_000,
                nanos: 5_000,
            }],
            ledger: vec![TransactionRecord {
                seq: 0,
                dataset: Arc::from("WHW"),
                table: Arc::from("Weather"),
                kind: CallKind::Remainder,
                records: 250,
                page_size: 100,
                pages: 3,
                price: 3.0,
                wasted: false,
                at_nanos: 2_500,
            }],
            qerrors: vec![QErrorRecord {
                table: Arc::from("Weather"),
                estimator: "multi",
                estimate: 200.0,
                actual: 250,
                q: 1.25,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn export_round_trips_through_the_json_crate() {
        let mut b = ChromeTraceBuilder::new();
        assert!(b.is_empty());
        b.add_query("SELECT * FROM Weather", &snapshot());
        assert!(!b.is_empty());
        let doc = b.finish(Json::obj([("total_price", 3.0.to_json())]));
        let text = doc.to_string_pretty();
        let parsed = payless_json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // metadata + span + ledger + q-error
        assert_eq!(events.len(), 4);
        let span = events
            .iter()
            .find(|e| e.get_opt("ph").and_then(|p| p.as_str().ok()) == Some("X"))
            .expect("complete event for the span");
        assert_eq!(span.get("ts").unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(span.get("dur").unwrap().as_f64().unwrap(), 5.0);
        let instants: Vec<_> = events
            .iter()
            .filter(|e| e.get_opt("ph").and_then(|p| p.as_str().ok()) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 2);
        assert_eq!(
            parsed
                .get("otherData")
                .unwrap()
                .get("total_price")
                .unwrap()
                .as_f64()
                .unwrap(),
            3.0
        );
    }

    #[test]
    fn queries_land_on_distinct_lanes() {
        let mut b = ChromeTraceBuilder::new();
        b.add_query("q1", &snapshot());
        b.add_query("q2", &snapshot());
        assert_eq!(b.queries(), 2);
        let doc = b.finish(Json::obj([]));
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap().to_vec();
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(tids.len(), 2);
    }
}
