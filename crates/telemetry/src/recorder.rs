use crate::metrics::Histogram;
use crate::{
    CallKind, EventRecord, QErrorRecord, SpanRecord, SqrStats, TelemetrySnapshot, TransactionRecord,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Thread-safe telemetry sink shared by every layer of the pipeline.
///
/// A recorder starts disabled. While disabled, every entry point returns
/// after a single relaxed atomic load — no lock, no allocation — so leaving
/// a recorder attached costs nearly nothing. Detail strings and transaction
/// records are built inside closures that only run when enabled.
pub struct Recorder {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

struct Inner {
    ledger: Vec<TransactionRecord>,
    sqr: SqrStats,
    spans: Vec<SpanRecord>,
    span_seq: u64,
    events: Vec<EventRecord>,
    qerrors: Vec<QErrorRecord>,
    counters: BTreeMap<&'static str, u64>,
    durations: BTreeMap<&'static str, Histogram>,
    sizes: BTreeMap<&'static str, Histogram>,
    call_kind: CallKind,
    /// Time origin all records are stamped against; reset by
    /// [`Recorder::begin_epoch`] so timestamps are per-query.
    epoch: Instant,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            ledger: Vec::new(),
            sqr: SqrStats::default(),
            spans: Vec::new(),
            span_seq: 0,
            events: Vec::new(),
            qerrors: Vec::new(),
            counters: BTreeMap::new(),
            durations: BTreeMap::new(),
            sizes: BTreeMap::new(),
            call_kind: CallKind::default(),
            epoch: Instant::now(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner::default()),
        }
    }
}

impl Recorder {
    /// A recorder that is already enabled.
    pub fn enabled() -> Arc<Recorder> {
        let rec = Recorder::default();
        rec.set_enabled(true);
        Arc::new(rec)
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        if !self.is_enabled() {
            return None;
        }
        Some(f(&mut self.inner.lock().expect("telemetry poisoned")))
    }

    /// Append a market transaction to the spend ledger. The record is built
    /// lazily; `seq`, call kind, and the epoch-relative timestamp are filled
    /// in by the recorder.
    pub fn transaction(&self, build: impl FnOnce() -> TransactionRecord) {
        self.with_inner(|inner| {
            let mut record = build();
            record.seq = inner.ledger.len() as u64;
            record.kind = inner.call_kind;
            record.at_nanos = inner.epoch.elapsed().as_nanos() as u64;
            inner.ledger.push(record);
        });
    }

    /// Score one cardinality estimate against its actual. The record is
    /// built lazily, like [`Recorder::transaction`].
    pub fn q_error(&self, build: impl FnOnce() -> QErrorRecord) {
        self.with_inner(|inner| inner.qerrors.push(build()));
    }

    /// Set the call shape for subsequent [`Recorder::transaction`] calls.
    /// The executor sets this before issuing market requests.
    pub fn set_call_kind(&self, kind: CallKind) {
        self.with_inner(|inner| inner.call_kind = kind);
    }

    pub fn sqr_full_hit(&self) {
        self.with_inner(|inner| inner.sqr.full_hits += 1);
    }

    pub fn sqr_partial_hit(&self) {
        self.with_inner(|inner| inner.sqr.partial_hits += 1);
    }

    pub fn sqr_miss(&self) {
        self.with_inner(|inner| inner.sqr.misses += 1);
    }

    /// Increment a monotonic counter.
    pub fn count(&self, name: &'static str, delta: u64) {
        self.with_inner(|inner| *inner.counters.entry(name).or_insert(0) += delta);
    }

    /// Record one duration sample (nanoseconds).
    pub fn record_duration(&self, name: &'static str, nanos: u64) {
        self.with_inner(|inner| inner.durations.entry(name).or_default().record(nanos));
    }

    /// Record one size sample (bytes, tuples, pages, ...).
    pub fn record_size(&self, name: &'static str, value: u64) {
        self.with_inner(|inner| inner.sizes.entry(name).or_default().record(value));
    }

    /// Emit a point event; `detail` runs only when recording is on.
    pub fn event(&self, label: &'static str, detail: impl FnOnce() -> String) {
        self.with_inner(|inner| {
            let detail = detail();
            let at_nanos = inner.epoch.elapsed().as_nanos() as u64;
            inner.events.push(EventRecord {
                label,
                detail,
                at_nanos,
            });
        });
    }

    /// Open a timed span; the span records itself when the guard drops.
    /// `detail` runs only when recording is on.
    pub fn span(
        self: &Arc<Self>,
        label: &'static str,
        detail: impl FnOnce() -> Option<String>,
    ) -> SpanGuard {
        match self.with_inner(|inner| {
            let seq = inner.span_seq;
            inner.span_seq += 1;
            (seq, inner.epoch.elapsed().as_nanos() as u64)
        }) {
            Some((seq, start_nanos)) => SpanGuard {
                recorder: Some(self.clone()),
                label,
                detail: detail(),
                start_seq: seq,
                start_nanos,
                start: Instant::now(),
            },
            None => SpanGuard {
                recorder: None,
                label,
                detail: None,
                start_seq: 0,
                start_nanos: 0,
                start: Instant::now(),
            },
        }
    }

    /// Start a fresh per-query epoch: drop everything recorded so far and
    /// reset the timestamp origin. Unlike [`Recorder::take`] this drains
    /// **even while disabled**, so records left behind by an aborted or
    /// untraced query can never leak into the next query's snapshot (the
    /// wasted/delivered page partition must be per-query). The call-kind
    /// context survives.
    pub fn begin_epoch(&self) {
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        let kind = inner.call_kind;
        *inner = Inner::default();
        inner.call_kind = kind;
    }

    /// Drain everything recorded so far, resetting for the next query.
    /// The current call-kind context survives the drain. Draining happens
    /// even while disabled (discarding any leftovers); the returned snapshot
    /// is only populated when enabled.
    pub fn take(&self) -> TelemetrySnapshot {
        let mut inner = self.inner.lock().expect("telemetry poisoned");
        let kind = inner.call_kind;
        let drained = std::mem::take(&mut *inner);
        inner.call_kind = kind;
        if !self.is_enabled() {
            return TelemetrySnapshot::default();
        }
        TelemetrySnapshot {
            ledger: drained.ledger,
            sqr: drained.sqr,
            spans: drained.spans,
            events: drained.events,
            qerrors: drained.qerrors,
            counters: drained.counters.into_iter().collect(),
            durations: drained
                .durations
                .into_iter()
                .map(|(k, h)| (k, h.summary()))
                .collect(),
            sizes: drained
                .sizes
                .into_iter()
                .map(|(k, h)| (k, h.summary()))
                .collect(),
        }
    }
}

/// Drop guard returned by [`Recorder::span`].
pub struct SpanGuard {
    recorder: Option<Arc<Recorder>>,
    label: &'static str,
    detail: Option<String>,
    start_seq: u64,
    start_nanos: u64,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(rec) = self.recorder.take() {
            let nanos = self.start.elapsed().as_nanos() as u64;
            rec.with_inner(|inner| {
                inner.spans.push(SpanRecord {
                    start_seq: self.start_seq,
                    label: self.label,
                    detail: self.detail.take(),
                    start_nanos: self.start_nanos,
                    nanos,
                });
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Arc::new(Recorder::default());
        rec.count("x", 1);
        rec.sqr_miss();
        rec.transaction(|| panic!("must not be built while disabled"));
        rec.event("e", || panic!("must not be built while disabled"));
        {
            let _g = rec.span("s", || panic!("must not be built while disabled"));
        }
        let snap = rec.take();
        assert!(snap.ledger.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert_eq!(snap.sqr, SqrStats::default());
    }

    #[test]
    fn enabled_recorder_captures_and_drains() {
        let rec = Recorder::enabled();
        rec.set_call_kind(CallKind::Download);
        rec.transaction(|| TransactionRecord {
            seq: 999, // overwritten
            dataset: Arc::from("d"),
            table: Arc::from("T"),
            kind: CallKind::Remainder, // overwritten by context
            records: 10,
            page_size: 3,
            pages: 4,
            price: 4.0,
            wasted: false,
            at_nanos: 0,
        });
        rec.count("plans", 2);
        rec.count("plans", 3);
        rec.record_duration("dp", 100);
        rec.record_size("rows", 10);
        rec.event("note", || "hello".to_string());
        {
            let _g = rec.span("phase", || Some("outer".into()));
        }
        let snap = rec.take();
        assert_eq!(snap.ledger.len(), 1);
        assert_eq!(snap.ledger[0].seq, 0);
        assert_eq!(snap.ledger[0].kind, CallKind::Download);
        assert_eq!(snap.counters, vec![("plans", 5)]);
        assert_eq!(snap.durations[0].1.count, 1);
        assert_eq!(snap.sizes[0].1.sum, 10);
        assert_eq!(snap.events[0].detail, "hello");
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].detail.as_deref(), Some("outer"));

        // Drained: a second take is empty, but context persists.
        let snap2 = rec.take();
        assert!(snap2.ledger.is_empty());
        rec.transaction(|| TransactionRecord {
            seq: 0,
            dataset: Arc::from("d"),
            table: Arc::from("T"),
            kind: CallKind::Remainder,
            records: 0,
            page_size: 3,
            pages: 0,
            price: 0.0,
            wasted: false,
            at_nanos: 0,
        });
        assert_eq!(rec.take().ledger[0].kind, CallKind::Download);
    }

    fn dummy_tx() -> TransactionRecord {
        TransactionRecord {
            seq: 0,
            dataset: Arc::from("d"),
            table: Arc::from("T"),
            kind: CallKind::Remainder,
            records: 10,
            page_size: 5,
            pages: 2,
            price: 2.0,
            wasted: true,
            at_nanos: 0,
        }
    }

    #[test]
    fn begin_epoch_discards_leftovers_even_while_disabled() {
        // A traced query that aborts mid-flight leaves its records in the
        // buffer; toggling tracing off must not preserve them for the next
        // traced query.
        let rec = Recorder::enabled();
        rec.set_call_kind(CallKind::Download);
        rec.transaction(dummy_tx);
        rec.count("stale", 1);
        rec.set_enabled(false);

        rec.begin_epoch(); // what every query start does, traced or not
        rec.set_enabled(true);
        let snap = rec.take();
        assert!(snap.ledger.is_empty(), "stale ledger entry leaked");
        assert!(snap.counters.is_empty(), "stale counter leaked");
        assert_eq!(snap.wasted_pages(), 0);

        // The call-kind context survives an epoch boundary.
        rec.transaction(dummy_tx);
        assert_eq!(rec.take().ledger[0].kind, CallKind::Download);
    }

    #[test]
    fn take_drains_even_while_disabled() {
        let rec = Recorder::enabled();
        rec.transaction(dummy_tx);
        rec.set_enabled(false);
        assert!(rec.take().ledger.is_empty());
        rec.set_enabled(true);
        assert!(
            rec.take().ledger.is_empty(),
            "disabled take must still drain"
        );
    }

    #[test]
    fn records_are_stamped_against_the_epoch() {
        let rec = Recorder::enabled();
        rec.begin_epoch();
        rec.transaction(dummy_tx);
        rec.event("e", || "detail".into());
        {
            let _g = rec.span("s", || None);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = rec.take();
        // Stamps are epoch-relative and ordered.
        assert!(snap.ledger[0].at_nanos <= snap.events[0].at_nanos);
        assert!(snap.spans[0].start_nanos >= snap.events[0].at_nanos);
        assert!(snap.spans[0].nanos >= 1_000_000);
    }

    #[test]
    fn q_errors_are_recorded_and_drained() {
        let rec = Recorder::enabled();
        rec.q_error(|| QErrorRecord {
            table: Arc::from("T"),
            estimator: "per-dim",
            estimate: 50.0,
            actual: 100,
            q: 2.0,
        });
        let snap = rec.take();
        assert_eq!(snap.qerrors.len(), 1);
        assert_eq!(snap.qerrors[0].estimator, "per-dim");
        assert!(rec.take().qerrors.is_empty());

        // Disabled recorders never build the record.
        rec.set_enabled(false);
        rec.q_error(|| panic!("must not be built while disabled"));
    }

    #[test]
    fn spans_order_by_start() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("outer", || None);
            let _inner = rec.span("inner", || None);
        }
        let snap = rec.take();
        // Inner drops first but started second.
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|s| s.label == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.label == "inner").unwrap();
        assert!(outer.start_seq < inner.start_seq);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Recorder::enabled();
        std::thread::scope(|s| {
            for i in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        rec.count("n", 1);
                        let _ = i;
                    }
                });
            }
        });
        assert_eq!(rec.take().counters, vec![("n", 400)]);
    }
}
