//! Telemetry for PayLess: the spend ledger, span/event recorder, and typed
//! metrics every layer of the pipeline reports into.
//!
//! The paper's experiments are all plots of *money* (transactions bought),
//! optimizer effort, and cache behaviour; this crate is the single place
//! those numbers are collected so a query's bill is auditable end to end.
//!
//! Design constraints:
//! - no external dependencies (`std::sync::Mutex`, no `tracing`), so the
//!   offline build keeps working;
//! - a disabled [`Recorder`] does **no allocation and takes no lock**: every
//!   entry point checks one relaxed atomic load and bails;
//! - all payload strings are either `&'static str` labels or built lazily
//!   via closures that only run when recording is on.

mod metrics;
mod recorder;
mod trace_export;

pub use metrics::{Histogram, HistogramSummary};
pub use recorder::{Recorder, SpanGuard};
pub use trace_export::ChromeTraceBuilder;

use payless_json::{Json, ToJson};
use std::sync::Arc;

/// Why the market was called: the three call shapes PayLess issues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// Point probe issued per binding combination of a bind join.
    BindProbe,
    /// Bulk download of a table (or the bound slices of one).
    Download,
    /// Remainder query left after subtracting SQR-covered regions.
    #[default]
    Remainder,
}

impl CallKind {
    pub fn label(self) -> &'static str {
        match self {
            CallKind::BindProbe => "bind-probe",
            CallKind::Download => "download",
            CallKind::Remainder => "remainder",
        }
    }
}

/// One market transaction, as appended to the spend ledger.
///
/// `pages` is the number of billable transactions for the call, i.e.
/// `ceil(records / page_size)` per Eq. 1 of the paper; `price` is what the
/// provider charged for those pages.
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionRecord {
    /// Position in the ledger (0-based, per recorder lifetime).
    pub seq: u64,
    /// Dataset (provider) the table belongs to.
    pub dataset: Arc<str>,
    /// Table the call hit.
    pub table: Arc<str>,
    /// What kind of call the executor issued.
    pub kind: CallKind,
    /// Tuples returned by the call.
    pub records: u64,
    /// Provider's page size `t`.
    pub page_size: u64,
    /// Billable pages: `ceil(records / page_size)`.
    pub pages: u64,
    /// Money charged for this call.
    pub price: f64,
    /// Was this spend wasted? `true` when the call was billed but its
    /// payload never became usable data (truncated or corrupt delivery);
    /// the resilient call layer re-buys such pages on retry.
    pub wasted: bool,
    /// Nanoseconds since the recorder's current epoch (query start); filled
    /// in by the recorder like `seq`.
    pub at_nanos: u64,
}

impl ToJson for TransactionRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seq", self.seq.to_json()),
            ("dataset", self.dataset.to_json()),
            ("table", self.table.to_json()),
            ("kind", Json::str(self.kind.label())),
            ("records", self.records.to_json()),
            ("page_size", self.page_size.to_json()),
            ("pages", self.pages.to_json()),
            ("price", self.price.to_json()),
            ("wasted", self.wasted.to_json()),
            ("at_nanos", self.at_nanos.to_json()),
        ])
    }
}

/// SQR (semantic query rewriting) cache outcome counts.
///
/// A *full hit* answers a region entirely from stored views (nothing
/// purchased); a *partial hit* buys only remainder boxes; a *miss* buys the
/// whole region (no usable views, or SQR disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqrStats {
    pub full_hits: u64,
    pub partial_hits: u64,
    pub misses: u64,
}

impl SqrStats {
    pub fn total(&self) -> u64 {
        self.full_hits + self.partial_hits + self.misses
    }
}

impl ToJson for SqrStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("full_hits", self.full_hits.to_json()),
            ("partial_hits", self.partial_hits.to_json()),
            ("misses", self.misses.to_json()),
        ])
    }
}

/// A completed timed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Order in which the span was *opened* (0-based).
    pub start_seq: u64,
    pub label: &'static str,
    /// Lazily built detail string (only materialised while recording).
    pub detail: Option<String>,
    /// Nanoseconds since the recorder's epoch when the span opened.
    pub start_nanos: u64,
    pub nanos: u64,
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("start_seq", self.start_seq.to_json()),
            ("label", Json::str(self.label)),
            ("detail", self.detail.to_json()),
            ("start_nanos", self.start_nanos.to_json()),
            ("nanos", self.nanos.to_json()),
        ])
    }
}

/// A point-in-time event (no duration).
#[derive(Debug, Clone)]
pub struct EventRecord {
    pub label: &'static str,
    pub detail: String,
    /// Nanoseconds since the recorder's epoch.
    pub at_nanos: u64,
}

impl ToJson for EventRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label)),
            ("detail", self.detail.to_json()),
            ("at_nanos", self.at_nanos.to_json()),
        ])
    }
}

/// One scored cardinality estimate: what the statistics layer predicted for
/// a purchased region versus the records the market actually returned.
///
/// Appended at the executor's feedback chokepoint *before* the actual is
/// folded back into the histogram, so `q` measures the estimate the
/// optimizer actually planned with.
#[derive(Debug, Clone, PartialEq)]
pub struct QErrorRecord {
    /// Table the estimate was for.
    pub table: Arc<str>,
    /// Statistics backend that produced the estimate ("multi", "per-dim",
    /// "isomer").
    pub estimator: &'static str,
    /// Predicted cardinality.
    pub estimate: f64,
    /// Records the market actually delivered.
    pub actual: u64,
    /// The q-error: `max(est/actual, actual/est)`, clamped (see
    /// `payless_stats::q_error`). Always `>= 1`.
    pub q: f64,
}

impl ToJson for QErrorRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("table", self.table.to_json()),
            ("estimator", Json::str(self.estimator)),
            ("estimate", self.estimate.to_json()),
            ("actual", self.actual.to_json()),
            ("q", self.q.to_json()),
        ])
    }
}

/// The optimizer's belief about one plan operator, captured when the plan
/// was chosen (`EXPLAIN` side of `EXPLAIN ANALYZE`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperatorEstimate {
    /// Estimated rows flowing out of the operator.
    pub rows: f64,
    /// Estimated billable pages (transactions) the operator purchases.
    pub pages: f64,
    /// Estimated money, under the market's unit page price.
    pub price: f64,
    /// Estimated market calls the operator issues.
    pub calls: f64,
    /// SQR-coverage assumption: fraction of the operator's region the
    /// semantic store does *not* cover (1.0 = nothing reusable, 0.0 = fully
    /// covered). `None` for operators that never touch the market.
    pub uncovered_fraction: Option<f64>,
    /// `true` when Theorem 2 hoisted this operator into the zero-price
    /// prefix (its inputs cost no money, so DP never enumerated it).
    pub zero_price: bool,
    /// Which part of the plan search produced this operator.
    pub provenance: &'static str,
}

impl ToJson for OperatorEstimate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rows", self.rows.to_json()),
            ("pages", self.pages.to_json()),
            ("price", self.price.to_json()),
            ("calls", self.calls.to_json()),
            ("uncovered_fraction", self.uncovered_fraction.to_json()),
            ("zero_price", self.zero_price.to_json()),
            ("provenance", Json::str(self.provenance)),
        ])
    }
}

/// What one plan operator actually did during execution (`ANALYZE` side).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperatorActual {
    /// Rows the operator produced.
    pub rows: u64,
    /// Records the market delivered to this operator.
    pub records: u64,
    /// Billable pages of *usable* deliveries attributed to this operator.
    pub pages: u64,
    /// Billable pages bought but never usable (truncated/corrupt payloads
    /// re-bought on retry).
    pub wasted_pages: u64,
    /// Market calls issued (successful final attempts).
    pub calls: u64,
    /// Extra attempts beyond the first, across all of the operator's calls.
    pub retries: u64,
    /// Wall time spent inside the operator (includes its children).
    pub nanos: u64,
}

impl OperatorActual {
    /// Everything billed on behalf of this operator: usable plus wasted.
    pub fn billed_pages(&self) -> u64 {
        self.pages + self.wasted_pages
    }
}

impl ToJson for OperatorActual {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rows", self.rows.to_json()),
            ("records", self.records.to_json()),
            ("pages", self.pages.to_json()),
            ("wasted_pages", self.wasted_pages.to_json()),
            ("calls", self.calls.to_json()),
            ("retries", self.retries.to_json()),
            ("nanos", self.nanos.to_json()),
        ])
    }
}

/// One node of an `EXPLAIN ANALYZE` tree: estimate and actual side by side.
///
/// Nodes are stored in pre-order; `id` is the pre-order index and `parent`
/// links the tree back together for renderers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OperatorTrace {
    /// Pre-order index of the node in its plan.
    pub id: usize,
    /// Pre-order index of the parent (`None` for the root).
    pub parent: Option<usize>,
    /// Depth in the tree (root = 0), for indentation.
    pub depth: usize,
    /// Operator label, e.g. `"fetch Weather"`, `"bind-join Quote"`, `"⋈"`.
    pub label: String,
    /// Table the operator reads, when it reads one.
    pub table: Option<String>,
    /// The optimizer's belief.
    pub est: OperatorEstimate,
    /// What execution observed.
    pub actual: OperatorActual,
}

impl ToJson for OperatorTrace {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.to_json()),
            ("parent", self.parent.map(|p| p as u64).to_json()),
            ("depth", self.depth.to_json()),
            ("label", self.label.to_json()),
            ("table", self.table.to_json()),
            ("est", self.est.to_json()),
            ("actual", self.actual.to_json()),
        ])
    }
}

/// Everything a [`Recorder`] captured, drained at end of query.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    pub ledger: Vec<TransactionRecord>,
    pub sqr: SqrStats,
    pub spans: Vec<SpanRecord>,
    pub events: Vec<EventRecord>,
    /// Cardinality estimates scored against market actuals, in feedback
    /// order.
    pub qerrors: Vec<QErrorRecord>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Duration histograms (nanoseconds), sorted by name.
    pub durations: Vec<(&'static str, HistogramSummary)>,
    /// Size histograms (bytes or tuples), sorted by name.
    pub sizes: Vec<(&'static str, HistogramSummary)>,
}

impl TelemetrySnapshot {
    /// Total money across the ledger.
    pub fn total_price(&self) -> f64 {
        // fold, not sum(): an empty f64 sum() is -0.0, which would render
        // as "$-0.00" for free queries.
        self.ledger.iter().fold(0.0, |acc, t| acc + t.price)
    }

    /// Total billable pages across the ledger.
    pub fn total_pages(&self) -> u64 {
        self.ledger.iter().map(|t| t.pages).sum()
    }

    /// Total tuples purchased across the ledger.
    pub fn total_records(&self) -> u64 {
        self.ledger.iter().map(|t| t.records).sum()
    }

    /// Calls billed without a usable delivery (truncated/corrupt payloads).
    pub fn wasted_calls(&self) -> u64 {
        self.ledger.iter().filter(|t| t.wasted).count() as u64
    }

    /// Pages billed without a usable delivery.
    pub fn wasted_pages(&self) -> u64 {
        self.ledger
            .iter()
            .filter(|t| t.wasted)
            .map(|t| t.pages)
            .sum()
    }

    /// Money billed without a usable delivery.
    pub fn wasted_price(&self) -> f64 {
        self.ledger
            .iter()
            .filter(|t| t.wasted)
            .fold(0.0, |acc, t| acc + t.price)
    }

    /// Pages billed for calls whose payload *was* delivered. Together with
    /// [`TelemetrySnapshot::wasted_pages`] this partitions
    /// [`TelemetrySnapshot::total_pages`]: the billing meter's total must
    /// always reconcile to `delivered + wasted` (Eq. (1) over successful
    /// deliveries plus explicitly-accounted wasted spend).
    pub fn delivered_pages(&self) -> u64 {
        self.total_pages() - self.wasted_pages()
    }

    /// Per-dataset spend roll-up, in first-seen order.
    pub fn spend_by_dataset(&self) -> Vec<DatasetSpend> {
        let mut out: Vec<DatasetSpend> = Vec::new();
        for t in &self.ledger {
            match out.iter_mut().find(|d| d.dataset == t.dataset) {
                Some(d) => d.absorb(t),
                None => {
                    let mut d = DatasetSpend::new(t.dataset.clone());
                    d.absorb(t);
                    out.push(d);
                }
            }
        }
        out
    }

    /// Spend attribution at dataset × call-kind granularity, in first-seen
    /// order: which provider got paid, and for which call shape.
    pub fn spend_by_dataset_kind(&self) -> Vec<SpendCell> {
        let mut out: Vec<SpendCell> = Vec::new();
        for t in &self.ledger {
            match out
                .iter_mut()
                .find(|c| c.dataset == t.dataset && c.kind == t.kind)
            {
                Some(c) => c.absorb(t),
                None => {
                    let mut c = SpendCell {
                        dataset: t.dataset.clone(),
                        kind: t.kind,
                        calls: 0,
                        records: 0,
                        pages: 0,
                        price: 0.0,
                    };
                    c.absorb(t);
                    out.push(c);
                }
            }
        }
        out
    }
}

/// One cell of the dataset × call-kind spend-attribution rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct SpendCell {
    pub dataset: Arc<str>,
    pub kind: CallKind,
    pub calls: u64,
    pub records: u64,
    pub pages: u64,
    pub price: f64,
}

impl SpendCell {
    fn absorb(&mut self, t: &TransactionRecord) {
        self.calls += 1;
        self.records += t.records;
        self.pages += t.pages;
        self.price += t.price;
    }
}

impl ToJson for SpendCell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", self.dataset.to_json()),
            ("kind", Json::str(self.kind.label())),
            ("calls", self.calls.to_json()),
            ("records", self.records.to_json()),
            ("pages", self.pages.to_json()),
            ("price", self.price.to_json()),
        ])
    }
}

impl ToJson for TelemetrySnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("ledger", self.ledger.to_json()),
            ("sqr", self.sqr.to_json()),
            ("spans", self.spans.to_json()),
            ("events", self.events.to_json()),
            ("q_errors", self.qerrors.to_json()),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "durations",
                Json::Obj(
                    self.durations
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "sizes",
                Json::Obj(
                    self.sizes
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Per-dataset roll-up of ledger lines.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpend {
    pub dataset: Arc<str>,
    pub calls: u64,
    pub records: u64,
    pub pages: u64,
    pub price: f64,
}

impl DatasetSpend {
    fn new(dataset: Arc<str>) -> Self {
        DatasetSpend {
            dataset,
            calls: 0,
            records: 0,
            pages: 0,
            price: 0.0,
        }
    }

    fn absorb(&mut self, t: &TransactionRecord) {
        self.calls += 1;
        self.records += t.records;
        self.pages += t.pages;
        self.price += t.price;
    }
}

impl ToJson for DatasetSpend {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", self.dataset.to_json()),
            ("calls", self.calls.to_json()),
            ("records", self.records.to_json()),
            ("pages", self.pages.to_json()),
            ("price", self.price.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(dataset: &str, records: u64, page: u64, price: f64) -> TransactionRecord {
        TransactionRecord {
            seq: 0,
            dataset: Arc::from(dataset),
            table: Arc::from("T"),
            kind: CallKind::Remainder,
            records,
            page_size: page,
            pages: records.div_ceil(page),
            price,
            wasted: false,
            at_nanos: 0,
        }
    }

    #[test]
    fn wasted_spend_partitions_the_ledger() {
        let mut bad = tx("a", 20, 4, 5.0);
        bad.wasted = true;
        let snap = TelemetrySnapshot {
            ledger: vec![tx("a", 10, 4, 3.0), bad, tx("b", 4, 4, 1.0)],
            ..Default::default()
        };
        assert_eq!(snap.total_pages(), 3 + 5 + 1);
        assert_eq!(snap.wasted_calls(), 1);
        assert_eq!(snap.wasted_pages(), 5);
        assert_eq!(snap.delivered_pages(), 4);
        assert!((snap.wasted_price() - 5.0).abs() < 1e-12);
        assert_eq!(
            snap.delivered_pages() + snap.wasted_pages(),
            snap.total_pages()
        );
        // An all-clean ledger wastes nothing, positively-signed.
        let clean = TelemetrySnapshot::default();
        assert_eq!(clean.wasted_pages(), 0);
        assert!(clean.wasted_price() == 0.0 && clean.wasted_price().is_sign_positive());
    }

    #[test]
    fn snapshot_rolls_up_by_dataset() {
        let snap = TelemetrySnapshot {
            ledger: vec![tx("a", 10, 4, 3.0), tx("b", 0, 4, 0.0), tx("a", 5, 4, 2.0)],
            ..Default::default()
        };
        assert_eq!(snap.total_records(), 15);
        assert_eq!(snap.total_pages(), 5); // 3 + 0 + 2
        assert!((snap.total_price() - 5.0).abs() < 1e-12);

        // An empty ledger's total must be positive zero ("-0.00" is not a
        // price a free query should display).
        let empty = TelemetrySnapshot::default();
        assert!(empty.total_price() == 0.0 && empty.total_price().is_sign_positive());
        let spend = snap.spend_by_dataset();
        assert_eq!(spend.len(), 2);
        assert_eq!(spend[0].dataset.as_ref(), "a");
        assert_eq!(spend[0].calls, 2);
        assert_eq!(spend[0].pages, 5);
        assert_eq!(spend[1].dataset.as_ref(), "b");
        assert_eq!(spend[1].pages, 0);
    }

    #[test]
    fn snapshot_rolls_up_by_dataset_and_kind() {
        let mut probe = tx("a", 3, 4, 1.0);
        probe.kind = CallKind::BindProbe;
        let snap = TelemetrySnapshot {
            ledger: vec![tx("a", 10, 4, 3.0), probe, tx("a", 5, 4, 2.0)],
            ..Default::default()
        };
        let cells = snap.spend_by_dataset_kind();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].kind, CallKind::Remainder);
        assert_eq!(cells[0].calls, 2);
        assert_eq!(cells[0].pages, 5);
        assert_eq!(cells[1].kind, CallKind::BindProbe);
        assert_eq!(cells[1].pages, 1);
        let j = cells[1].to_json();
        assert_eq!(j.get("kind").unwrap().as_str().unwrap(), "bind-probe");
    }

    #[test]
    fn operator_trace_serialises_est_and_actual() {
        let op = OperatorTrace {
            id: 1,
            parent: Some(0),
            depth: 1,
            label: "fetch Weather".into(),
            table: Some("Weather".into()),
            est: OperatorEstimate {
                rows: 120.0,
                pages: 2.0,
                price: 2.0,
                calls: 1.0,
                uncovered_fraction: Some(0.25),
                zero_price: false,
                provenance: "dp-left-deep",
            },
            actual: OperatorActual {
                rows: 110,
                records: 110,
                pages: 2,
                wasted_pages: 1,
                calls: 1,
                retries: 1,
                nanos: 42,
            },
        };
        assert_eq!(op.actual.billed_pages(), 3);
        let j = op.to_json();
        assert_eq!(
            j.get("est")
                .unwrap()
                .get("pages")
                .unwrap()
                .as_f64()
                .unwrap(),
            2.0
        );
        assert_eq!(
            j.get("actual")
                .unwrap()
                .get("wasted_pages")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
        assert_eq!(j.get("parent").unwrap().as_u64().unwrap(), 0);
    }

    #[test]
    fn snapshot_serialises() {
        let snap = TelemetrySnapshot {
            ledger: vec![tx("a", 10, 4, 3.0)],
            sqr: SqrStats {
                full_hits: 1,
                partial_hits: 2,
                misses: 3,
            },
            ..Default::default()
        };
        let j = snap.to_json();
        assert_eq!(
            j.get("sqr")
                .unwrap()
                .get("misses")
                .unwrap()
                .as_u64()
                .unwrap(),
            3
        );
        let ledger = j.get("ledger").unwrap().as_arr().unwrap();
        assert_eq!(ledger[0].get("pages").unwrap().as_u64().unwrap(), 3);
    }
}
