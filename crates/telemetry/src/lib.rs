//! Telemetry for PayLess: the spend ledger, span/event recorder, and typed
//! metrics every layer of the pipeline reports into.
//!
//! The paper's experiments are all plots of *money* (transactions bought),
//! optimizer effort, and cache behaviour; this crate is the single place
//! those numbers are collected so a query's bill is auditable end to end.
//!
//! Design constraints:
//! - no external dependencies (`std::sync::Mutex`, no `tracing`), so the
//!   offline build keeps working;
//! - a disabled [`Recorder`] does **no allocation and takes no lock**: every
//!   entry point checks one relaxed atomic load and bails;
//! - all payload strings are either `&'static str` labels or built lazily
//!   via closures that only run when recording is on.

mod metrics;
mod recorder;

pub use metrics::{Histogram, HistogramSummary};
pub use recorder::{Recorder, SpanGuard};

use payless_json::{Json, ToJson};
use std::sync::Arc;

/// Why the market was called: the three call shapes PayLess issues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// Point probe issued per binding combination of a bind join.
    BindProbe,
    /// Bulk download of a table (or the bound slices of one).
    Download,
    /// Remainder query left after subtracting SQR-covered regions.
    #[default]
    Remainder,
}

impl CallKind {
    pub fn label(self) -> &'static str {
        match self {
            CallKind::BindProbe => "bind-probe",
            CallKind::Download => "download",
            CallKind::Remainder => "remainder",
        }
    }
}

/// One market transaction, as appended to the spend ledger.
///
/// `pages` is the number of billable transactions for the call, i.e.
/// `ceil(records / page_size)` per Eq. 1 of the paper; `price` is what the
/// provider charged for those pages.
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionRecord {
    /// Position in the ledger (0-based, per recorder lifetime).
    pub seq: u64,
    /// Dataset (provider) the table belongs to.
    pub dataset: Arc<str>,
    /// Table the call hit.
    pub table: Arc<str>,
    /// What kind of call the executor issued.
    pub kind: CallKind,
    /// Tuples returned by the call.
    pub records: u64,
    /// Provider's page size `t`.
    pub page_size: u64,
    /// Billable pages: `ceil(records / page_size)`.
    pub pages: u64,
    /// Money charged for this call.
    pub price: f64,
    /// Was this spend wasted? `true` when the call was billed but its
    /// payload never became usable data (truncated or corrupt delivery);
    /// the resilient call layer re-buys such pages on retry.
    pub wasted: bool,
}

impl ToJson for TransactionRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seq", self.seq.to_json()),
            ("dataset", self.dataset.to_json()),
            ("table", self.table.to_json()),
            ("kind", Json::str(self.kind.label())),
            ("records", self.records.to_json()),
            ("page_size", self.page_size.to_json()),
            ("pages", self.pages.to_json()),
            ("price", self.price.to_json()),
            ("wasted", self.wasted.to_json()),
        ])
    }
}

/// SQR (semantic query rewriting) cache outcome counts.
///
/// A *full hit* answers a region entirely from stored views (nothing
/// purchased); a *partial hit* buys only remainder boxes; a *miss* buys the
/// whole region (no usable views, or SQR disabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqrStats {
    pub full_hits: u64,
    pub partial_hits: u64,
    pub misses: u64,
}

impl SqrStats {
    pub fn total(&self) -> u64 {
        self.full_hits + self.partial_hits + self.misses
    }
}

impl ToJson for SqrStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("full_hits", self.full_hits.to_json()),
            ("partial_hits", self.partial_hits.to_json()),
            ("misses", self.misses.to_json()),
        ])
    }
}

/// A completed timed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Order in which the span was *opened* (0-based).
    pub start_seq: u64,
    pub label: &'static str,
    /// Lazily built detail string (only materialised while recording).
    pub detail: Option<String>,
    pub nanos: u64,
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("start_seq", self.start_seq.to_json()),
            ("label", Json::str(self.label)),
            ("detail", self.detail.to_json()),
            ("nanos", self.nanos.to_json()),
        ])
    }
}

/// A point-in-time event (no duration).
#[derive(Debug, Clone)]
pub struct EventRecord {
    pub label: &'static str,
    pub detail: String,
}

impl ToJson for EventRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label)),
            ("detail", self.detail.to_json()),
        ])
    }
}

/// Everything a [`Recorder`] captured, drained at end of query.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    pub ledger: Vec<TransactionRecord>,
    pub sqr: SqrStats,
    pub spans: Vec<SpanRecord>,
    pub events: Vec<EventRecord>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Duration histograms (nanoseconds), sorted by name.
    pub durations: Vec<(&'static str, HistogramSummary)>,
    /// Size histograms (bytes or tuples), sorted by name.
    pub sizes: Vec<(&'static str, HistogramSummary)>,
}

impl TelemetrySnapshot {
    /// Total money across the ledger.
    pub fn total_price(&self) -> f64 {
        // fold, not sum(): an empty f64 sum() is -0.0, which would render
        // as "$-0.00" for free queries.
        self.ledger.iter().fold(0.0, |acc, t| acc + t.price)
    }

    /// Total billable pages across the ledger.
    pub fn total_pages(&self) -> u64 {
        self.ledger.iter().map(|t| t.pages).sum()
    }

    /// Total tuples purchased across the ledger.
    pub fn total_records(&self) -> u64 {
        self.ledger.iter().map(|t| t.records).sum()
    }

    /// Calls billed without a usable delivery (truncated/corrupt payloads).
    pub fn wasted_calls(&self) -> u64 {
        self.ledger.iter().filter(|t| t.wasted).count() as u64
    }

    /// Pages billed without a usable delivery.
    pub fn wasted_pages(&self) -> u64 {
        self.ledger
            .iter()
            .filter(|t| t.wasted)
            .map(|t| t.pages)
            .sum()
    }

    /// Money billed without a usable delivery.
    pub fn wasted_price(&self) -> f64 {
        self.ledger
            .iter()
            .filter(|t| t.wasted)
            .fold(0.0, |acc, t| acc + t.price)
    }

    /// Pages billed for calls whose payload *was* delivered. Together with
    /// [`TelemetrySnapshot::wasted_pages`] this partitions
    /// [`TelemetrySnapshot::total_pages`]: the billing meter's total must
    /// always reconcile to `delivered + wasted` (Eq. (1) over successful
    /// deliveries plus explicitly-accounted wasted spend).
    pub fn delivered_pages(&self) -> u64 {
        self.total_pages() - self.wasted_pages()
    }

    /// Per-dataset spend roll-up, in first-seen order.
    pub fn spend_by_dataset(&self) -> Vec<DatasetSpend> {
        let mut out: Vec<DatasetSpend> = Vec::new();
        for t in &self.ledger {
            match out.iter_mut().find(|d| d.dataset == t.dataset) {
                Some(d) => d.absorb(t),
                None => {
                    let mut d = DatasetSpend::new(t.dataset.clone());
                    d.absorb(t);
                    out.push(d);
                }
            }
        }
        out
    }
}

impl ToJson for TelemetrySnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("ledger", self.ledger.to_json()),
            ("sqr", self.sqr.to_json()),
            ("spans", self.spans.to_json()),
            ("events", self.events.to_json()),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "durations",
                Json::Obj(
                    self.durations
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "sizes",
                Json::Obj(
                    self.sizes
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Per-dataset roll-up of ledger lines.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpend {
    pub dataset: Arc<str>,
    pub calls: u64,
    pub records: u64,
    pub pages: u64,
    pub price: f64,
}

impl DatasetSpend {
    fn new(dataset: Arc<str>) -> Self {
        DatasetSpend {
            dataset,
            calls: 0,
            records: 0,
            pages: 0,
            price: 0.0,
        }
    }

    fn absorb(&mut self, t: &TransactionRecord) {
        self.calls += 1;
        self.records += t.records;
        self.pages += t.pages;
        self.price += t.price;
    }
}

impl ToJson for DatasetSpend {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", self.dataset.to_json()),
            ("calls", self.calls.to_json()),
            ("records", self.records.to_json()),
            ("pages", self.pages.to_json()),
            ("price", self.price.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(dataset: &str, records: u64, page: u64, price: f64) -> TransactionRecord {
        TransactionRecord {
            seq: 0,
            dataset: Arc::from(dataset),
            table: Arc::from("T"),
            kind: CallKind::Remainder,
            records,
            page_size: page,
            pages: records.div_ceil(page),
            price,
            wasted: false,
        }
    }

    #[test]
    fn wasted_spend_partitions_the_ledger() {
        let mut bad = tx("a", 20, 4, 5.0);
        bad.wasted = true;
        let snap = TelemetrySnapshot {
            ledger: vec![tx("a", 10, 4, 3.0), bad, tx("b", 4, 4, 1.0)],
            ..Default::default()
        };
        assert_eq!(snap.total_pages(), 3 + 5 + 1);
        assert_eq!(snap.wasted_calls(), 1);
        assert_eq!(snap.wasted_pages(), 5);
        assert_eq!(snap.delivered_pages(), 4);
        assert!((snap.wasted_price() - 5.0).abs() < 1e-12);
        assert_eq!(
            snap.delivered_pages() + snap.wasted_pages(),
            snap.total_pages()
        );
        // An all-clean ledger wastes nothing, positively-signed.
        let clean = TelemetrySnapshot::default();
        assert_eq!(clean.wasted_pages(), 0);
        assert!(clean.wasted_price() == 0.0 && clean.wasted_price().is_sign_positive());
    }

    #[test]
    fn snapshot_rolls_up_by_dataset() {
        let snap = TelemetrySnapshot {
            ledger: vec![tx("a", 10, 4, 3.0), tx("b", 0, 4, 0.0), tx("a", 5, 4, 2.0)],
            ..Default::default()
        };
        assert_eq!(snap.total_records(), 15);
        assert_eq!(snap.total_pages(), 5); // 3 + 0 + 2
        assert!((snap.total_price() - 5.0).abs() < 1e-12);

        // An empty ledger's total must be positive zero ("-0.00" is not a
        // price a free query should display).
        let empty = TelemetrySnapshot::default();
        assert!(empty.total_price() == 0.0 && empty.total_price().is_sign_positive());
        let spend = snap.spend_by_dataset();
        assert_eq!(spend.len(), 2);
        assert_eq!(spend[0].dataset.as_ref(), "a");
        assert_eq!(spend[0].calls, 2);
        assert_eq!(spend[0].pages, 5);
        assert_eq!(spend[1].dataset.as_ref(), "b");
        assert_eq!(spend[1].pages, 0);
    }

    #[test]
    fn snapshot_serialises() {
        let snap = TelemetrySnapshot {
            ledger: vec![tx("a", 10, 4, 3.0)],
            sqr: SqrStats {
                full_hits: 1,
                partial_hits: 2,
                misses: 3,
            },
            ..Default::default()
        };
        let j = snap.to_json();
        assert_eq!(
            j.get("sqr")
                .unwrap()
                .get("misses")
                .unwrap()
                .as_u64()
                .unwrap(),
            3
        );
        let ledger = j.get("ledger").unwrap().as_arr().unwrap();
        assert_eq!(ledger[0].get("pages").unwrap().as_u64().unwrap(), 3);
    }
}
