use payless_json::{Json, ToJson};

/// Sample-keeping histogram for durations and sizes.
///
/// Queries touch at most a few thousand market calls, so keeping raw
/// samples (8 bytes each) and sorting on demand is cheaper and more exact
/// than bucketing.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    pub fn summary(&self) -> HistogramSummary {
        if self.samples.is_empty() {
            return HistogramSummary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let q = |p: f64| {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        // Bucket the sorted samples on the shared payless-metrics log
        // scale so external tooling can recompute percentiles from the
        // JSON dump (the sorted order makes each bucket a contiguous run).
        let mut buckets: Vec<(u64, u64)> = Vec::new();
        for &v in &sorted {
            let le = payless_metrics::bucket_le(payless_metrics::bucket_index(v));
            match buckets.last_mut() {
                Some((last_le, c)) if *last_le == le => *c += 1,
                _ => buckets.push((le, 1)),
            }
        }
        HistogramSummary {
            count: sorted.len() as u64,
            sum: sorted.iter().sum(),
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            max: *sorted.last().unwrap(),
            buckets,
        }
    }
}

/// Immutable digest of a [`Histogram`].
///
/// Percentiles are exact (computed from the raw samples); `buckets` are
/// `(inclusive_upper_bound, count)` pairs on the shared payless-metrics
/// log scale (ascending, nonzero only) so the JSON form is enough to
/// recompute any quantile to within the bucket resolution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl ToJson for HistogramSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            ("p50", self.p50.to_json()),
            ("p95", self.p95.to_json()),
            ("p99", self.p99.to_json()),
            ("max", self.max.to_json()),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(le, c)| Json::Arr(vec![le.to_json(), c.to_json()]))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_summarises_to_zeros() {
        assert_eq!(Histogram::default().summary(), HistogramSummary::default());
    }

    #[test]
    fn percentiles_are_order_insensitive() {
        let mut h = Histogram::default();
        for v in [5u64, 1, 4, 2, 3] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 15);
        assert_eq!(s.p50, 3);
        assert_eq!(s.max, 5);
        assert_eq!(s.p95, 5);
        assert_eq!(s.p99, 5);
    }

    #[test]
    fn buckets_cover_every_sample_in_order() {
        let mut h = Histogram::default();
        for v in [1u64, 1, 2, 9, 9, 9, 5000, 2] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.buckets.iter().map(|(_, c)| c).sum::<u64>(), s.count);
        for w in s.buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "bucket bounds must be ascending");
        }
        for &(le, c) in &s.buckets {
            assert!(c > 0, "zero buckets are omitted");
            assert!(le <= payless_metrics::bucket_le(payless_metrics::bucket_index(s.max)));
        }
        // Exact small values get exact buckets.
        assert!(s.buckets.contains(&(1, 2)));
        assert!(s.buckets.contains(&(2, 2)));
    }

    #[test]
    fn json_form_exposes_buckets() {
        let mut h = Histogram::default();
        h.record(3);
        h.record(300);
        let j = h.summary().to_json();
        assert_eq!(j.get("p99").unwrap().as_u64().unwrap(), 300);
        let buckets = j.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 2);
        let first = buckets[0].as_arr().unwrap();
        assert_eq!(first[0].as_u64().unwrap(), 3);
        assert_eq!(first[1].as_u64().unwrap(), 1);
    }
}
