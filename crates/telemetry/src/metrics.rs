use payless_json::{Json, ToJson};

/// Sample-keeping histogram for durations and sizes.
///
/// Queries touch at most a few thousand market calls, so keeping raw
/// samples (8 bytes each) and sorting on demand is cheaper and more exact
/// than bucketing.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    pub fn summary(&self) -> HistogramSummary {
        if self.samples.is_empty() {
            return HistogramSummary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let q = |p: f64| {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        HistogramSummary {
            count: sorted.len() as u64,
            sum: sorted.iter().sum(),
            p50: q(0.50),
            p95: q(0.95),
            max: *sorted.last().unwrap(),
        }
    }
}

/// Immutable digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p95: u64,
    pub max: u64,
}

impl ToJson for HistogramSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            ("p50", self.p50.to_json()),
            ("p95", self.p95.to_json()),
            ("max", self.max.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_summarises_to_zeros() {
        assert_eq!(Histogram::default().summary(), HistogramSummary::default());
    }

    #[test]
    fn percentiles_are_order_insensitive() {
        let mut h = Histogram::default();
        for v in [5u64, 1, 4, 2, 3] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 15);
        assert_eq!(s.p50, 3);
        assert_eq!(s.max, 5);
        assert_eq!(s.p95, 5);
    }
}
