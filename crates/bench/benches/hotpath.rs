//! Hot-path benchmark for the parallel plan search and the indexed
//! semantic store: before/after numbers for the SQR rewrite fan-out, the
//! store's grid-index probe, and the DP wavefront.
//!
//! Modes (positional args; cargo's own `--bench` flag is ignored):
//!
//! * `sqr`      — store probe + Algorithm 1 rewrite, sequential vs parallel
//! * `store-scale` — probe + rewrite at 1k and 10k stored views; exits
//!   non-zero when the 10k-view rewrite median exceeds the *old* 225-view
//!   rewrite time (the scaling cap CI smokes)
//! * `dp`       — left-deep and bushy DP, sequential vs parallel
//! * `check`    — assert parallel output is identical to single-threaded
//! * `smoke`    — tiny versions of all of the above (CI)
//! * `validate <file>` — check that a `PAYLESS_JSON` dump is well-formed
//!   JSONL (one object per line with `figure` and `runs`); exits non-zero
//!   otherwise
//! * `diff <baseline.json>...` — re-run the full-scale benches and compare
//!   each median against the committed `BENCH_*.json` baselines; exits
//!   non-zero when any run regressed by more than 25%. When
//!   `BENCH_DIFF_JSON` names a path, a machine-readable summary of every
//!   per-bench delta is written there (regressions included) before the
//!   exit status is decided
//! * `validate-explain <file>` — check an `--explain-out` report dump: a
//!   non-empty `operators` array where every node carries both an `est`
//!   and an `actual` object, plus a `q_error` section
//! * `serve <out.json>` — replay a deterministic multi-client mix through
//!   the concurrent serving layer and dump the reconciled
//!   [`payless_serve::ServeReport`]. Knobs: `PAYLESS_THREADS` (workers),
//!   `PAYLESS_CLIENTS`, `PAYLESS_SERVE_QUERIES`, `PAYLESS_SERVE_SEED`,
//!   `PAYLESS_COALESCE=0` (disable single flight), `PAYLESS_FAULT_SEED`
//!   (chaos-inject the market; retries become unlimited),
//!   `PAYLESS_STORE_MAX_VIEWS` / `PAYLESS_STORE_COMPACT=0` (shared-store
//!   view cap and compaction toggle). When
//!   `PAYLESS_METRICS_OUT` names a path, a metrics hub is attached and its
//!   exposition (+ `.jsonl` windowed series) is dumped there on exit;
//!   `PAYLESS_METRICS_WINDOW_MS` and `PAYLESS_METRICS_STRICT` apply
//! * `validate-serve <serial.json> <parallel.json>` — reconcile two serve
//!   dumps of the same mix: identical answers query-by-query, each ledger
//!   equal to its billing meter, and parallel delivered spend no greater
//!   than the serial oracle's
//! * `metrics` — the serve mix with the metrics hub attached vs detached;
//!   the `overhead/metrics_on` note is the on/off median ratio the diff
//!   mode gates at 5%
//! * `events` — the serve mix with the flight recorder attached vs
//!   detached; the `overhead/events_on` note is the on/off ratio the diff
//!   mode gates at 5% (the committed `BENCH_events.json` is this mode's
//!   `PAYLESS_JSON` dump)
//! * `validate-events <file> [expect-violation]` — check a flight-recorder
//!   JSONL dump (an `--events-out` journal or a black box): every line one
//!   JSON event with strictly increasing `seq`, a known `severity`, a
//!   `kind`, and an `at_nanos` timestamp. With `expect-violation`, the
//!   dump must be a real post-mortem: a `watchdog_violation` event plus
//!   the `blackbox` marker
//! * `events-abort <blackbox.jsonl>` — deliberately break reconciliation
//!   mid-run (one unattributed charge straight onto the billing meter)
//!   under the strict per-query watchdog; exits non-zero unless the mix
//!   aborts *and* the journal's black box lands at the given path
//! * `validate-metrics <metrics.txt> <serve.json>` — cross-check a metrics
//!   dump against the serve report it was taken with: exposition shape,
//!   billed pages == the report's meter delta (the reconciliation
//!   invariant), query counts, watchdog samples with zero final drift, and
//!   a windowed JSONL series whose per-window deltas sum to the cumulative
//!   totals
//! * `batch <out.json>` — replay the pinned overlapping-hot-region mix
//!   with batched purchasing on at 1/2/4/8 clients and dump the
//!   spend-per-query curve as JSONL (the committed `BENCH_batch.json`);
//!   exits non-zero unless spend per query *strictly* decreases as
//!   clients are added
//! * `batch-serve <out.json>` — one serve run of the overlapping mix,
//!   dumped as a [`payless_serve::ServeReport`]. Same env knobs as
//!   `serve`, plus `PAYLESS_BATCH` / `PAYLESS_BATCH_WINDOW_MS` /
//!   `PAYLESS_BATCH_MAX` for the purchase window
//!   (`PAYLESS_SERVE_QUERIES` counts queries *per client* here)
//! * `validate-batch <unbatched.json> <batched.json>` — reconcile a
//!   batched replay of the overlapping mix against its unbatched twin:
//!   identical answers, both ledgers reconciled, batched delivered spend
//!   no greater than unbatched, and the batched run must actually have
//!   parked remainders in batches
//!
//! With no mode, `check`, `sqr`, and `dp` all run at full scale. Emit JSONL
//! by setting `PAYLESS_JSON` (the `BENCH_sqr.json` / `BENCH_dp.json`
//! baselines at the repo root are produced this way). The parallel side uses
//! the ambient thread cap (`PAYLESS_THREADS` or the core count), recorded in
//! the `threads` field — on a single-core host the two sides coincide.

use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;

use payless_bench::micro::{fmt_ns, Runner};
use payless_core::{
    build_market, EventJournal, FaultInjector, FaultPlan, MetricsConfig, MetricsHub, RetryPolicy,
};
use payless_geometry::{region, QuerySpace, Region};
use payless_json::{FromJson, Json, ToJson};
use payless_optimizer::{optimize, OptimizerConfig};
use payless_par::{max_threads, with_max_threads};
use payless_semantic::{
    rewrite, rewrite_cached, Consistency, Rewrite, RewriteConfig, SemanticStore, StoreConfig,
};
use payless_serve::{run_mix, BatchConfig, Serve, ServeConfig, ServeReport};
use payless_sql::{analyze, parse, MapCatalog, TableLocation};
use payless_stats::{StatsRegistry, TableStats};
use payless_types::{Column, Domain, Schema};
use payless_workload::{overlapping_mix, serve_mix, QueryWorkload, RealWorkload, WhwConfig};

/// Scale knobs for one run.
struct Scale {
    /// Views per side of the store grid (total views = grid²).
    grid: usize,
    /// Views per side the benchmark query spans.
    window: usize,
    /// Histogram buckets to train (what makes one statistics probe costly).
    buckets: usize,
    /// Chain length for the DP benches.
    dp_tables: usize,
    /// Feedback rounds per DP table.
    dp_feedbacks: usize,
    /// Queries in the metrics-overhead serve mix.
    serve_queries: usize,
}

const FULL: Scale = Scale {
    grid: 15, // 225 stored views
    window: 6,
    buckets: 4096,
    dp_tables: 8,
    dp_feedbacks: 400,
    serve_queries: 48,
};

const SMOKE: Scale = Scale {
    grid: 8, // 64 stored views
    window: 3,
    buckets: 256,
    dp_tables: 5,
    dp_feedbacks: 48,
    serve_queries: 12,
};

/// Grid spacing and view width: views are disjoint and non-adjacent so the
/// store's coalescer keeps all of them.
const SPACING: i64 = 400;
const VIEW_W: i64 = 100;

/// A 2-D table whose store holds `grid x grid` disjoint views and whose
/// histogram has been trained to `buckets` buckets, so every cardinality
/// probe pays a real statistics lookup. The store's view cap is raised
/// above `grid²` so no view is evicted — these benches measure lookup
/// scaling, not the eviction policy.
fn sqr_fixture(s: &Scale) -> (TableStats, SemanticStore, Region) {
    let hi = s.grid as i64 * SPACING - 1;
    let schema = Schema::new(
        "R",
        vec![
            Column::free("A1", Domain::int(0, hi)),
            Column::free("A2", Domain::int(0, hi)),
        ],
    );
    let mut stats = TableStats::new(QuerySpace::of(&schema), 4_000_000).with_max_buckets(s.buckets);
    for k in 0..(s.buckets as i64 - 16).max(16) {
        let lo0 = (k * 53) % (hi - 60);
        let lo1 = (k * 97) % (hi - 60);
        stats.feedback(&region![(lo0, lo0 + 59), (lo1, lo1 + 59)], 600);
    }
    let mut store = SemanticStore::new();
    store.set_config(StoreConfig {
        max_views: (s.grid * s.grid).max(256) * 2,
        compaction: true,
    });
    store.register(QuerySpace::of(&schema));
    for gx in 0..s.grid as i64 {
        for gy in 0..s.grid as i64 {
            let (x, y) = (gx * SPACING, gy * SPACING);
            store.record("R", region![(x, x + VIEW_W - 1), (y, y + VIEW_W - 1)], 0);
        }
    }
    let w = s.window as i64 * SPACING - 1;
    (stats, store, region![(0, w), (0, w)])
}

/// The production rewrite path: one consistent store probe, the cached
/// remainder pieces when the store can answer, the subtraction sweep
/// otherwise — exactly what the engine and cost model run per region.
fn store_rewrite(
    stats: &TableStats,
    store: &SemanticStore,
    q: &Region,
    cfg: &RewriteConfig,
) -> Rewrite {
    let (views, pieces) = store.probe_rewrite("R", q, Consistency::Weak, 0);
    match &pieces {
        Some(p) => rewrite_cached(stats, 100, q, p, cfg),
        None => rewrite(stats, 100, q, &views, cfg),
    }
}

fn rewrite_cfg() -> RewriteConfig {
    RewriteConfig {
        // The aligned 2-D grid enumerates more candidate boxes than the
        // default cap; raising it keeps Algorithm 1 (not the fallback) on
        // the measured path.
        max_candidates: 8192,
        ..RewriteConfig::default()
    }
}

fn bench_sqr(s: &Scale) -> Runner {
    let (stats, store, q) = sqr_fixture(s);
    let stored = store.views("R", Consistency::Weak, 0).len();
    let mut r = Runner::new("hotpath_sqr");
    r.note("stored_views", stored as f64);
    r.note("threads", max_threads() as f64);

    // The store layer, before vs after: the old pipeline linearly scanned
    // and deep-cloned every stored view on each probe; the new one walks
    // the grid index and hands out Arc handles to the overlap survivors.
    let scan_name = format!("store/probe/scan_clone/{stored}v");
    r.bench(&scan_name, || {
        let out: Vec<Region> = store
            .views("R", Consistency::Weak, 0)
            .iter()
            .filter(|v| v.overlaps(&q))
            .map(|v| (**v).clone())
            .collect();
        black_box(out);
    });
    let idx_name = format!("store/probe/indexed/{stored}v");
    r.bench(&idx_name, || {
        black_box(store.views_overlapping("R", &q, Consistency::Weak, 0));
    });

    // Algorithm 1 end to end (probe + rewrite), single-threaded vs the
    // ambient thread cap, on the production path (cached remainder pieces).
    let cfg = rewrite_cfg();
    let seq_name = format!("sqr/rewrite/{stored}v/seq");
    r.bench(&seq_name, || {
        with_max_threads(1, || {
            black_box(store_rewrite(&stats, &store, &q, &cfg));
        })
    });
    r.run_field(
        &seq_name,
        "threads_used",
        with_max_threads(1, || store_rewrite(&stats, &store, &q, &cfg)).threads_used as f64,
    );
    let par_name = format!("sqr/rewrite/{stored}v/par");
    r.bench(&par_name, || {
        black_box(store_rewrite(&stats, &store, &q, &cfg));
    });
    r.run_field(
        &par_name,
        "threads_used",
        store_rewrite(&stats, &store, &q, &cfg).threads_used as f64,
    );
    // The pre-cache pipeline for comparison: subtraction sweep from raw
    // views on every call.
    let scratch_name = format!("sqr/rewrite_scratch/{stored}v/seq");
    r.bench(&scratch_name, || {
        with_max_threads(1, || {
            let views = store.views_overlapping("R", &q, Consistency::Weak, 0);
            black_box(rewrite(&stats, 100, &q, &views, &cfg));
        })
    });

    if let (Some(a), Some(b)) = (r.median_of(&scan_name), r.median_of(&idx_name)) {
        r.note("speedup/store_probe", a / b);
    }
    if let (Some(a), Some(b)) = (r.median_of(&seq_name), r.median_of(&par_name)) {
        r.note("speedup/sqr_rewrite", a / b);
    }
    if let (Some(a), Some(b)) = (r.median_of(&scratch_name), r.median_of(&seq_name)) {
        r.note("speedup/remainder_cache", a / b);
    }
    r
}

/// The old committed `sqr/rewrite/225v/seq` median (PR 6's BENCH_sqr.json):
/// the wall-clock cap the 10k-view rewrite must beat, and the yardstick for
/// the ≥5x claim at 225 views.
const OLD_225V_SEQ_MEDIAN_NS: f64 = 434_558_876.0;

/// Rewrite + probe scaling at 1k and 10k stored views — the scales where
/// the per-query subtraction sweep used to dominate. The query window stays
/// fixed, so these runs measure how cost scales with *store size*, which
/// with the remainder cache and R-tree probes should be barely at all.
fn bench_store_scale() -> Runner {
    let mut r = Runner::new("hotpath_store_scale");
    r.note("threads", max_threads() as f64);
    for grid in [32usize, 100] {
        let s = Scale {
            grid,
            window: 6,
            buckets: 1024,
            dp_tables: 0,
            dp_feedbacks: 0,
            serve_queries: 0,
        };
        let (stats, store, q) = sqr_fixture(&s);
        let stored = store.views("R", Consistency::Weak, 0).len();
        assert_eq!(stored, grid * grid, "no view may be lost to eviction");
        let idx_name = format!("store/probe/indexed/{stored}v");
        r.bench(&idx_name, || {
            black_box(store.views_overlapping("R", &q, Consistency::Weak, 0));
        });
        let cfg = rewrite_cfg();
        let seq_name = format!("sqr/rewrite/{stored}v/seq");
        r.bench(&seq_name, || {
            with_max_threads(1, || {
                black_box(store_rewrite(&stats, &store, &q, &cfg));
            })
        });
        r.run_field(
            &seq_name,
            "threads_used",
            with_max_threads(1, || store_rewrite(&stats, &store, &q, &cfg)).threads_used as f64,
        );
        let par_name = format!("sqr/rewrite/{stored}v/par");
        r.bench(&par_name, || {
            black_box(store_rewrite(&stats, &store, &q, &cfg));
        });
        r.run_field(
            &par_name,
            "threads_used",
            store_rewrite(&stats, &store, &q, &cfg).threads_used as f64,
        );
        if let (Some(a), Some(b)) = (r.median_of(&seq_name), r.median_of(&par_name)) {
            r.note(&format!("speedup/sqr_rewrite/{stored}v"), a / b);
        }
    }
    r.note("cap/old_225v_seq_median_ns", OLD_225V_SEQ_MEDIAN_NS);
    r
}

/// CI's `store-scale` smoke: the 10k-view rewrite must complete (median)
/// under the *old* 225-view rewrite time — the headline scaling claim.
/// Exits non-zero past the cap.
fn store_scale() {
    let r = bench_store_scale();
    let name = "sqr/rewrite/10000v/seq";
    let Some(median) = r.median_of(name) else {
        eprintln!("store-scale: `{name}` did not run");
        std::process::exit(1);
    };
    r.finish();
    if median > OLD_225V_SEQ_MEDIAN_NS {
        eprintln!(
            "store-scale: {name} median {} exceeds the old 225-view rewrite time {} — \
             the store no longer scales",
            fmt_ns(median),
            fmt_ns(OLD_225V_SEQ_MEDIAN_NS),
        );
        std::process::exit(1);
    }
    println!(
        "store-scale: {name} median {} within the old 225-view cap {}",
        fmt_ns(median),
        fmt_ns(OLD_225V_SEQ_MEDIAN_NS),
    );
}

/// An n-table chain query over trained statistics, so every DP candidate
/// evaluation pays real histogram scans.
#[allow(clippy::type_complexity)]
fn chain_query(
    n: usize,
    feedbacks: usize,
) -> (
    payless_sql::AnalyzedQuery,
    StatsRegistry,
    SemanticStore,
    HashMap<String, u64>,
) {
    let mut catalog = MapCatalog::new();
    let mut stats = StatsRegistry::new();
    let mut store = SemanticStore::new();
    let mut meta = HashMap::new();
    for i in 0..n {
        let schema = Schema::new(
            format!("C{i}"),
            vec![
                Column::free("a", Domain::int(0, 999)),
                Column::free("b", Domain::int(0, 999)),
            ],
        );
        catalog.add(schema.clone(), TableLocation::Market);
        stats.register(&schema, 10_000);
        for k in 0..feedbacks as i64 {
            let lo0 = (k * 53) % 900;
            let lo1 = (k * 97) % 900;
            stats.feedback(
                &schema.table,
                &region![(lo0, lo0 + 24), (lo1, lo1 + 24)],
                40,
            );
        }
        store.register(QuerySpace::of(&schema));
        meta.insert(schema.table.to_string(), 100u64);
    }
    let tables: Vec<String> = (0..n).map(|i| format!("C{i}")).collect();
    let joins: Vec<String> = (0..n - 1)
        .map(|i| format!("C{i}.b = C{}.a", i + 1))
        .collect();
    let sql = format!(
        "SELECT * FROM {} WHERE {}",
        tables.join(", "),
        joins.join(" AND ")
    );
    let q = analyze(&parse(&sql).unwrap(), &catalog).unwrap();
    (q, stats, store, meta)
}

fn bench_dp(s: &Scale) -> Runner {
    let n = s.dp_tables;
    let (q, stats, store, meta) = chain_query(n, s.dp_feedbacks);
    let mut r = Runner::new("hotpath_dp");
    r.note("tables", n as f64);
    r.note("threads", max_threads() as f64);
    for (strategy, cfg) in [
        ("left_deep", OptimizerConfig::payless_no_sqr()),
        ("bushy", OptimizerConfig::disable_all()),
    ] {
        let seq_name = format!("dp/{strategy}/{n}t/seq");
        r.bench(&seq_name, || {
            with_max_threads(1, || {
                black_box(optimize(&q, &stats, &store, &meta, &cfg, 0).unwrap());
            })
        });
        let par_name = format!("dp/{strategy}/{n}t/par");
        r.bench(&par_name, || {
            black_box(optimize(&q, &stats, &store, &meta, &cfg, 0).unwrap());
        });
        if let (Some(a), Some(b)) = (r.median_of(&seq_name), r.median_of(&par_name)) {
            r.note(&format!("speedup/{strategy}"), a / b);
        }
    }
    r
}

/// Byte-identical-output check: every parallel path must match the
/// single-threaded one exactly — plans, costs, remainders.
fn check_determinism(s: &Scale) {
    let mut failures = 0;

    // SQR rewrite — both the production path (store probe + cached
    // remainder pieces) and the from-scratch subtraction path.
    let (stats, store, q) = sqr_fixture(s);
    let cfg = rewrite_cfg();
    let views = store.views_overlapping("R", &q, Consistency::Weak, 0);
    let seq = with_max_threads(1, || rewrite(&stats, 100, &q, &views, &cfg));
    let seq_cached = with_max_threads(1, || store_rewrite(&stats, &store, &q, &cfg));
    for threads in [2usize, 4, 8] {
        let par = with_max_threads(threads, || rewrite(&stats, 100, &q, &views, &cfg));
        if par.remainders != seq.remainders
            || par.est_transactions.to_bits() != seq.est_transactions.to_bits()
        {
            eprintln!("FAIL: rewrite differs at {threads} threads");
            failures += 1;
        }
        let par_cached = with_max_threads(threads, || store_rewrite(&stats, &store, &q, &cfg));
        if par_cached.remainders != seq_cached.remainders
            || par_cached.est_transactions.to_bits() != seq_cached.est_transactions.to_bits()
        {
            eprintln!("FAIL: cached rewrite differs at {threads} threads");
            failures += 1;
        }
    }

    // DP, both engines.
    let (q, stats, store, meta) = chain_query(s.dp_tables.min(7), 16);
    for (strategy, cfg) in [
        ("left_deep", OptimizerConfig::payless_no_sqr()),
        ("bushy", OptimizerConfig::disable_all()),
    ] {
        let seq = with_max_threads(1, || optimize(&q, &stats, &store, &meta, &cfg, 0).unwrap());
        for threads in [2usize, 4, 8] {
            let par = with_max_threads(threads, || {
                optimize(&q, &stats, &store, &meta, &cfg, 0).unwrap()
            });
            if par.plan.to_string() != seq.plan.to_string()
                || par.cost.primary.to_bits() != seq.cost.primary.to_bits()
                || par.cost.secondary.to_bits() != seq.cost.secondary.to_bits()
            {
                eprintln!("FAIL: {strategy} plan differs at {threads} threads");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("determinism check: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("determinism check: parallel output identical to single-threaded");
}

/// Validate a `PAYLESS_JSON` dump: every non-empty line must parse as a
/// JSON object with a string `figure` and an array `runs`.
fn validate(path: &str) {
    let data = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("validate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut lines = 0;
    for (i, line) in data.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match payless_json::parse(line) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("validate: {path}:{}: malformed JSON: {e}", i + 1);
                std::process::exit(1);
            }
        };
        let figure = parsed.get_opt("figure").and_then(|f| f.as_str().ok());
        let runs = parsed.get_opt("runs").and_then(|r| r.as_arr().ok());
        if figure.is_none() || runs.is_none() {
            eprintln!(
                "validate: {path}:{}: missing `figure` string or `runs` array",
                i + 1
            );
            std::process::exit(1);
        }
        lines += 1;
    }
    if lines == 0 {
        eprintln!("validate: {path}: no JSONL records");
        std::process::exit(1);
    }
    println!("validate: {path}: {lines} well-formed JSONL record(s)");
}

/// Maximum tolerated fresh/baseline median ratio before `diff` fails.
const DIFF_TOLERANCE: f64 = 1.25;

/// Maximum tolerated metrics_on/metrics_off ratio: instrumentation must
/// cost no more than 5% of serve-mix wall-clock.
const METRICS_OVERHEAD_TOLERANCE: f64 = 1.05;

/// Maximum tolerated events_on/events_off ratio: the flight recorder must
/// cost no more than 5% of serve-mix wall-clock.
const EVENTS_OVERHEAD_TOLERANCE: f64 = 1.05;

/// Load `name -> median_nanos` for every run in the given JSONL baselines.
///
/// A baseline that reads fine but contributes **zero** runs is as useless
/// as a missing one — the diff would silently gate nothing — so each file
/// must yield at least one `(name, median_nanos)` pair or we exit loudly.
fn load_baselines(paths: &[String]) -> HashMap<String, f64> {
    let mut medians = HashMap::new();
    for path in paths {
        let data = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("diff: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let before = medians.len();
        for line in data.lines().filter(|l| !l.trim().is_empty()) {
            let parsed = match payless_json::parse(line) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("diff: {path}: malformed baseline JSON: {e}");
                    std::process::exit(1);
                }
            };
            let runs = parsed
                .get_opt("runs")
                .and_then(|r| r.as_arr().ok())
                .unwrap_or(&[]);
            for run in runs {
                if let (Some(name), Some(median)) = (
                    run.get_opt("name").and_then(|n| n.as_str().ok()),
                    run.get_opt("median_nanos").and_then(|m| m.as_f64().ok()),
                ) {
                    medians.insert(name.to_string(), median);
                }
            }
        }
        if medians.len() == before {
            eprintln!(
                "diff: baseline {path} contains no usable runs (every record \
                 lacks `runs[].name`/`runs[].median_nanos`) — refusing to \
                 diff against nothing"
            );
            std::process::exit(1);
        }
    }
    medians
}

/// Shape-check the committed baselines without re-running anything: every
/// file must be non-empty JSONL where each record carries a `figure` string
/// and a `runs` array, and the file as a whole yields at least one named
/// median. This is cheap enough for the `fmt` stage, so a truncated or
/// hand-mangled baseline fails CI in seconds instead of surfacing as a
/// mysterious "no baseline runs" half an hour later in `bench-diff`.
fn validate_baselines(paths: &[String]) {
    let fail = |msg: String| -> ! {
        eprintln!("validate-baselines: {msg}");
        std::process::exit(1);
    };
    if paths.is_empty() {
        fail("no baseline files given".into());
    }
    for path in paths {
        let data = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
        let mut records = 0usize;
        let mut runs_seen = 0usize;
        for (i, line) in data
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
        {
            let parsed = payless_json::parse(line)
                .unwrap_or_else(|e| fail(format!("{path}:{}: malformed JSON: {e}", i + 1)));
            if parsed
                .get_opt("figure")
                .and_then(|f| f.as_str().ok())
                .is_none()
            {
                fail(format!("{path}:{}: record lacks a `figure` string", i + 1));
            }
            let runs = parsed
                .get_opt("runs")
                .and_then(|r| r.as_arr().ok())
                .unwrap_or_else(|| fail(format!("{path}:{}: record lacks a `runs` array", i + 1)));
            for (j, run) in runs.iter().enumerate() {
                if run.get_opt("name").and_then(|n| n.as_str().ok()).is_none() {
                    fail(format!("{path}:{}: runs[{j}] lacks a `name`", i + 1));
                }
                if run
                    .get_opt("median_nanos")
                    .and_then(|m| m.as_f64().ok())
                    .is_none()
                {
                    fail(format!("{path}:{}: runs[{j}] lacks `median_nanos`", i + 1));
                }
                runs_seen += 1;
            }
            records += 1;
        }
        if records == 0 {
            fail(format!("{path}: no JSONL records"));
        }
        if runs_seen == 0 {
            fail(format!("{path}: {records} record(s) but zero runs"));
        }
        println!("validate-baselines: {path}: {records} record(s), {runs_seen} run(s)");
    }
    println!(
        "validate-baselines: {} baseline(s) well-formed",
        paths.len()
    );
}

/// One instrumentation-overhead gate (see the comment at its call sites):
/// `serve/mix/{q}q/{label}_on` must stay within `tolerance` of its `_off`
/// twin, re-measuring a breach up to twice before failing.
fn gate_overhead(
    label: &str,
    tolerance: f64,
    fresh: &[(String, f64)],
    remeasure: impl Fn() -> Runner,
) {
    let name = |suffix: &str| format!("serve/mix/{}q/{label}_{suffix}", FULL.serve_queries);
    let pair = |suffix: &str| {
        let name = name(suffix);
        fresh.iter().find(|(n, _)| *n == name).map(|(_, m)| *m)
    };
    let mut overhead = match (pair("off"), pair("on")) {
        (Some(off), Some(on)) if off > 0.0 => on / off,
        _ => {
            eprintln!("diff: missing {label}_on/{label}_off serve-mix runs");
            std::process::exit(1);
        }
    };
    let mut attempt = 0;
    while overhead > tolerance && attempt < 2 {
        attempt += 1;
        eprintln!(
            "diff: {label} overhead {overhead:.3}x exceeds {tolerance:.2}x — \
             re-measuring (attempt {attempt}/2)"
        );
        let runner = remeasure();
        if let (Some(off), Some(on)) = (
            runner.median_of(&name("off")),
            runner.median_of(&name("on")),
        ) {
            if off > 0.0 {
                overhead = on / off;
            }
        }
    }
    println!("diff: {label} overhead {overhead:.3}x (tolerance {tolerance:.2}x)");
    if overhead > tolerance {
        eprintln!("diff: {label} instrumentation overhead {overhead:.3}x exceeds {tolerance:.2}x");
        std::process::exit(1);
    }
}

/// Re-run the full-scale benches and compare each median against the
/// committed baselines. Run names embed the scale (`225v`, `8t`), so only a
/// full-scale rerun produces comparable keys; a fresh median more than
/// `DIFF_TOLERANCE` times the baseline is a regression.
fn diff(paths: &[String]) {
    let baselines = load_baselines(paths);
    if baselines.is_empty() {
        eprintln!("diff: no baseline runs found in {paths:?}");
        std::process::exit(1);
    }
    let mut fresh: Vec<(String, f64)> = Vec::new();
    let mut notes: Vec<(String, f64)> = Vec::new();
    for runner in [
        bench_sqr(&FULL),
        bench_store_scale(),
        bench_dp(&FULL),
        bench_metrics(&FULL),
        bench_events(&FULL),
    ] {
        for name in runner.run_names() {
            if let Some(median) = runner.median_of(&name) {
                fresh.push((name, median));
            }
        }
        notes.extend(runner.notes().iter().cloned());
        runner.finish();
    }
    // Batched spend-per-query points: deterministic (not timings), so any
    // drift against the committed BENCH_batch.json curve is a real
    // behavioural change in purchasing, not noise.
    for r in batch_spend_runs() {
        fresh.push((r.name, r.spend_per_query));
    }

    // Speedup advisories: a `speedup/*` note below 1.0 means the optimized
    // arm ran no faster than its reference arm (parallel vs sequential, or
    // cached vs from-scratch). On a single-core host parallel speedup is
    // physics, not a regression, and sub-millisecond margins drown in
    // scheduler noise — so warn, never fail.
    for (key, value) in &notes {
        if key.starts_with("speedup/") && *value < 1.0 {
            eprintln!(
                "diff: warning: {key} = {value:.2}x — no speedup over the reference arm \
                 (threads available: {}; advisory only)",
                max_threads()
            );
        }
    }

    // Instrumentation overhead gates: the metrics-on serve mix must stay
    // within METRICS_OVERHEAD_TOLERANCE of the metrics-off twin, and the
    // events-on mix within EVENTS_OVERHEAD_TOLERANCE of its events-off
    // twin. Each gate compares two fresh medians against each other (not a
    // baseline), so it holds on any machine regardless of absolute speed.
    // On a loaded shared host one ~5 ms serve-mix median can swing far past
    // the tolerance on noise alone, so a breach is re-measured before it
    // fails: only overhead that persists across every attempt counts as
    // real.
    gate_overhead("metrics", METRICS_OVERHEAD_TOLERANCE, &fresh, || {
        bench_metrics(&FULL)
    });
    gate_overhead("events", EVENTS_OVERHEAD_TOLERANCE, &fresh, || {
        bench_events(&FULL)
    });

    println!();
    println!(
        "{:<44} {:>10} {:>10} {:>7}",
        "diff vs baseline", "fresh", "base", "ratio"
    );
    let mut regressions = 0;
    let mut compared = 0;
    let mut benches: Vec<Json> = Vec::new();
    for (name, median) in &fresh {
        let Some(base) = baselines.get(name) else {
            println!("{name:<44} {:>10} (no baseline — skipped)", fmt_ns(*median));
            benches.push(Json::obj([
                ("name", Json::Str(name.clone())),
                ("fresh_nanos", median.to_json()),
                ("base_nanos", Json::Null),
                ("ratio", Json::Null),
                ("regressed", Json::Bool(false)),
            ]));
            continue;
        };
        compared += 1;
        let ratio = median / base;
        let regressed = ratio > DIFF_TOLERANCE;
        let verdict = if regressed {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{name:<44} {:>10} {:>10} {ratio:>6.2}x {verdict}",
            fmt_ns(*median),
            fmt_ns(*base),
        );
        benches.push(Json::obj([
            ("name", Json::Str(name.clone())),
            ("fresh_nanos", median.to_json()),
            ("base_nanos", base.to_json()),
            ("ratio", ratio.to_json()),
            ("regressed", Json::Bool(regressed)),
        ]));
    }
    // The machine-readable summary is written before any exit path below,
    // so CI gets an artifact even (especially) when a bench regressed.
    if let Ok(out) = std::env::var("BENCH_DIFF_JSON") {
        let summary = Json::obj([
            ("tolerance", DIFF_TOLERANCE.to_json()),
            ("compared", Json::Int(compared)),
            ("regressions", Json::Int(regressions)),
            ("benches", Json::Arr(benches)),
        ]);
        match std::fs::write(&out, summary.to_string_pretty()) {
            Ok(()) => println!("diff: wrote {out}"),
            Err(e) => {
                eprintln!("diff: cannot write {out}: {e}");
                std::process::exit(1);
            }
        }
    }
    if compared == 0 {
        eprintln!("diff: no fresh run matched a baseline name");
        std::process::exit(1);
    }
    if regressions > 0 {
        eprintln!(
            "diff: {regressions} run(s) regressed beyond {:.0}% of baseline",
            (DIFF_TOLERANCE - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!("diff: {compared} run(s) within {DIFF_TOLERANCE:.2}x of baseline");
}

/// Validate an `--explain-out` dump: the report must carry a non-empty
/// `operators` array whose every node pairs an `est` object with an
/// `actual` object, plus the `q_error` accuracy section.
fn validate_explain(path: &str) {
    let data = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("validate-explain: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let parsed = match payless_json::parse(&data) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("validate-explain: {path}: malformed JSON: {e}");
            std::process::exit(1);
        }
    };
    let Some(ops) = parsed.get_opt("operators").and_then(|o| o.as_arr().ok()) else {
        eprintln!("validate-explain: {path}: missing `operators` array");
        std::process::exit(1);
    };
    if ops.is_empty() {
        eprintln!("validate-explain: {path}: `operators` is empty (tracing off?)");
        std::process::exit(1);
    }
    for (i, op) in ops.iter().enumerate() {
        for side in ["est", "actual"] {
            if op.get_opt(side).and_then(|s| s.as_obj().ok()).is_none() {
                eprintln!("validate-explain: {path}: operator {i} lacks an `{side}` object");
                std::process::exit(1);
            }
        }
    }
    if parsed.get_opt("q_error").is_none() {
        eprintln!("validate-explain: {path}: missing `q_error` section");
        std::process::exit(1);
    }
    println!(
        "validate-explain: {path}: {} operator(s) with est+actual, q_error present",
        ops.len()
    );
}

/// A `u64` environment knob with a default.
fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Shared-store tuning from the environment, mirroring the CLI's mapping:
/// `PAYLESS_STORE_MAX_VIEWS` caps the per-table view count,
/// `PAYLESS_STORE_COMPACT=0` keeps every purchased box verbatim.
fn store_config_from_env() -> StoreConfig {
    let mut cfg = StoreConfig::default();
    let cap = env_u64("PAYLESS_STORE_MAX_VIEWS", 0);
    if cap > 0 {
        cfg.max_views = cap as usize;
    }
    if let Ok(v) = std::env::var("PAYLESS_STORE_COMPACT") {
        cfg.compaction = v != "0";
    }
    cfg
}

/// The serving driver behind the CI serve-smoke: replay a deterministic
/// multi-client WHW mix through [`payless_serve::Serve`] and dump the
/// reconciled report. The market runs at page size 1, where delivered pages
/// equal delivered records and are therefore independent of thread
/// interleaving — what lets `validate-serve` compare dumps across thread
/// counts.
/// The pinned serve-smoke workload (shared with the metrics bench so the
/// overhead numbers describe the same mix CI validates).
fn smoke_workload() -> RealWorkload {
    RealWorkload::generate(&WhwConfig {
        stations: 40,
        countries: 4,
        cities_per_country: 3,
        days: 60,
        zips: 60,
        ranks: 100,
        seed: 3,
    })
}

fn serve(out: &str) {
    let workload = smoke_workload();
    let page_size = 1;
    let clients = env_u64("PAYLESS_CLIENTS", 4) as usize;
    let queries = env_u64("PAYLESS_SERVE_QUERIES", 24) as usize;
    let seed = env_u64("PAYLESS_SERVE_SEED", 48879);
    let coalesce = std::env::var("PAYLESS_COALESCE")
        .map(|v| v != "0")
        .unwrap_or(true);
    let fault_seed = std::env::var("PAYLESS_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let threads = max_threads();
    let metrics_out = std::env::var("PAYLESS_METRICS_OUT").ok();
    let hub = metrics_out
        .as_ref()
        .map(|_| Arc::new(MetricsHub::new(MetricsConfig::from_env())));

    let market = Arc::new(build_market(&workload, page_size));
    if let Some(fs) = fault_seed {
        market.attach_fault_injector(FaultInjector::new(FaultPlan::chaos(fs)));
    }
    let cfg = ServeConfig {
        threads,
        coalesce,
        // Chaos runs must still answer every query so dumps stay
        // comparable across thread counts.
        retry: if fault_seed.is_some() {
            RetryPolicy::unlimited()
        } else {
            RetryPolicy::default()
        },
        metrics: hub.clone(),
        strict_reconcile: MetricsConfig::strict_from_env(),
        store: store_config_from_env(),
        batch: BatchConfig::from_env(),
        ..ServeConfig::default()
    };
    let layer = Serve::new(market, QueryWorkload::local_tables(&workload), cfg);
    let templates: Vec<_> = QueryWorkload::templates(&workload)
        .iter()
        .map(|sql| layer.prepare(sql).expect("workload template parses"))
        .collect();
    // Both single-table WHW templates; see the serve-smoke rationale in
    // DESIGN.md for why bind-join templates stay out of the smoke mix.
    let mix = serve_mix(&workload, &[0, 1], clients, queries, seed);
    let mut report = run_mix(&layer, &mix, &templates).expect("serve mix succeeds");
    report.seed = seed;
    report.clients = clients as u64;
    report.page_size = page_size;
    report.fault_seed = fault_seed;
    if let Err(e) = std::fs::write(out, report.to_json().to_string_pretty()) {
        eprintln!("serve: cannot write {out}: {e}");
        std::process::exit(1);
    }
    if let (Some(hub), Some(path)) = (&hub, &metrics_out) {
        hub.roll(); // close the tail window so the series covers the run
        if let Err(e) = std::fs::write(path, hub.exposition())
            .and_then(|()| std::fs::write(format!("{path}.jsonl"), hub.series_jsonl()))
        {
            eprintln!("serve: cannot write metrics to {path}: {e}");
            std::process::exit(1);
        }
        println!("serve: metrics -> {path} (+ {path}.jsonl)");
    }
    println!(
        "serve: {} queries x {} clients on {} thread(s), coalesce={}, fault={:?}: \
         {} pages ({} wasted), {} wait(s), ~{} page(s) saved -> {out}",
        report.queries,
        report.clients,
        report.threads,
        report.coalesce,
        report.fault_seed,
        report.total_pages,
        report.wasted_pages,
        report.coalesce_waits,
        report.saved_pages,
    );
}

/// The serve mix with the metrics hub attached vs detached — the cost of
/// live observability on the exact workload the CI smoke replays. Each
/// iteration stands up a fresh market and serving layer, so both arms pay
/// identical setup and purchase costs; only the hub differs.
fn bench_metrics(s: &Scale) -> Runner {
    let workload = smoke_workload();
    let queries = s.serve_queries;
    let mix = serve_mix(&workload, &[0, 1], 4, queries, 48879);
    let templates_sql = QueryWorkload::templates(&workload);
    let run_once = |hub: Option<Arc<MetricsHub>>| {
        let market = Arc::new(build_market(&workload, 1));
        let cfg = ServeConfig {
            threads: 1,
            metrics: hub,
            ..ServeConfig::default()
        };
        let layer = Serve::new(market, QueryWorkload::local_tables(&workload), cfg);
        let templates: Vec<_> = templates_sql
            .iter()
            .map(|sql| layer.prepare(sql).expect("workload template parses"))
            .collect();
        black_box(run_mix(&layer, &mix, &templates).expect("serve mix succeeds"));
    };

    let mut r = Runner::new("hotpath_metrics");
    r.note("queries", queries as f64);
    let off_name = format!("serve/mix/{queries}q/metrics_off");
    r.bench(&off_name, || run_once(None));
    let on_name = format!("serve/mix/{queries}q/metrics_on");
    r.bench(&on_name, || {
        run_once(Some(Arc::new(MetricsHub::new(MetricsConfig::default()))))
    });
    if let (Some(off), Some(on)) = (r.median_of(&off_name), r.median_of(&on_name)) {
        r.note("overhead/metrics_on", on / off);
    }
    r
}

/// The serve mix with the flight recorder attached vs detached — the cost
/// of the structured event journal on the exact workload the CI smoke
/// replays. Mirrors `bench_metrics`: each iteration stands up a fresh
/// market and serving layer, so both arms pay identical setup and purchase
/// costs; only the journal differs.
fn bench_events(s: &Scale) -> Runner {
    let workload = smoke_workload();
    let queries = s.serve_queries;
    let mix = serve_mix(&workload, &[0, 1], 4, queries, 48879);
    let templates_sql = QueryWorkload::templates(&workload);
    let run_once = |journal: Option<Arc<EventJournal>>| {
        let market = Arc::new(build_market(&workload, 1));
        let cfg = ServeConfig {
            threads: 1,
            events: journal,
            ..ServeConfig::default()
        };
        let layer = Serve::new(market, QueryWorkload::local_tables(&workload), cfg);
        let templates: Vec<_> = templates_sql
            .iter()
            .map(|sql| layer.prepare(sql).expect("workload template parses"))
            .collect();
        black_box(run_mix(&layer, &mix, &templates).expect("serve mix succeeds"));
    };

    let mut r = Runner::new("hotpath_events");
    r.note("queries", queries as f64);
    let off_name = format!("serve/mix/{queries}q/events_off");
    r.bench(&off_name, || run_once(None));
    let on_name = format!("serve/mix/{queries}q/events_on");
    r.bench(&on_name, || {
        run_once(Some(Arc::new(EventJournal::default())))
    });
    if let (Some(off), Some(on)) = (r.median_of(&off_name), r.median_of(&on_name)) {
        r.note("overhead/events_on", on / off);
    }
    r
}

/// Validate a flight-recorder JSONL dump (an `--events-out` journal or a
/// black-box post-mortem): every line must parse as one JSON event with a
/// strictly increasing `seq`, an `at_nanos` timestamp, a known `severity`,
/// and a `kind` name. With `expect_violation`, the dump must be a real
/// post-mortem: at least one `watchdog_violation` event plus the `blackbox`
/// marker the dumper appends.
fn validate_events(path: &str, expect_violation: bool) {
    let fail = |msg: String| -> ! {
        eprintln!("validate-events: {msg}");
        std::process::exit(1);
    };
    let data =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let mut last_seq: Option<u64> = None;
    let mut events = 0u64;
    let mut saw_violation = false;
    let mut saw_blackbox = false;
    for (i, line) in data.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let parsed = payless_json::parse(line)
            .unwrap_or_else(|e| fail(format!("{path}:{}: malformed JSON: {e}", i + 1)));
        let seq = parsed
            .get_opt("seq")
            .and_then(|s| s.as_u64().ok())
            .unwrap_or_else(|| fail(format!("{path}:{}: no `seq`", i + 1)));
        if let Some(prev) = last_seq {
            if seq <= prev {
                fail(format!(
                    "{path}:{}: seq {seq} not strictly increasing (follows {prev})",
                    i + 1
                ));
            }
        }
        last_seq = Some(seq);
        if parsed
            .get_opt("at_nanos")
            .and_then(|v| v.as_u64().ok())
            .is_none()
        {
            fail(format!("{path}:{}: no `at_nanos` timestamp", i + 1));
        }
        let severity = parsed
            .get_opt("severity")
            .and_then(|s| s.as_str().ok())
            .unwrap_or_else(|| fail(format!("{path}:{}: no `severity`", i + 1)));
        if !matches!(severity, "debug" | "info" | "warn" | "error") {
            fail(format!("{path}:{}: unknown severity `{severity}`", i + 1));
        }
        let kind = parsed
            .get_opt("kind")
            .and_then(|k| k.as_str().ok())
            .unwrap_or_else(|| fail(format!("{path}:{}: no `kind`", i + 1)));
        saw_violation |= kind == "watchdog_violation";
        saw_blackbox |= kind == "blackbox";
        events += 1;
    }
    if events == 0 {
        fail(format!("{path}: no events"));
    }
    if expect_violation {
        if !saw_violation {
            fail(format!(
                "{path}: expected a `watchdog_violation` event in the black box"
            ));
        }
        if !saw_blackbox {
            fail(format!("{path}: expected the `blackbox` marker event"));
        }
    }
    println!(
        "validate-events: {path}: {events} well-formed event(s){}",
        if expect_violation {
            "; violation + black-box marker present"
        } else {
            ""
        }
    );
}

/// The events-smoke abort harness: replay the pinned chaos mix under the
/// strict watchdog sampling after every query, then slip one unattributed
/// charge straight onto the billing meter mid-run — spend no query's ledger
/// can account for. The next watchdog sample sees meter > ledger, strict
/// mode aborts the mix, and the journal's black box must land at `out`
/// covering the violating sample. Exits non-zero unless the run fails *and*
/// the dump exists.
fn events_abort(out: &str) {
    let fail = |msg: String| -> ! {
        eprintln!("events-abort: {msg}");
        std::process::exit(1);
    };
    let _ = std::fs::remove_file(out);
    let workload = smoke_workload();
    let market = Arc::new(build_market(&workload, 1));
    market.attach_fault_injector(FaultInjector::new(FaultPlan::chaos(48879)));
    let journal = Arc::new(EventJournal::new(1 << 14));
    journal.set_blackbox(Some(out.to_string()));
    let cfg = ServeConfig {
        threads: 1,
        retry: RetryPolicy::unlimited(),
        strict_reconcile: true,
        watchdog_every: 1,
        events: Some(Arc::clone(&journal)),
        ..ServeConfig::default()
    };
    let layer = Serve::new(
        Arc::clone(&market),
        QueryWorkload::local_tables(&workload),
        cfg,
    );
    let templates: Vec<_> = QueryWorkload::templates(&workload)
        .iter()
        .map(|sql| layer.prepare(sql).expect("workload template parses"))
        .collect();
    let mix = serve_mix(&workload, &[0, 1], 4, 24, 48879);

    // The saboteur waits for the first real purchase (which is necessarily
    // after the watchdog's base snapshot), then charges the meter directly.
    let sab_market = Arc::clone(&market);
    let table = market.table_names()[0].clone();
    let base = market.bill().transactions();
    let saboteur = std::thread::spawn(move || {
        while sab_market.bill().transactions() <= base {
            std::thread::yield_now();
        }
        sab_market.meter().charge(&table, 97, 97);
    });
    // The violation normally surfaces as a mid-run strict Err; if the
    // charge races past the last sample it panics out of the finish-time
    // reconciliation instead. Both paths dump the black box first.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_mix(&layer, &mix, &templates)
    }));
    saboteur.join().expect("saboteur thread");
    match result {
        Ok(Ok(_)) => fail("the sabotaged run reconciled — no violation was detected".into()),
        Ok(Err(e)) => println!("events-abort: mix aborted as expected: {e}"),
        Err(_) => println!("events-abort: finish-time strict reconciliation panicked as expected"),
    }
    match std::fs::metadata(out) {
        Ok(m) if m.len() > 0 => println!(
            "events-abort: black box ({} bytes, {} event(s) recorded) -> {out}",
            m.len(),
            journal.recorded()
        ),
        Ok(_) => fail(format!("black box {out} is empty")),
        Err(e) => fail(format!("black box {out} was not written: {e}")),
    }
}

/// Read and parse one serve dump, or exit non-zero.
fn load_serve_report(path: &str) -> ServeReport {
    let data = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("validate-serve: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let parsed = match payless_json::parse(&data) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("validate-serve: {path}: malformed JSON: {e}");
            std::process::exit(1);
        }
    };
    match ServeReport::from_json(&parsed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("validate-serve: {path}: not a serve report: {e}");
            std::process::exit(1);
        }
    }
}

/// Reconcile a parallel serve dump against its serial oracle: same mix,
/// identical answers, each ledger equal to its own billing meter, and
/// parallel delivered spend no greater than serial.
fn validate_serve(serial_path: &str, parallel_path: &str) {
    let serial = load_serve_report(serial_path);
    let parallel = load_serve_report(parallel_path);
    let fail = |msg: String| {
        eprintln!("validate-serve: {msg}");
        std::process::exit(1);
    };
    if serial.threads != 1 {
        fail(format!(
            "{serial_path}: serial oracle ran on {} threads, expected 1",
            serial.threads
        ));
    }
    for (field, a, b) in [
        ("seed", serial.seed, parallel.seed),
        ("clients", serial.clients, parallel.clients),
        ("queries", serial.queries, parallel.queries),
        ("page_size", serial.page_size, parallel.page_size),
    ] {
        if a != b {
            fail(format!("dumps replay different mixes: {field} {a} vs {b}"));
        }
    }
    if serial.per_query.len() != parallel.per_query.len() {
        fail(format!(
            "per-query rows differ: {} vs {}",
            serial.per_query.len(),
            parallel.per_query.len()
        ));
    }
    for (i, (s, p)) in serial.per_query.iter().zip(&parallel.per_query).enumerate() {
        if s.client != p.client || s.template != p.template {
            fail(format!("query {i}: submission order diverged"));
        }
        if s.digest != p.digest || s.rows != p.rows {
            fail(format!(
                "query {i}: answers differ from the serial oracle \
                 (digest {:#x} vs {:#x}, rows {} vs {})",
                s.digest, p.digest, s.rows, p.rows
            ));
        }
    }
    for (path, r) in [(serial_path, &serial), (parallel_path, &parallel)] {
        if r.total_pages != r.meter_transactions {
            fail(format!(
                "{path}: ledger does not reconcile with the billing meter: \
                 {} ledger pages vs {} metered transactions",
                r.total_pages, r.meter_transactions
            ));
        }
        if r.fault_seed.is_none() && r.wasted_pages != 0 {
            fail(format!(
                "{path}: clean run reports {} wasted pages",
                r.wasted_pages
            ));
        }
    }
    let (dp, ds) = (parallel.delivered_pages(), serial.delivered_pages());
    if parallel.coalesce && dp > ds {
        fail(format!(
            "coalesced run delivered (and paid for) more pages than the \
             serial oracle: {dp} vs {ds}"
        ));
    }
    println!(
        "validate-serve: {} queries agree with the serial oracle; ledgers \
         reconcile; delivered pages {dp} (parallel, {} threads) vs {ds} \
         (serial); {} coalesce wait(s), ~{} page(s) saved",
        parallel.queries, parallel.threads, parallel.coalesce_waits, parallel.saved_pages
    );
}

/// One durable-store status dump (`/v1/store`), reduced to what recovery
/// validation needs: the per-table ledger/meter pairs.
struct StoreStatus {
    /// Σ per-table ledger pages.
    ledger_total: u64,
    /// `(table, ledger_pages, meter_pages)` rows.
    tables: Vec<(String, u64, u64)>,
}

/// Read and parse one `/v1/store` status dump, or exit non-zero.
fn load_store_status(path: &str) -> StoreStatus {
    let fail = |msg: String| -> ! {
        eprintln!("validate-recovery: {msg}");
        std::process::exit(1);
    };
    let data =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let parsed =
        payless_json::parse(&data).unwrap_or_else(|e| fail(format!("{path}: malformed JSON: {e}")));
    if parsed.get_opt("durable").and_then(|d| d.as_bool().ok()) != Some(true) {
        fail(format!("{path}: server was not running durable"));
    }
    let rows = parsed
        .get_opt("tables")
        .and_then(|t| t.as_arr().ok())
        .unwrap_or_else(|| fail(format!("{path}: missing `tables` array")));
    let mut tables = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let table = row
            .get_opt("table")
            .and_then(|t| t.as_str().ok())
            .unwrap_or_else(|| fail(format!("{path}: tables[{i}] lacks `table`")));
        let ledger = row
            .get_opt("ledger_pages")
            .and_then(|v| v.as_u64().ok())
            .unwrap_or_else(|| fail(format!("{path}: tables[{i}] lacks `ledger_pages`")));
        let meter = row
            .get_opt("meter_pages")
            .and_then(|v| v.as_u64().ok())
            .unwrap_or_else(|| fail(format!("{path}: tables[{i}] lacks `meter_pages`")));
        tables.push((table.to_string(), ledger, meter));
    }
    StoreStatus {
        ledger_total: tables.iter().map(|(_, l, _)| *l).sum(),
        tables,
    }
}

/// The crash-recovery gate: a run that was killed partway through, then
/// restarted and re-driven, must end exactly where an uninterrupted run
/// ends — and nothing may be billed twice along the way.
///
/// Inputs: `oracle` — a clean serial run of the pinned mix on a fresh
/// store; `run2` — the post-crash re-drive of the same mix against the
/// recovered server; `recovered` — `/v1/store` right after restart (before
/// run2); `fin` — `/v1/store` after run2.
///
/// Gates, in order: both store dumps reconcile per table (ledger == the
/// WAL's recorded absolute meter); run2's own ledger matches its meter
/// delta; mixes match; run2's answers equal the oracle's; and the no-
/// double-billing equation `recovered + run2 == oracle` — pages surviving
/// the crash plus pages bought on the re-drive must cover the mix exactly,
/// so a page that survived recovery is never bought again and a page lost
/// to the torn tail is bought exactly once more. Finally the recovered
/// store's ending ledger equals the oracle's total spend.
fn validate_recovery(oracle_path: &str, run2_path: &str, recovered_path: &str, final_path: &str) {
    let fail = |msg: String| -> ! {
        eprintln!("validate-recovery: {msg}");
        std::process::exit(1);
    };
    let oracle = load_serve_report(oracle_path);
    let run2 = load_serve_report(run2_path);
    let recovered = load_store_status(recovered_path);
    let fin = load_store_status(final_path);

    for (path, store) in [(recovered_path, &recovered), (final_path, &fin)] {
        for (table, ledger, meter) in &store.tables {
            if ledger != meter {
                fail(format!(
                    "{path}: table {table} does not reconcile: {ledger} ledger \
                     pages vs {meter} metered (a page was double-counted or lost)"
                ));
            }
        }
    }
    for (path, r) in [(oracle_path, &oracle), (run2_path, &run2)] {
        if r.total_pages != r.meter_transactions {
            fail(format!(
                "{path}: ledger does not reconcile with the billing meter: \
                 {} ledger pages vs {} metered transactions",
                r.total_pages, r.meter_transactions
            ));
        }
    }
    for (field, a, b) in [
        ("seed", oracle.seed, run2.seed),
        ("clients", oracle.clients, run2.clients),
        ("queries", oracle.queries, run2.queries),
        ("page_size", oracle.page_size, run2.page_size),
    ] {
        if a != b {
            fail(format!("dumps replay different mixes: {field} {a} vs {b}"));
        }
    }
    if oracle.per_query.len() != run2.per_query.len() {
        fail(format!(
            "per-query rows differ: {} vs {}",
            oracle.per_query.len(),
            run2.per_query.len()
        ));
    }
    for (i, (s, p)) in oracle.per_query.iter().zip(&run2.per_query).enumerate() {
        if s.digest != p.digest || s.rows != p.rows {
            fail(format!(
                "query {i}: post-recovery answers differ from the oracle \
                 (digest {:#x} vs {:#x}, rows {} vs {})",
                s.digest, p.digest, s.rows, p.rows
            ));
        }
    }
    if recovered.ledger_total + run2.total_pages != oracle.total_pages {
        fail(format!(
            "double-billing check failed: {} page(s) survived the crash + {} \
             bought on the re-drive != {} an uninterrupted run buys (over-buy \
             means a recovered page was billed twice; under-buy means the \
             recovered store claims coverage it never paid for)",
            recovered.ledger_total, run2.total_pages, oracle.total_pages
        ));
    }
    if fin.ledger_total != oracle.total_pages {
        fail(format!(
            "final recovered ledger {} != oracle total spend {}",
            fin.ledger_total, oracle.total_pages
        ));
    }
    println!(
        "validate-recovery: {} page(s) survived the crash, {} re-bought, {} \
         total — matches the uninterrupted oracle exactly; {} table(s) \
         reconcile; answers agree",
        recovered.ledger_total,
        run2.total_pages,
        fin.ledger_total,
        fin.tables.len()
    );
}

/// First sample value of an exposition metric (exact name match before the
/// space), parsed as u64.
fn expo_value(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        let (k, v) = line.split_once(' ')?;
        (k == name).then(|| v.trim().parse().ok())?
    })
}

/// Cross-check a metrics dump (`<path>` exposition + `<path>.jsonl`
/// series) against the serve report it was captured with.
fn validate_metrics(metrics_path: &str, serve_path: &str) {
    let fail = |msg: String| -> ! {
        eprintln!("validate-metrics: {msg}");
        std::process::exit(1);
    };
    let report = load_serve_report(serve_path);
    let exposition = std::fs::read_to_string(metrics_path)
        .unwrap_or_else(|e| fail(format!("cannot read {metrics_path}: {e}")));

    // Exposition shape: typed families with samples.
    for ty in [
        "# TYPE payless_market_calls_total counter",
        "# TYPE payless_market_call_nanos histogram",
        "# TYPE payless_serve_query_nanos histogram",
        "# TYPE payless_watchdog_drift_pages gauge",
    ] {
        if !exposition.contains(ty) {
            fail(format!("{metrics_path}: missing `{ty}`"));
        }
    }
    let counter = |name: &str| -> u64 {
        expo_value(&exposition, name)
            .unwrap_or_else(|| fail(format!("{metrics_path}: no sample for `{name}`")))
    };

    // The reconciliation invariant, read back from the exposition: pages
    // the call layer counted == pages the seller's meter charged.
    let billed = counter("payless_market_pages_billed_total");
    if billed != report.meter_transactions {
        fail(format!(
            "billed pages diverge from the billing meter: exposition says {billed}, \
             serve report metered {}",
            report.meter_transactions
        ));
    }
    if counter("payless_serve_queries_total") != report.queries {
        fail(format!(
            "query counts diverge: exposition says {}, serve report ran {}",
            counter("payless_serve_queries_total"),
            report.queries
        ));
    }
    if counter("payless_serve_query_nanos_count") != report.queries {
        fail("serve latency histogram did not observe every query".into());
    }
    let samples = counter("payless_watchdog_samples_total");
    if samples == 0 || samples != report.watchdog_samples {
        fail(format!(
            "watchdog samples: exposition {samples}, report {} (want equal and nonzero)",
            report.watchdog_samples
        ));
    }
    if counter("payless_watchdog_drift_pages") != 0 {
        fail("watchdog drift gauge is nonzero after quiescence".into());
    }
    if counter("payless_watchdog_violations_total") != 0 {
        fail("watchdog recorded reconciliation violations".into());
    }

    // Windowed series: parseable lines from window 0 on, whose per-window
    // deltas sum back to the cumulative meter total.
    let series_path = format!("{metrics_path}.jsonl");
    let series = std::fs::read_to_string(&series_path)
        .unwrap_or_else(|e| fail(format!("cannot read {series_path}: {e}")));
    let mut windows = 0u64;
    let mut windowed_billed = 0u64;
    for (i, line) in series.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let parsed = payless_json::parse(line)
            .unwrap_or_else(|e| fail(format!("{series_path}:{}: malformed JSON: {e}", i + 1)));
        let window = parsed
            .get_opt("window")
            .and_then(|w| w.as_u64().ok())
            .unwrap_or_else(|| fail(format!("{series_path}:{}: no `window` index", i + 1)));
        if window != i as u64 {
            fail(format!(
                "{series_path}:{}: window {window} out of order (ring evicted data?)",
                i + 1
            ));
        }
        windowed_billed += parsed
            .get_opt("counters")
            .and_then(|c| c.get_opt("payless_market_pages_billed_total"))
            .and_then(|v| v.as_u64().ok())
            .unwrap_or(0);
        windows += 1;
    }
    if windows == 0 {
        fail(format!("{series_path}: no windows dumped"));
    }
    if windowed_billed != report.meter_transactions {
        fail(format!(
            "windowed billed-page deltas sum to {windowed_billed}, but the meter \
             charged {} — the series lost spend",
            report.meter_transactions
        ));
    }
    println!(
        "validate-metrics: {metrics_path}: exposition reconciles with the meter \
         ({billed} pages, {} queries); watchdog {samples} sample(s), zero drift; \
         {windows} window(s) sum to the cumulative totals",
        report.queries
    );
}

/// One point of the batched spend-per-query curve.
struct BatchSpendRun {
    name: String,
    clients: usize,
    queries: u64,
    delivered_pages: u64,
    spend_per_query: f64,
}

/// Replay the pinned overlapping-hot-region mix with batched purchasing on
/// at each client count. Every client issues the same 12-query stream
/// regardless of how many other clients run, and all streams draw from one
/// seed-pinned hot pool — so total queries grow linearly with clients while
/// the union of purchased regions saturates. At page size 1 under the
/// serve layer's exact rewrite profile, delivered pages are a function of
/// that union alone (interleaving-independent), which is what lets `diff`
/// gate on these numbers like timing medians.
fn batch_spend_runs() -> Vec<BatchSpendRun> {
    let workload = smoke_workload();
    let per_client = 12;
    let seed = 48879;
    let mut out = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let market = Arc::new(build_market(&workload, 1));
        let cfg = ServeConfig {
            threads: clients.min(4),
            batch: Some(BatchConfig::default()),
            ..ServeConfig::default()
        };
        let layer = Serve::new(market, QueryWorkload::local_tables(&workload), cfg);
        let templates: Vec<_> = QueryWorkload::templates(&workload)
            .iter()
            .map(|sql| layer.prepare(sql).expect("workload template parses"))
            .collect();
        let mix = overlapping_mix(&workload, &[0, 1], clients, per_client, seed);
        let report = run_mix(&layer, &mix, &templates).expect("overlapping mix succeeds");
        let delivered = report.delivered_pages();
        out.push(BatchSpendRun {
            name: format!("batch/spend_per_query/{clients}c"),
            clients,
            queries: report.queries,
            delivered_pages: delivered,
            spend_per_query: delivered as f64 / report.queries as f64,
        });
    }
    out
}

/// The `batch` mode: dump the spend-per-query curve as a JSONL baseline
/// and enforce the headline claim — adding clients to the shared hot pool
/// must *strictly* lower the pages each query pays for.
fn bench_batch(out: &str) {
    let runs = batch_spend_runs();
    println!(
        "{:<32} {:>8} {:>12} {:>12}",
        "batched overlapping mix", "queries", "delivered", "pages/query"
    );
    for r in &runs {
        println!(
            "{:<32} {:>8} {:>12} {:>12.3}",
            r.name, r.queries, r.delivered_pages, r.spend_per_query
        );
    }
    let jsonl = Json::obj([
        ("figure", Json::str("hotpath_batch")),
        (
            "runs",
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::Str(r.name.clone())),
                            // Spend per query, not a duration — named so the
                            // generic `diff` baseline loader can gate on it.
                            ("median_nanos", r.spend_per_query.to_json()),
                            ("clients", Json::Int(r.clients as i64)),
                            ("queries", r.queries.to_json()),
                            ("delivered_pages", r.delivered_pages.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("unit", Json::str("delivered_pages_per_query")),
    ]);
    if let Err(e) = std::fs::write(out, format!("{}\n", jsonl.to_string_compact())) {
        eprintln!("batch: cannot write {out}: {e}");
        std::process::exit(1);
    }
    for pair in runs.windows(2) {
        if pair[1].spend_per_query >= pair[0].spend_per_query {
            eprintln!(
                "batch: spend per query must strictly decrease as clients are added: \
                 {} pays {:.3} pages/query but {} pays {:.3}",
                pair[0].name, pair[0].spend_per_query, pair[1].name, pair[1].spend_per_query
            );
            std::process::exit(1);
        }
    }
    println!(
        "batch: spend per query falls {:.3} -> {:.3} pages from {} to {} clients -> {out}",
        runs[0].spend_per_query,
        runs[runs.len() - 1].spend_per_query,
        runs[0].clients,
        runs[runs.len() - 1].clients,
    );
}

/// The `batch-serve` driver: one serve run of the overlapping mix, dumped
/// as a report for `validate-batch`. Unlike `serve`, `PAYLESS_SERVE_QUERIES`
/// counts queries per client, so client streams stay identical across
/// client counts.
fn batch_serve(out: &str) {
    let workload = smoke_workload();
    let page_size = 1;
    let clients = env_u64("PAYLESS_CLIENTS", 4) as usize;
    let per_client = env_u64("PAYLESS_SERVE_QUERIES", 12) as usize;
    let seed = env_u64("PAYLESS_SERVE_SEED", 48879);
    let fault_seed = std::env::var("PAYLESS_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let threads = max_threads();

    let market = Arc::new(build_market(&workload, page_size));
    if let Some(fs) = fault_seed {
        market.attach_fault_injector(FaultInjector::new(FaultPlan::chaos(fs)));
    }
    let cfg = ServeConfig {
        threads,
        retry: if fault_seed.is_some() {
            RetryPolicy::unlimited()
        } else {
            RetryPolicy::default()
        },
        strict_reconcile: MetricsConfig::strict_from_env(),
        store: store_config_from_env(),
        batch: BatchConfig::from_env(),
        ..ServeConfig::default()
    };
    let batch_on = cfg.batch.is_some();
    let layer = Serve::new(market, QueryWorkload::local_tables(&workload), cfg);
    let templates: Vec<_> = QueryWorkload::templates(&workload)
        .iter()
        .map(|sql| layer.prepare(sql).expect("workload template parses"))
        .collect();
    let mix = overlapping_mix(&workload, &[0, 1], clients, per_client, seed);
    let mut report = run_mix(&layer, &mix, &templates).expect("overlapping mix succeeds");
    report.seed = seed;
    report.clients = clients as u64;
    report.page_size = page_size;
    report.fault_seed = fault_seed;
    if let Err(e) = std::fs::write(out, report.to_json().to_string_pretty()) {
        eprintln!("batch-serve: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "batch-serve: {} queries x {} clients on {} thread(s), batch={}, fault={:?}: \
         {} pages ({} wasted), {} batch join(s), {} shared page(s) -> {out}",
        report.queries,
        report.clients,
        report.threads,
        batch_on,
        report.fault_seed,
        report.total_pages,
        report.wasted_pages,
        report.batch_joins,
        report.shared_pages,
    );
}

/// Reconcile a batched replay of the overlapping mix against its unbatched
/// twin: batching may change who pays, never what anyone sees or the total
/// delivered bill.
fn validate_batch(unbatched_path: &str, batched_path: &str) {
    let unbatched = load_serve_report(unbatched_path);
    let batched = load_serve_report(batched_path);
    let fail = |msg: String| {
        eprintln!("validate-batch: {msg}");
        std::process::exit(1);
    };
    if unbatched.batch {
        fail(format!(
            "{unbatched_path}: the unbatched twin ran with batching on"
        ));
    }
    if !batched.batch {
        fail(format!(
            "{batched_path}: the batched run ran with batching off"
        ));
    }
    for (field, a, b) in [
        ("seed", unbatched.seed, batched.seed),
        ("clients", unbatched.clients, batched.clients),
        ("queries", unbatched.queries, batched.queries),
        ("page_size", unbatched.page_size, batched.page_size),
    ] {
        if a != b {
            fail(format!("dumps replay different mixes: {field} {a} vs {b}"));
        }
    }
    if unbatched.per_query.len() != batched.per_query.len() {
        fail(format!(
            "per-query rows differ: {} vs {}",
            unbatched.per_query.len(),
            batched.per_query.len()
        ));
    }
    for (i, (u, b)) in unbatched
        .per_query
        .iter()
        .zip(&batched.per_query)
        .enumerate()
    {
        if u.client != b.client || u.template != b.template {
            fail(format!("query {i}: submission order diverged"));
        }
        if u.digest != b.digest || u.rows != b.rows {
            fail(format!(
                "query {i}: batched answer differs from the unbatched oracle \
                 (digest {:#x} vs {:#x}, rows {} vs {})",
                u.digest, b.digest, u.rows, b.rows
            ));
        }
    }
    for (path, r) in [(unbatched_path, &unbatched), (batched_path, &batched)] {
        if r.total_pages != r.meter_transactions {
            fail(format!(
                "{path}: ledger does not reconcile with the billing meter: \
                 {} ledger pages vs {} metered transactions",
                r.total_pages, r.meter_transactions
            ));
        }
    }
    let (db, du) = (batched.delivered_pages(), unbatched.delivered_pages());
    if db > du {
        fail(format!(
            "batching delivered (and paid for) more pages than the unbatched \
             twin: {db} vs {du}"
        ));
    }
    if batched.batch_joins == 0 {
        fail(format!(
            "{batched_path}: batching was on but no query ever parked a remainder"
        ));
    }
    println!(
        "validate-batch: {} queries agree with the unbatched twin; ledgers \
         reconcile; delivered pages {db} (batched) vs {du} (unbatched); \
         {} batch join(s), {} shared page(s)",
        batched.queries, batched.batch_joins, batched.shared_pages
    );
}

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    if let Some(pos) = args.iter().position(|a| a == "validate") {
        match args.get(pos + 1) {
            Some(path) => return validate(path),
            None => {
                eprintln!("validate: missing file argument");
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "validate-explain") {
        match args.get(pos + 1) {
            Some(path) => return validate_explain(path),
            None => {
                eprintln!("validate-explain: missing file argument");
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "serve") {
        match args.get(pos + 1) {
            Some(path) => return serve(path),
            None => {
                eprintln!("serve: missing output file argument");
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "batch") {
        match args.get(pos + 1) {
            Some(path) => return bench_batch(path),
            None => {
                eprintln!("batch: missing output file argument");
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "batch-serve") {
        match args.get(pos + 1) {
            Some(path) => return batch_serve(path),
            None => {
                eprintln!("batch-serve: missing output file argument");
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "validate-batch") {
        match (args.get(pos + 1), args.get(pos + 2)) {
            (Some(unbatched), Some(batched)) => return validate_batch(unbatched, batched),
            _ => {
                eprintln!("validate-batch: need <unbatched.json> <batched.json>");
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "validate-events") {
        match args.get(pos + 1) {
            Some(path) => {
                let expect_violation =
                    args.get(pos + 2).map(String::as_str) == Some("expect-violation");
                return validate_events(path, expect_violation);
            }
            None => {
                eprintln!("validate-events: need <events.jsonl> [expect-violation]");
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "events-abort") {
        match args.get(pos + 1) {
            Some(path) => return events_abort(path),
            None => {
                eprintln!("events-abort: missing black-box output file argument");
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "validate-serve") {
        match (args.get(pos + 1), args.get(pos + 2)) {
            (Some(serial), Some(parallel)) => return validate_serve(serial, parallel),
            _ => {
                eprintln!("validate-serve: need <serial.json> <parallel.json>");
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "validate-recovery") {
        match (
            args.get(pos + 1),
            args.get(pos + 2),
            args.get(pos + 3),
            args.get(pos + 4),
        ) {
            (Some(oracle), Some(run2), Some(recovered), Some(fin)) => {
                return validate_recovery(oracle, run2, recovered, fin)
            }
            _ => {
                eprintln!(
                    "validate-recovery: need <oracle.json> <run2.json> \
                     <store-recovered.json> <store-final.json>"
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "validate-baselines") {
        let paths = args[pos + 1..].to_vec();
        return validate_baselines(&paths);
    }
    if let Some(pos) = args.iter().position(|a| a == "validate-metrics") {
        match (args.get(pos + 1), args.get(pos + 2)) {
            (Some(metrics), Some(report)) => return validate_metrics(metrics, report),
            _ => {
                eprintln!("validate-metrics: need <metrics.txt> <serve.json>");
                std::process::exit(1);
            }
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "diff") {
        let paths = &args[pos + 1..];
        if paths.is_empty() {
            eprintln!("diff: missing baseline file argument(s)");
            std::process::exit(1);
        }
        return diff(paths);
    }
    if args.iter().any(|a| a == "store-scale") {
        return store_scale();
    }
    let smoke = args.iter().any(|a| a == "smoke");
    let scale = if smoke { &SMOKE } else { &FULL };
    let all = smoke || args.is_empty();
    let wants = |m: &str| all || args.iter().any(|a| a == m);

    if wants("check") {
        check_determinism(scale);
    }
    if wants("sqr") {
        bench_sqr(scale).finish();
    }
    if wants("dp") {
        bench_dp(scale).finish();
    }
    if args.iter().any(|a| a == "metrics") {
        bench_metrics(scale).finish();
    }
    if args.iter().any(|a| a == "events") {
        bench_events(scale).finish();
    }
}
