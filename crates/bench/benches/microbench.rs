//! Microbenchmarks for PayLess's hot paths: the geometry kernel,
//! Algorithm 1 rewriting (with and without pruning), greedy set cover,
//! the feedback histogram, the DP optimizer (left-deep vs. bushy), SQL
//! parsing, and the market call path.
//!
//! Self-contained timing harness (no external bench framework): each case
//! is warmed up, then run in timed batches until ~50 ms of samples are
//! collected; min / median / mean per-iteration times are printed, plus a
//! JSONL dump when `PAYLESS_JSON` is set (same convention as the fig
//! binaries).

use std::collections::HashMap;
use std::hint::black_box;

use payless_bench::micro::Runner;
use payless_geometry::{decompose, QuerySpace, Region};
use payless_market::{DataMarket, Dataset, MarketTable, Request};
use payless_optimizer::{optimize, OptimizerConfig};
use payless_semantic::{greedy_cover, rewrite, CoverSet, RewriteConfig, SemanticStore};
use payless_sql::{analyze, parse, MapCatalog, TableLocation};
use payless_stats::{StatsRegistry, TableStats};
use payless_types::{row, Column, Constraint, Domain, Schema};

fn region_1d(lo: i64, hi: i64) -> Region {
    Region::new(vec![payless_geometry::Interval::new(lo, hi)])
}

fn scattered_views(n: usize) -> Vec<Region> {
    (0..n)
        .map(|i| {
            let lo = (i as i64) * 97 % 900;
            region_1d(lo, lo + 40)
        })
        .collect()
}

fn stats_1d() -> TableStats {
    let schema = Schema::new("R", vec![Column::free("A", Domain::int(0, 999))]);
    TableStats::new(QuerySpace::of(&schema), 100_000)
}

#[allow(clippy::type_complexity)]
fn chain_query(
    n: usize,
) -> (
    payless_sql::AnalyzedQuery,
    StatsRegistry,
    SemanticStore,
    HashMap<String, u64>,
) {
    let mut catalog = MapCatalog::new();
    let mut stats = StatsRegistry::new();
    let mut store = SemanticStore::new();
    let mut meta = HashMap::new();
    for i in 0..n {
        let schema = Schema::new(
            format!("C{i}"),
            vec![
                Column::free("a", Domain::int(0, 999)),
                Column::free("b", Domain::int(0, 999)),
            ],
        );
        catalog.add(schema.clone(), TableLocation::Market);
        stats.register(&schema, 10_000);
        store.register(QuerySpace::of(&schema));
        meta.insert(schema.table.to_string(), 100u64);
    }
    let tables: Vec<String> = (0..n).map(|i| format!("C{i}")).collect();
    let joins: Vec<String> = (0..n - 1)
        .map(|i| format!("C{i}.b = C{}.a", i + 1))
        .collect();
    let sql = format!(
        "SELECT * FROM {} WHERE {}",
        tables.join(", "),
        joins.join(" AND ")
    );
    let q = analyze(&parse(&sql).unwrap(), &catalog).unwrap();
    (q, stats, store, meta)
}

fn main() {
    let mut r = Runner::new("microbench");

    // Geometry kernel.
    let q = region_1d(0, 999);
    for n in [4usize, 16, 64] {
        let views = scattered_views(n);
        r.bench(&format!("geometry/subtract_all/{n}"), || {
            black_box(q.subtract_all(&views));
        });
        r.bench(&format!("geometry/decompose/{n}"), || {
            black_box(decompose(&q, &views));
        });
    }

    // Algorithm 1 rewriting.
    let stats = stats_1d();
    for n in [2usize, 8, 24] {
        let views = scattered_views(n);
        r.bench(&format!("algorithm1_rewrite/pruned/{n}"), || {
            black_box(rewrite(&stats, 100, &q, &views, &RewriteConfig::default()));
        });
        r.bench(&format!("algorithm1_rewrite/no_pruning/{n}"), || {
            black_box(rewrite(
                &stats,
                100,
                &q,
                &views,
                &RewriteConfig::no_pruning(),
            ));
        });
    }

    // Greedy set cover.
    for (elements, sets) in [(16usize, 64usize), (64, 512)] {
        let cover_sets: Vec<CoverSet> = (0..sets)
            .map(|i| {
                let start = i % elements;
                let span = 1 + i % 7;
                CoverSet::new(
                    1.0 + (i % 5) as f64,
                    (start..(start + span).min(elements)).collect(),
                )
            })
            .collect();
        r.bench(&format!("set_cover/greedy/{elements}e_{sets}s"), || {
            black_box(greedy_cover(elements, &cover_sets));
        });
    }

    // Feedback histogram.
    r.bench("feedback_histogram/feedback_100", || {
        let mut s = stats_1d();
        for i in 0..100i64 {
            let lo = (i * 37) % 900;
            s.feedback(&region_1d(lo, lo + 50), 500);
        }
        black_box(s.bucket_count());
    });
    let mut trained = stats_1d();
    for i in 0..100i64 {
        let lo = (i * 37) % 900;
        trained.feedback(&region_1d(lo, lo + 50), 500);
    }
    r.bench("feedback_histogram/estimate_after_100", || {
        black_box(trained.estimate(&region_1d(100, 600)));
    });

    // DP optimizer, left-deep vs. bushy.
    for n in [3usize, 5, 7] {
        let (q, stats, store, meta) = chain_query(n);
        r.bench(&format!("optimizer_dp/left_deep/{n}"), || {
            black_box(
                optimize(
                    &q,
                    &stats,
                    &store,
                    &meta,
                    &OptimizerConfig::payless_no_sqr(),
                    0,
                )
                .unwrap(),
            );
        });
        r.bench(&format!("optimizer_dp/bushy/{n}"), || {
            black_box(
                optimize(
                    &q,
                    &stats,
                    &store,
                    &meta,
                    &OptimizerConfig::disable_all(),
                    0,
                )
                .unwrap(),
            );
        });
    }

    // SQL frontend.
    let sql = "SELECT City, AVG(Temperature) FROM Pollution, Station, Weather, ZipMap \
               WHERE Station.Country = Weather.Country = ? AND \
               Weather.Date >= ? AND Weather.Date <= ? AND Pollution.Rank <= ? AND \
               Pollution.ZipCode = ZipMap.ZipCode AND ZipMap.City = Station.City AND \
               Station.StationID = Weather.StationID GROUP BY City";
    r.bench("sql_frontend/parse_q5_style", || {
        black_box(parse(sql).unwrap());
    });

    // Market call path.
    let schema = Schema::new(
        "T",
        vec![
            Column::free("k", Domain::int(0, 9_999)),
            Column::free("c", Domain::categorical(["a", "b", "c", "d"])),
            Column::output("v", Domain::int(0, 1_000_000)),
        ],
    );
    let rows = (0..50_000i64)
        .map(|i| row!(i % 10_000, ["a", "b", "c", "d"][(i % 4) as usize], i))
        .collect();
    let market = DataMarket::new(vec![Dataset::new("DS")
        .with_page_size(100)
        .with_table(MarketTable::new(schema, rows))]);
    r.bench("market/point_lookup", || {
        black_box(
            market
                .get(&Request::to("T").with("k", Constraint::eq(1234)))
                .unwrap(),
        );
    });
    r.bench("market/range_scan_10pct", || {
        black_box(
            market
                .get(&Request::to("T").with("k", Constraint::range(0, 999)))
                .unwrap(),
        );
    });

    r.finish();
}
