//! Criterion microbenchmarks for PayLess's hot paths: the geometry kernel,
//! Algorithm 1 rewriting (with and without pruning), greedy set cover,
//! the feedback histogram, the DP optimizer (left-deep vs. bushy), SQL
//! parsing, and the market call path.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use payless_geometry::{decompose, QuerySpace, Region};
use payless_market::{DataMarket, Dataset, MarketTable, Request};
use payless_optimizer::{optimize, OptimizerConfig};
use payless_semantic::{greedy_cover, rewrite, CoverSet, RewriteConfig, SemanticStore};
use payless_sql::{analyze, parse, MapCatalog, TableLocation};
use payless_stats::{StatsRegistry, TableStats};
use payless_types::{row, Column, Constraint, Domain, Schema};

fn region_1d(lo: i64, hi: i64) -> Region {
    Region::new(vec![payless_geometry::Interval::new(lo, hi)])
}

fn scattered_views(n: usize) -> Vec<Region> {
    (0..n)
        .map(|i| {
            let lo = (i as i64) * 97 % 900;
            region_1d(lo, lo + 40)
        })
        .collect()
}

fn bench_geometry(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry");
    let q = region_1d(0, 999);
    for n in [4usize, 16, 64] {
        let views = scattered_views(n);
        g.bench_with_input(BenchmarkId::new("subtract_all", n), &views, |b, views| {
            b.iter(|| black_box(q.subtract_all(views)))
        });
        g.bench_with_input(BenchmarkId::new("decompose", n), &views, |b, views| {
            b.iter(|| black_box(decompose(&q, views)))
        });
    }
    g.finish();
}

fn stats_1d() -> TableStats {
    let schema = Schema::new("R", vec![Column::free("A", Domain::int(0, 999))]);
    TableStats::new(QuerySpace::of(&schema), 100_000)
}

fn bench_rewrite(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1_rewrite");
    let stats = stats_1d();
    let q = region_1d(0, 999);
    for n in [2usize, 8, 24] {
        let views = scattered_views(n);
        g.bench_with_input(BenchmarkId::new("pruned", n), &views, |b, views| {
            b.iter(|| black_box(rewrite(&stats, 100, &q, views, &RewriteConfig::default())))
        });
        g.bench_with_input(BenchmarkId::new("no_pruning", n), &views, |b, views| {
            b.iter(|| {
                black_box(rewrite(
                    &stats,
                    100,
                    &q,
                    views,
                    &RewriteConfig::no_pruning(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_set_cover(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_cover");
    for (elements, sets) in [(16usize, 64usize), (64, 512)] {
        let cover_sets: Vec<CoverSet> = (0..sets)
            .map(|i| {
                let start = i % elements;
                let span = 1 + i % 7;
                CoverSet::new(
                    1.0 + (i % 5) as f64,
                    (start..(start + span).min(elements)).collect(),
                )
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::new("greedy", format!("{elements}e_{sets}s")),
            &cover_sets,
            |b, cs| b.iter(|| black_box(greedy_cover(elements, cs))),
        );
    }
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("feedback_histogram");
    g.bench_function("feedback_100", |b| {
        b.iter(|| {
            let mut s = stats_1d();
            for i in 0..100i64 {
                let lo = (i * 37) % 900;
                s.feedback(&region_1d(lo, lo + 50), 500);
            }
            black_box(s.bucket_count())
        })
    });
    let mut trained = stats_1d();
    for i in 0..100i64 {
        let lo = (i * 37) % 900;
        trained.feedback(&region_1d(lo, lo + 50), 500);
    }
    g.bench_function("estimate_after_100_feedbacks", |b| {
        b.iter(|| black_box(trained.estimate(&region_1d(100, 600))))
    });
    g.finish();
}

#[allow(clippy::type_complexity)]
fn chain_query(
    n: usize,
) -> (
    payless_sql::AnalyzedQuery,
    StatsRegistry,
    SemanticStore,
    HashMap<String, u64>,
) {
    let mut catalog = MapCatalog::new();
    let mut stats = StatsRegistry::new();
    let mut store = SemanticStore::new();
    let mut meta = HashMap::new();
    for i in 0..n {
        let schema = Schema::new(
            format!("C{i}"),
            vec![
                Column::free("a", Domain::int(0, 999)),
                Column::free("b", Domain::int(0, 999)),
            ],
        );
        catalog.add(schema.clone(), TableLocation::Market);
        stats.register(&schema, 10_000);
        store.register(QuerySpace::of(&schema));
        meta.insert(schema.table.to_string(), 100u64);
    }
    let tables: Vec<String> = (0..n).map(|i| format!("C{i}")).collect();
    let joins: Vec<String> = (0..n - 1)
        .map(|i| format!("C{i}.b = C{}.a", i + 1))
        .collect();
    let sql = format!(
        "SELECT * FROM {} WHERE {}",
        tables.join(", "),
        joins.join(" AND ")
    );
    let q = analyze(&parse(&sql).unwrap(), &catalog).unwrap();
    (q, stats, store, meta)
}

fn bench_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer_dp");
    for n in [3usize, 5, 7] {
        let (q, stats, store, meta) = chain_query(n);
        g.bench_with_input(BenchmarkId::new("left_deep", n), &q, |b, q| {
            b.iter(|| {
                black_box(
                    optimize(
                        q,
                        &stats,
                        &store,
                        &meta,
                        &OptimizerConfig::payless_no_sqr(),
                        0,
                    )
                    .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("bushy", n), &q, |b, q| {
            b.iter(|| {
                black_box(
                    optimize(q, &stats, &store, &meta, &OptimizerConfig::disable_all(), 0).unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_sql(c: &mut Criterion) {
    let mut g = c.benchmark_group("sql_frontend");
    let sql = "SELECT City, AVG(Temperature) FROM Pollution, Station, Weather, ZipMap \
               WHERE Station.Country = Weather.Country = ? AND \
               Weather.Date >= ? AND Weather.Date <= ? AND Pollution.Rank <= ? AND \
               Pollution.ZipCode = ZipMap.ZipCode AND ZipMap.City = Station.City AND \
               Station.StationID = Weather.StationID GROUP BY City";
    g.bench_function("parse_q5_style", |b| {
        b.iter(|| black_box(parse(sql).unwrap()))
    });
    g.finish();
}

fn bench_market(c: &mut Criterion) {
    let mut g = c.benchmark_group("market");
    let schema = Schema::new(
        "T",
        vec![
            Column::free("k", Domain::int(0, 9_999)),
            Column::free("c", Domain::categorical(["a", "b", "c", "d"])),
            Column::output("v", Domain::int(0, 1_000_000)),
        ],
    );
    let rows = (0..50_000i64)
        .map(|i| row!(i % 10_000, ["a", "b", "c", "d"][(i % 4) as usize], i))
        .collect();
    let market = DataMarket::new(vec![Dataset::new("DS")
        .with_page_size(100)
        .with_table(MarketTable::new(schema, rows))]);
    g.bench_function("point_lookup", |b| {
        b.iter(|| {
            black_box(
                market
                    .get(&Request::to("T").with("k", Constraint::eq(1234)))
                    .unwrap(),
            )
        })
    });
    g.bench_function("range_scan_10pct", |b| {
        b.iter(|| {
            black_box(
                market
                    .get(&Request::to("T").with("k", Constraint::range(0, 999)))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_geometry,
    bench_rewrite,
    bench_set_cover,
    bench_histogram,
    bench_optimizer,
    bench_sql,
    bench_market
);
criterion_main!(benches);
