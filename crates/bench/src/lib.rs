//! Shared harness for the PayLess evaluation binaries.
//!
//! Each `fig*` binary regenerates one figure of the paper by driving
//! [`run_mode`] over a workload and printing the same series the paper
//! plots. The harness follows the paper's protocol: generate `q` valid
//! query instances per template, issue them in a random order, average over
//! repeated experiments (the paper uses 30; override with `PAYLESS_REPS`).

#![warn(missing_docs)]

pub mod micro;

use std::sync::Arc;

use payless_core::{build_market, Mode, PayLess, PayLessConfig};
use payless_json::{Json, ToJson};
use payless_semantic::RewriteConfig;
use payless_workload::QueryWorkload;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Harness parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Tuples per transaction (`t`; paper default 100).
    pub page_size: u64,
    /// Query instances per template (`q`).
    pub queries_per_template: usize,
    /// Repetitions to average over (paper: 30).
    pub repetitions: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Store-freshness policy.
    pub consistency: payless_core::Consistency,
    /// Algorithm 1 knobs (lets Figure 15 disable pruning).
    pub rewrite: RewriteConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            page_size: 100,
            queries_per_template: 10,
            repetitions: env_usize("PAYLESS_REPS", 5),
            seed: 42,
            consistency: payless_core::Consistency::Weak,
            rewrite: RewriteConfig::default(),
        }
    }
}

/// Read a `usize` override from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read an `f64` override from the environment.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Aggregated measurements for one system variant.
#[derive(Debug, Clone)]
pub struct ModeRun {
    /// Display name.
    pub name: String,
    /// Mean cumulative transactions after each issued query.
    pub cumulative_tx: Vec<f64>,
    /// Mean candidate (sub)plans costed per query (Figure 14's metric).
    pub avg_plans: f64,
    /// Mean bounding boxes surviving pruning per query (Figure 15).
    pub avg_boxes_kept: f64,
    /// Mean bounding boxes enumerated per query (Figure 15 "No Pruning").
    pub avg_boxes_enumerated: f64,
    /// Mean optimization time per query (nanoseconds).
    pub avg_optimize_nanos: f64,
    /// Mean execution time per query (nanoseconds).
    pub avg_execute_nanos: f64,
}

impl ToJson for ModeRun {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("cumulative_tx", self.cumulative_tx.to_json()),
            ("avg_plans", self.avg_plans.to_json()),
            ("avg_boxes_kept", self.avg_boxes_kept.to_json()),
            ("avg_boxes_enumerated", self.avg_boxes_enumerated.to_json()),
            ("avg_optimize_nanos", self.avg_optimize_nanos.to_json()),
            ("avg_execute_nanos", self.avg_execute_nanos.to_json()),
        ])
    }
}

/// Machine-readable form of one figure: the title plus every mode's full
/// series and summary metrics.
pub fn figure_json(title: &str, runs: &[ModeRun]) -> Json {
    Json::obj([
        ("figure", title.to_json()),
        (
            "runs",
            runs.iter()
                .map(ToJson::to_json)
                .collect::<Vec<_>>()
                .to_json(),
        ),
    ])
}

/// When `PAYLESS_JSON` is set, emit the figure as one compact JSON line
/// (JSONL) so plots can be regenerated without scraping the tables.
/// `PAYLESS_JSON=-` writes to stdout; any other value is treated as a file
/// path to append to.
pub fn emit_json(title: &str, runs: &[ModeRun]) {
    let Ok(dest) = std::env::var("PAYLESS_JSON") else {
        return;
    };
    let line = figure_json(title, runs).to_string_compact();
    if dest == "-" {
        println!("{line}");
    } else {
        use std::io::Write;
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&dest)
        {
            Ok(mut f) => {
                let _ = writeln!(f, "{line}");
            }
            Err(e) => eprintln!("PAYLESS_JSON: cannot open {dest}: {e}"),
        }
    }
}

/// The query schedule of one repetition: `q` instances per template,
/// shuffled. The schedule depends only on `(workload, cfg, rep)` so every
/// mode sees identical queries.
fn schedule(
    workload: &dyn QueryWorkload,
    cfg: &RunConfig,
    rep: usize,
) -> Vec<(usize, Vec<payless_types::Value>)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (rep as u64).wrapping_mul(0x9E37_79B9));
    let mut out = Vec::new();
    for t in 0..workload.templates().len() {
        for _ in 0..cfg.queries_per_template {
            out.push((t, workload.sample_params(t, &mut rng)));
        }
    }
    out.shuffle(&mut rng);
    out
}

/// Run one mode over the workload, averaging over `cfg.repetitions`.
pub fn run_mode(
    workload: &(dyn QueryWorkload + Sync),
    mode: Mode,
    name: &str,
    cfg: &RunConfig,
) -> ModeRun {
    let reps = cfg.repetitions.max(1);
    let n_queries = workload.templates().len() * cfg.queries_per_template;
    let mut cumulative = vec![0.0f64; n_queries];
    let mut plans = 0.0;
    let mut kept = 0.0;
    let mut enumerated = 0.0;
    let mut opt_ns = 0.0;
    let mut exe_ns = 0.0;

    // Repetitions are independent; run them on scoped threads.
    let results: Vec<RepResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..reps)
            .map(|rep| {
                let cfg = cfg.clone();
                s.spawn(move || run_rep(workload, mode, &cfg, rep))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for r in &results {
        for (i, v) in r.cumulative.iter().enumerate() {
            cumulative[i] += *v as f64;
        }
        plans += r.plans;
        kept += r.kept;
        enumerated += r.enumerated;
        opt_ns += r.opt_ns;
        exe_ns += r.exe_ns;
    }
    let rf = reps as f64;
    for v in &mut cumulative {
        *v /= rf;
    }
    let per_query = rf * n_queries as f64;
    ModeRun {
        name: name.to_string(),
        cumulative_tx: cumulative,
        avg_plans: plans / per_query,
        avg_boxes_kept: kept / per_query,
        avg_boxes_enumerated: enumerated / per_query,
        avg_optimize_nanos: opt_ns / per_query,
        avg_execute_nanos: exe_ns / per_query,
    }
}

struct RepResult {
    cumulative: Vec<u64>,
    plans: f64,
    kept: f64,
    enumerated: f64,
    opt_ns: f64,
    exe_ns: f64,
}

fn run_rep(workload: &dyn QueryWorkload, mode: Mode, cfg: &RunConfig, rep: usize) -> RepResult {
    let market = Arc::new(build_market(workload, cfg.page_size));
    let mut session_cfg = PayLessConfig::mode(mode);
    session_cfg.consistency = cfg.consistency;
    session_cfg.rewrite = cfg.rewrite.clone();
    let mut pl = PayLess::new(market.clone(), session_cfg);
    for t in workload.local_tables() {
        pl.register_local(t.clone());
    }
    let templates: Vec<_> = workload
        .templates()
        .iter()
        .map(|t| pl.prepare(t).expect("template parses"))
        .collect();

    let mut cumulative = Vec::new();
    let mut plans = 0.0;
    let mut kept = 0.0;
    let mut enumerated = 0.0;
    let mut opt_ns = 0.0;
    let mut exe_ns = 0.0;
    for (t, params) in schedule(workload, cfg, rep) {
        let out = pl
            .execute_template(&templates[t], &params)
            .unwrap_or_else(|e| panic!("template {t} failed: {e}"));
        cumulative.push(market.bill().transactions());
        plans += out.counters.plans_considered as f64;
        kept += out.counters.boxes_kept as f64;
        enumerated += out.counters.boxes_enumerated as f64;
        opt_ns += out.optimize_nanos as f64;
        exe_ns += out.execute_nanos as f64;
    }
    RepResult {
        cumulative,
        plans,
        kept,
        enumerated,
        opt_ns,
        exe_ns,
    }
}

/// Print a figure's series as a column-aligned table (query index vs. mean
/// cumulative transactions per system), sampling ~20 evenly spaced rows.
pub fn print_cumulative(title: &str, runs: &[ModeRun]) {
    emit_json(title, runs);
    println!("\n== {title} ==");
    print!("{:>8}", "#queries");
    for r in runs {
        print!(" {:>18}", r.name);
    }
    println!();
    let n = runs.first().map(|r| r.cumulative_tx.len()).unwrap_or(0);
    let step = (n / 20).max(1);
    let mut idx: Vec<usize> = (0..n).step_by(step).collect();
    if idx.last() != Some(&(n - 1)) && n > 0 {
        idx.push(n - 1);
    }
    for i in idx {
        print!("{:>8}", i + 1);
        for r in runs {
            print!(" {:>18.1}", r.cumulative_tx[i]);
        }
        println!();
    }
}

/// Print one summary metric per mode.
pub fn print_metric(title: &str, runs: &[ModeRun], metric: impl Fn(&ModeRun) -> f64) {
    emit_json(title, runs);
    println!("\n== {title} ==");
    for r in runs {
        println!("{:<22} {:>14.2}", r.name, metric(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_workload::{RealWorkload, WhwConfig};

    fn workload() -> RealWorkload {
        RealWorkload::generate(&WhwConfig {
            stations: 24,
            countries: 3,
            cities_per_country: 2,
            days: 20,
            zips: 30,
            ranks: 100,
            seed: 5,
        })
    }

    #[test]
    fn schedule_depends_on_rep_not_mode() {
        let w = workload();
        let cfg = RunConfig {
            queries_per_template: 3,
            repetitions: 1,
            ..Default::default()
        };
        // Same (cfg, rep) -> identical schedule; different rep -> different.
        let a = schedule(&w, &cfg, 0);
        let b = schedule(&w, &cfg, 0);
        let c = schedule(&w, &cfg, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), w.templates().len() * 3);
    }

    #[test]
    fn run_mode_produces_monotone_cumulative_series() {
        let w = workload();
        let cfg = RunConfig {
            queries_per_template: 2,
            repetitions: 2,
            ..Default::default()
        };
        let run = run_mode(&w, Mode::PayLess, "payless", &cfg);
        assert_eq!(run.cumulative_tx.len(), w.templates().len() * 2);
        assert!(run.cumulative_tx.windows(2).all(|p| p[0] <= p[1] + 1e-9));
        assert!(run.avg_plans > 0.0);
        assert!(run.avg_optimize_nanos > 0.0);
    }

    #[test]
    fn env_parsers_fall_back_to_defaults() {
        assert_eq!(env_usize("PAYLESS_NO_SUCH_VAR_12345", 7), 7);
        assert_eq!(env_f64("PAYLESS_NO_SUCH_VAR_12345", 0.5), 0.5);
    }

    #[test]
    fn figure_json_round_trips() {
        let runs = vec![ModeRun {
            name: "PayLess".into(),
            cumulative_tx: vec![1.0, 2.5],
            avg_plans: 3.0,
            avg_boxes_kept: 1.0,
            avg_boxes_enumerated: 2.0,
            avg_optimize_nanos: 1e6,
            avg_execute_nanos: 2e6,
        }];
        let json = figure_json("Figure X", &runs);
        let parsed = payless_json::parse(&json.to_string_compact()).unwrap();
        assert_eq!(
            parsed.get_opt("figure"),
            Some(&Json::Str("Figure X".into()))
        );
        let run = &parsed.get_opt("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(run.get_opt("name"), Some(&Json::Str("PayLess".into())));
        assert_eq!(
            run.get_opt("cumulative_tx")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
    }
}
