//! Section 4.1's search-space arithmetic, measured: candidate (sub)plans
//! evaluated on chain queries of n relations, PayLess's reduced space vs.
//! the full bushy space, against the paper's closed-form approximations
//! (≈ 2ⁿ + ⅔n³ vs ≈ 6ⁿ − 5ⁿ).

use std::collections::HashMap;

use payless_optimizer::{optimize, OptimizerConfig};
use payless_semantic::SemanticStore;
use payless_sql::{analyze, parse, MapCatalog, TableLocation};
use payless_stats::StatsRegistry;
use payless_types::{Column, Domain, Schema};

fn main() {
    println!(
        "{:>3} {:>14} {:>14} {:>16} {:>16}",
        "n", "PayLess", "full bushy", "≈2^n + 2n³/3", "≈6^n − 5^n"
    );
    for n in 2..=7usize {
        let mut catalog = MapCatalog::new();
        let mut stats = StatsRegistry::new();
        let mut store = SemanticStore::new();
        let mut meta = HashMap::new();
        for i in 0..n {
            let schema = Schema::new(
                format!("C{i}"),
                vec![
                    Column::free("a", Domain::int(0, 999)),
                    Column::free("b", Domain::int(0, 999)),
                ],
            );
            catalog.add(schema.clone(), TableLocation::Market);
            stats.register(&schema, 10_000);
            store.register(payless_geometry::QuerySpace::of(&schema));
            meta.insert(schema.table.to_string(), 100u64);
        }
        let tables: Vec<String> = (0..n).map(|i| format!("C{i}")).collect();
        let joins: Vec<String> = (0..n - 1)
            .map(|i| format!("C{i}.b = C{}.a", i + 1))
            .collect();
        let sql = format!(
            "SELECT * FROM {} WHERE {}",
            tables.join(", "),
            joins.join(" AND ")
        );
        let q = analyze(&parse(&sql).unwrap(), &catalog).unwrap();
        let ld = optimize(
            &q,
            &stats,
            &store,
            &meta,
            &OptimizerConfig::payless_no_sqr(),
            0,
        )
        .expect("plans");
        let bushy = optimize(
            &q,
            &stats,
            &store,
            &meta,
            &OptimizerConfig::disable_all(),
            0,
        )
        .expect("plans");
        let nf = n as f64;
        let approx_ld = 2f64.powf(nf) + 2.0 * nf.powi(3) / 3.0;
        let approx_bushy = 6f64.powf(nf) - 5f64.powf(nf);
        println!(
            "{:>3} {:>14} {:>14} {:>16.0} {:>16.0}",
            n,
            ld.counters.plans_considered,
            bushy.counters.plans_considered,
            approx_ld,
            approx_bushy
        );
    }
    println!(
        "\nAbsolute counts differ from the paper's formulas (which count \
         binding-choice combinations analytically); the point to check is \
         the growth separation: polynomial-ish for PayLess, exponential \
         with a much larger base for the unreduced space."
    );
}
