//! Figure 10 — overall effectiveness: cumulative data-market transactions
//! vs. number of issued queries, for PayLess, PayLess w/o SQR, Minimizing
//! Calls, and Download All, on (a) real data, (b) TPC-H, (c) TPC-H skew.
//!
//! Scale knobs (env): `PAYLESS_REPS` (default 5), `PAYLESS_Q_REAL`
//! (instances per real template, paper: 200), `PAYLESS_Q_TPCH` (paper: 10),
//! `PAYLESS_SCALE_REAL`, `PAYLESS_SCALE_TPCH`.

use payless_bench::{env_f64, env_usize, print_cumulative, run_mode, RunConfig};
use payless_core::Mode;
use payless_workload::{RealWorkload, Tpch, TpchConfig, WhwConfig};

fn main() {
    let reps = env_usize("PAYLESS_REPS", 5);
    let modes = [
        (Mode::PayLess, "PayLess"),
        (Mode::PayLessNoSqr, "PayLess w/o SQR"),
        (Mode::MinCalls, "Minimizing Calls"),
        (Mode::DownloadAll, "Download All"),
    ];

    // (a) Real data.
    {
        let scale = env_f64("PAYLESS_SCALE_REAL", 0.05);
        let q = env_usize("PAYLESS_Q_REAL", 40);
        let workload = RealWorkload::generate(&WhwConfig::scaled(scale));
        let cfg = RunConfig {
            queries_per_template: q,
            repetitions: reps,
            ..Default::default()
        };
        let runs: Vec<_> = modes
            .iter()
            .map(|(m, name)| run_mode(&workload, *m, name, &cfg))
            .collect();
        print_cumulative(
            &format!("Figure 10a: real data (scale {scale}, q = {q}, {reps} reps)"),
            &runs,
        );
    }

    // (b) TPC-H uniform and (c) TPC-H skew.
    let scale = env_f64("PAYLESS_SCALE_TPCH", 0.001);
    let q = env_usize("PAYLESS_Q_TPCH", 10);
    for (label, tc) in [
        ("Figure 10b: TPC-H", TpchConfig::uniform(scale)),
        (
            "Figure 10c: TPC-H skew (zipf = 1)",
            TpchConfig::skewed(scale),
        ),
    ] {
        let workload = Tpch::generate(&tc);
        let cfg = RunConfig {
            queries_per_template: q,
            repetitions: reps,
            ..Default::default()
        };
        let runs: Vec<_> = modes
            .iter()
            .map(|(m, name)| run_mode(&workload, *m, name, &cfg))
            .collect();
        print_cumulative(
            &format!("{label} (scale {scale}, q = {q}, {reps} reps)"),
            &runs,
        );
    }
}
