//! Figure 11 — influence of the number of tuples per transaction `t`:
//! PayLess vs. Download All at t ∈ {50, 100, 500}, on real data, TPC-H, and
//! TPC-H skew.

use payless_bench::{env_f64, env_usize, print_cumulative, run_mode, RunConfig};
use payless_core::Mode;
use payless_workload::{QueryWorkload, RealWorkload, Tpch, TpchConfig, WhwConfig};

fn sweep(label: &str, workload: &(dyn QueryWorkload + Sync), q: usize, reps: usize) {
    for t in [50u64, 100, 500] {
        let cfg = RunConfig {
            page_size: t,
            queries_per_template: q,
            repetitions: reps,
            ..Default::default()
        };
        let runs = vec![
            run_mode(workload, Mode::PayLess, &format!("PayLess t={t}"), &cfg),
            run_mode(
                workload,
                Mode::DownloadAll,
                &format!("DownloadAll t={t}"),
                &cfg,
            ),
        ];
        print_cumulative(&format!("{label}, t = {t} (q = {q}, {reps} reps)"), &runs);
    }
}

fn main() {
    let reps = env_usize("PAYLESS_REPS", 5);
    let real = RealWorkload::generate(&WhwConfig::scaled(env_f64("PAYLESS_SCALE_REAL", 0.05)));
    sweep(
        "Figure 11a: real data",
        &real,
        env_usize("PAYLESS_Q_REAL", 40),
        reps,
    );
    let scale = env_f64("PAYLESS_SCALE_TPCH", 0.001);
    let tpch = Tpch::generate(&TpchConfig::uniform(scale));
    sweep(
        "Figure 11b: TPC-H",
        &tpch,
        env_usize("PAYLESS_Q_TPCH", 10),
        reps,
    );
    let skew = Tpch::generate(&TpchConfig::skewed(scale));
    sweep(
        "Figure 11c: TPC-H skew",
        &skew,
        env_usize("PAYLESS_Q_TPCH", 10),
        reps,
    );
}
