//! Figure 14 — effectiveness of the search-space reduction techniques:
//! average number of candidate (sub)plans evaluated per query, for PayLess,
//! Disable SQR, and Disable All (SQR + Theorems 1-3 all off), as the number
//! of query instances per template varies.

use payless_bench::{env_f64, env_usize, run_mode, RunConfig};
use payless_core::Mode;
use payless_workload::{QueryWorkload, RealWorkload, Tpch, TpchConfig, WhwConfig};

fn sweep(label: &str, workload: &(dyn QueryWorkload + Sync), qs: &[usize], reps: usize) {
    println!("\n==== {label} ====");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "q", "PayLess", "Disable SQR", "Disable All"
    );
    for &q in qs {
        let cfg = RunConfig {
            queries_per_template: q,
            repetitions: reps,
            ..Default::default()
        };
        let payless = run_mode(workload, Mode::PayLess, "PayLess", &cfg);
        let no_sqr = run_mode(workload, Mode::PayLessNoSqr, "Disable SQR", &cfg);
        let all = run_mode(workload, Mode::DisableAll, "Disable All", &cfg);
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>14.2}",
            q, payless.avg_plans, no_sqr.avg_plans, all.avg_plans
        );
    }
}

fn main() {
    let reps = env_usize("PAYLESS_REPS", 5);
    let real = RealWorkload::generate(&WhwConfig::scaled(env_f64("PAYLESS_SCALE_REAL", 0.05)));
    sweep(
        "Figure 14a: avg # evaluated (sub)plans, real data",
        &real,
        &[20, 40, 60],
        reps,
    );
    let scale = env_f64("PAYLESS_SCALE_TPCH", 0.001);
    let tpch = Tpch::generate(&TpchConfig::uniform(scale));
    sweep(
        "Figure 14b: avg # evaluated (sub)plans, TPC-H",
        &tpch,
        &[5, 10, 20],
        reps,
    );
    let skew = Tpch::generate(&TpchConfig::skewed(scale));
    sweep(
        "Figure 14c: avg # evaluated (sub)plans, TPC-H skew",
        &skew,
        &[5, 10, 20],
        reps,
    );
}
