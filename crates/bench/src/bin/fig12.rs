//! Figure 12 — influence of the number of query instances per template `q`:
//! PayLess vs. Download All for q ∈ {100, 200, 300} on real data (the paper
//! also shows the same shape at smaller q) and q ∈ {5, 10, 20} on
//! TPC-H / TPC-H skew.
//!
//! Defaults here use scaled-down real-data q values; override with
//! `PAYLESS_Q_LIST_REAL="100,200,300"` to match the paper exactly.

use payless_bench::{env_f64, env_usize, print_cumulative, run_mode, RunConfig};
use payless_core::Mode;
use payless_workload::{QueryWorkload, RealWorkload, Tpch, TpchConfig, WhwConfig};

fn q_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| default.to_vec())
}

fn sweep(label: &str, workload: &(dyn QueryWorkload + Sync), qs: &[usize], reps: usize) {
    for &q in qs {
        let cfg = RunConfig {
            queries_per_template: q,
            repetitions: reps,
            ..Default::default()
        };
        let runs = vec![
            run_mode(workload, Mode::PayLess, "PayLess", &cfg),
            run_mode(workload, Mode::DownloadAll, "Download All", &cfg),
        ];
        print_cumulative(&format!("{label}, q = {q} ({reps} reps)"), &runs);
    }
}

fn main() {
    let reps = env_usize("PAYLESS_REPS", 5);
    let real = RealWorkload::generate(&WhwConfig::scaled(env_f64("PAYLESS_SCALE_REAL", 0.05)));
    sweep(
        "Figure 12a-c: real data",
        &real,
        &q_list("PAYLESS_Q_LIST_REAL", &[20, 40, 60]),
        reps,
    );
    let scale = env_f64("PAYLESS_SCALE_TPCH", 0.001);
    let tpch = Tpch::generate(&TpchConfig::uniform(scale));
    sweep(
        "Figure 12d-f: TPC-H",
        &tpch,
        &q_list("PAYLESS_Q_LIST_TPCH", &[5, 10, 20]),
        reps,
    );
    let skew = Tpch::generate(&TpchConfig::skewed(scale));
    sweep(
        "Figure 12d-f: TPC-H skew",
        &skew,
        &q_list("PAYLESS_Q_LIST_TPCH", &[5, 10, 20]),
        reps,
    );
}
