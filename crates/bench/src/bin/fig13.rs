//! Figure 13 — influence of data size: PayLess vs. Download All on TPC-H
//! and TPC-H skew at D ∈ {0.5G, 1G, 2G}.
//!
//! The paper's absolute sizes don't fit a unit-test-speed harness; we map
//! `D = 1G` to a base scale factor (`PAYLESS_SCALE_TPCH`, default 0.001)
//! and sweep {0.5x, 1x, 2x}, which preserves the figure's shape: Download
//! All's upfront cost scales with D while PayLess's curve scales with what
//! the queries touch.

use payless_bench::{env_f64, env_usize, print_cumulative, run_mode, RunConfig};
use payless_core::Mode;
use payless_workload::{Tpch, TpchConfig};

fn main() {
    let reps = env_usize("PAYLESS_REPS", 5);
    let q = env_usize("PAYLESS_Q_TPCH", 10);
    let base = env_f64("PAYLESS_SCALE_TPCH", 0.001);
    for skewed in [false, true] {
        for mult in [0.5, 1.0, 2.0] {
            let scale = base * mult;
            let tc = if skewed {
                TpchConfig::skewed(scale)
            } else {
                TpchConfig::uniform(scale)
            };
            let workload = Tpch::generate(&tc);
            let cfg = RunConfig {
                queries_per_template: q,
                repetitions: reps,
                ..Default::default()
            };
            let runs = vec![
                run_mode(
                    &workload,
                    Mode::PayLess,
                    &format!("PayLess D={mult}G"),
                    &cfg,
                ),
                run_mode(
                    &workload,
                    Mode::DownloadAll,
                    &format!("DownloadAll D={mult}G"),
                    &cfg,
                ),
            ];
            let label = if skewed {
                format!("Figure 13b: TPC-H skew, D = {mult}x base")
            } else {
                format!("Figure 13a: TPC-H, D = {mult}x base")
            };
            print_cumulative(&format!("{label} (q = {q}, {reps} reps)"), &runs);
        }
    }
}
