//! Per-theorem ablation: how much of the search-space reduction does each
//! of the paper's theorems contribute, and do any of them change the chosen
//! plan's cost? (They must not — all three are proven lossless.)
//!
//! Figure 14 toggles everything at once; this binary isolates Theorem 2
//! (zero-price-first), Theorem 3 (partition pruning), and Theorem 1
//! (left-deep vs. bushy) on chain queries with a covered (zero-price)
//! prefix, plus the two pruning rules of Algorithm 1.

use std::collections::HashMap;

use payless_geometry::QuerySpace;
use payless_optimizer::{optimize, OptimizerConfig, SearchStrategy};
use payless_semantic::{rewrite, RewriteConfig, SemanticStore};
use payless_sql::{analyze, parse, MapCatalog, TableLocation};
use payless_stats::{StatsRegistry, TableStats};
use payless_types::{Column, Domain, Schema};

fn main() {
    theorem_ablation();
    pruning_ablation();
}

fn theorem_ablation() {
    println!("Plans considered on an n-relation chain query whose first two");
    println!("relations are already covered by the semantic store:\n");
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "n", "PayLess", "no T2", "no T3", "no T2+T3", "bushy"
    );
    for n in 3..=7usize {
        let mut catalog = MapCatalog::new();
        let mut stats = StatsRegistry::new();
        let mut store = SemanticStore::new();
        let mut meta = HashMap::new();
        for i in 0..n {
            let schema = Schema::new(
                format!("C{i}"),
                vec![
                    Column::free("a", Domain::int(0, 999)),
                    Column::free("b", Domain::int(0, 999)),
                ],
            );
            catalog.add(schema.clone(), TableLocation::Market);
            stats.register(&schema, 10_000);
            let space = QuerySpace::of(&schema);
            store.register(space.clone());
            if i < 2 {
                store.record(&schema.table, space.full_region(), 0);
            }
            meta.insert(schema.table.to_string(), 100u64);
        }
        let tables: Vec<String> = (0..n).map(|i| format!("C{i}")).collect();
        let joins: Vec<String> = (0..n - 1)
            .map(|i| format!("C{i}.b = C{}.a", i + 1))
            .collect();
        let sql = format!(
            "SELECT * FROM {} WHERE {}",
            tables.join(", "),
            joins.join(" AND ")
        );
        let q = analyze(&parse(&sql).unwrap(), &catalog).unwrap();

        let variants: Vec<(&str, OptimizerConfig)> = vec![
            ("PayLess", OptimizerConfig::payless()),
            (
                "no T2",
                OptimizerConfig {
                    zero_price_first: false,
                    ..OptimizerConfig::payless()
                },
            ),
            (
                "no T3",
                OptimizerConfig {
                    partition_pruning: false,
                    ..OptimizerConfig::payless()
                },
            ),
            (
                "no T2+T3",
                OptimizerConfig {
                    zero_price_first: false,
                    partition_pruning: false,
                    ..OptimizerConfig::payless()
                },
            ),
            (
                "bushy",
                OptimizerConfig {
                    strategy: SearchStrategy::Bushy,
                    ..OptimizerConfig::payless()
                },
            ),
        ];
        let mut counts = Vec::new();
        let mut costs = Vec::new();
        for (_, cfg) in &variants {
            let out = optimize(&q, &stats, &store, &meta, cfg, 1).unwrap();
            counts.push(out.counters.plans_considered);
            costs.push(out.cost.primary);
        }
        // Losslessness check: every variant finds the same optimal price.
        let all_equal = costs.iter().all(|c| (c - costs[0]).abs() < 1e-6);
        println!(
            "{:>3} {:>12} {:>12} {:>12} {:>12} {:>12}{}",
            n,
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            if all_equal { "" } else { "   COST MISMATCH!" }
        );
    }
}

fn pruning_ablation() {
    println!("\nAlgorithm 1 pruning rules on a fragmented 1-D store");
    println!("(cost must be identical; candidate counts differ):\n");
    println!(
        "{:>7} {:>12} {:>12} {:>14} {:>14}",
        "#views", "cost", "cost(noP)", "kept", "kept(noP)"
    );
    let schema = Schema::new("R", vec![Column::free("A", Domain::int(0, 999))]);
    let space = QuerySpace::of(&schema);
    for n_views in [2usize, 6, 12, 20] {
        let mut stats = TableStats::new(space.clone(), 50_000);
        let views: Vec<_> = (0..n_views)
            .map(|i| {
                let lo = (i as i64) * 900 / n_views as i64;
                let r = payless_geometry::Region::new(vec![payless_geometry::Interval::new(
                    lo,
                    lo + 25,
                )]);
                stats.feedback(&r, 1000);
                r
            })
            .collect();
        let q = payless_geometry::Region::new(vec![payless_geometry::Interval::new(0, 999)]);
        let with = rewrite(&stats, 100, &q, &views, &RewriteConfig::default());
        let without = rewrite(&stats, 100, &q, &views, &RewriteConfig::no_pruning());
        println!(
            "{:>7} {:>12.1} {:>12.1} {:>14} {:>14}",
            n_views,
            with.est_transactions,
            without.est_transactions,
            with.boxes_kept,
            without.boxes_kept
        );
    }
}
