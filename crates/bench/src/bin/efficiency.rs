//! Section 5 "Efficiency" — optimization and buyer-side execution times.
//!
//! The paper reports that "the query optimization and the query execution
//! part done by PayLess on the data buyer side all finish within
//! milliseconds". This binary measures both per query, per workload.

use payless_bench::{env_f64, env_usize, run_mode, RunConfig};
use payless_core::Mode;
use payless_workload::{QueryWorkload, RealWorkload, Tpch, TpchConfig, WhwConfig};

fn report(label: &str, workload: &(dyn QueryWorkload + Sync), q: usize, reps: usize) {
    let cfg = RunConfig {
        queries_per_template: q,
        repetitions: reps,
        ..Default::default()
    };
    let run = run_mode(workload, Mode::PayLess, "PayLess", &cfg);
    println!(
        "{:<24} optimize {:>9.3} ms/query   execute {:>9.3} ms/query",
        label,
        run.avg_optimize_nanos / 1e6,
        run.avg_execute_nanos / 1e6,
    );
}

fn main() {
    let reps = env_usize("PAYLESS_REPS", 3);
    println!("Per-query buyer-side times (PayLess mode):\n");
    let real = RealWorkload::generate(&WhwConfig::scaled(env_f64("PAYLESS_SCALE_REAL", 0.05)));
    report("real data", &real, env_usize("PAYLESS_Q_REAL", 40), reps);
    let scale = env_f64("PAYLESS_SCALE_TPCH", 0.001);
    let tpch = Tpch::generate(&TpchConfig::uniform(scale));
    report("TPC-H", &tpch, env_usize("PAYLESS_Q_TPCH", 10), reps);
    let skew = Tpch::generate(&TpchConfig::skewed(scale));
    report("TPC-H skew", &skew, env_usize("PAYLESS_Q_TPCH", 10), reps);
    println!(
        "\nThe paper's claim to check: optimization and local execution \
         both finish within milliseconds."
    );
}
