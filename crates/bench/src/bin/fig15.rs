//! Figure 15 — effectiveness of the bounding-box pruning rules of
//! Algorithm 1: average number of bounding boxes generated per query, with
//! pruning (PayLess) and without (No Pruning), as q varies.

use payless_bench::{env_f64, env_usize, run_mode, RunConfig};
use payless_core::Mode;
use payless_semantic::RewriteConfig;
use payless_workload::{QueryWorkload, RealWorkload, Tpch, TpchConfig, WhwConfig};

fn sweep(label: &str, workload: &(dyn QueryWorkload + Sync), qs: &[usize], reps: usize) {
    println!("\n==== {label} ====");
    println!("{:>6} {:>14} {:>14}", "q", "PayLess", "No Pruning");
    for &q in qs {
        let cfg = RunConfig {
            queries_per_template: q,
            repetitions: reps,
            ..Default::default()
        };
        // With pruning: count the boxes surviving both rules. Without: the
        // raw enumeration count. Both are measured on the same (pruned)
        // execution — pruning does not change which plans are chosen, only
        // how many candidates are materialized (rewrite.rs reports both).
        let run = run_mode(workload, Mode::PayLess, "PayLess", &cfg);
        println!(
            "{:>6} {:>14.2} {:>14.2}",
            q, run.avg_boxes_kept, run.avg_boxes_enumerated
        );
        let _ = RewriteConfig::no_pruning(); // knob available for deeper ablations
    }
}

fn main() {
    let reps = env_usize("PAYLESS_REPS", 5);
    let real = RealWorkload::generate(&WhwConfig::scaled(env_f64("PAYLESS_SCALE_REAL", 0.05)));
    sweep(
        "Figure 15a: avg # bounding boxes, real data",
        &real,
        &[20, 40, 60],
        reps,
    );
    let scale = env_f64("PAYLESS_SCALE_TPCH", 0.001);
    let tpch = Tpch::generate(&TpchConfig::uniform(scale));
    sweep(
        "Figure 15b: avg # bounding boxes, TPC-H",
        &tpch,
        &[5, 10, 20],
        reps,
    );
    let skew = Tpch::generate(&TpchConfig::skewed(scale));
    sweep(
        "Figure 15c: avg # bounding boxes, TPC-H skew",
        &skew,
        &[5, 10, 20],
        reps,
    );
}
