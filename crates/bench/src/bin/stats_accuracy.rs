//! The learning-optimizer angle, measured: how quickly does the
//! feedback-driven statistic converge?
//!
//! PayLess starts with nothing but cardinality + domains (pure uniformity)
//! and refines from every retrieval — the LEO-style loop of Section 1. This
//! binary issues the real-data workload and, after every few queries, probes
//! the Weather estimator with random regions, reporting the mean relative
//! error against ground truth. The error should fall as coverage grows.

use std::sync::Arc;

use payless_bench::{env_f64, env_usize};
use payless_core::{build_market, PayLess, PayLessConfig, StatsBackend};
use payless_geometry::Region;
use payless_types::Value;
use payless_workload::{QueryWorkload, RealWorkload, WhwConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = env_f64("PAYLESS_SCALE_REAL", 0.05);
    let q = env_usize("PAYLESS_Q_REAL", 30);
    let workload = RealWorkload::generate(&WhwConfig::scaled(scale));
    for backend in [
        StatsBackend::MultiDim,
        StatsBackend::Isomer,
        StatsBackend::PerDimension,
    ] {
        run_backend(&workload, backend, q);
    }
}

fn run_backend(workload: &RealWorkload, backend: StatsBackend, q: usize) {
    let market = Arc::new(build_market(workload, 100));
    let cfg = PayLessConfig {
        stats_backend: backend,
        ..Default::default()
    };
    let mut pl = PayLess::new(market.clone(), cfg);
    for t in workload.local_tables() {
        pl.register_local(t.clone());
    }
    let templates: Vec<_> = workload
        .templates()
        .iter()
        .map(|t| pl.prepare(t).unwrap())
        .collect();

    // Ground truth for Weather: materialize the rows once.
    let weather = workload
        .market_tables()
        .iter()
        .find(|t| &*t.schema.table == "Weather")
        .expect("weather table");
    let space = pl.stats().table("Weather").unwrap().space().clone();
    let truth = |region: &Region| -> u64 {
        weather
            .rows()
            .iter()
            .filter(|row| {
                space.dims().iter().enumerate().all(|(i, d)| {
                    let iv = region.dim(i);
                    match row.get(d.col) {
                        Value::Int(x) => iv.contains_point(*x),
                        Value::Str(s) => d
                            .cat_index(s)
                            .map(|c| iv.contains_point(c))
                            .unwrap_or(false),
                        _ => false,
                    }
                })
            })
            .count() as u64
    };

    let full = space.full_region();
    let mut probe_rng = StdRng::seed_from_u64(99);
    // Two probe families:
    //  - "workload-shaped": one country, all stations, a date window — the
    //    regions the optimizer actually prices when planning these queries;
    //  - "random": arbitrary boxes, including station subranges the workload
    //    never isolates (feedback cannot teach what it never observes).
    let mut workload_probes: Vec<Region> = Vec::new();
    for _ in 0..50 {
        let c = probe_rng.random_range(full.dim(0).lo..=full.dim(0).hi);
        let len = probe_rng.random_range(5..=40i64);
        let lo = probe_rng.random_range(1..=(full.dim(2).hi - len + 1).max(1));
        workload_probes.push(Region::new(vec![
            payless_geometry::Interval::point(c),
            full.dim(1),
            payless_geometry::Interval::new(lo, lo + len - 1),
        ]));
    }
    let mut random_probes: Vec<Region> = Vec::new();
    for _ in 0..50 {
        let dims: Vec<payless_geometry::Interval> = full
            .dims()
            .iter()
            .map(|iv| {
                let width = ((iv.width() as f64) * probe_rng.random_range(0.05..0.5)) as i64;
                let width = width.max(1);
                let lo = probe_rng.random_range(iv.lo..=(iv.hi - width + 1).max(iv.lo));
                payless_geometry::Interval::new(lo, (lo + width - 1).min(iv.hi))
            })
            .collect();
        random_probes.push(Region::new(dims));
    }

    let mean_error = |pl: &PayLess, probes: &[Region]| -> f64 {
        let stats = pl.stats().table("Weather").unwrap();
        let mut total = 0.0;
        for p in probes {
            let est = stats.estimate(p);
            let actual = truth(p) as f64;
            // Symmetric relative error, robust to zeros.
            total += (est - actual).abs() / (est.max(actual)).max(1.0);
        }
        total / probes.len() as f64
    };

    println!("\n== backend: {backend:?} ==");
    println!("Estimator accuracy on Weather as the workload runs");
    println!("(mean symmetric relative error over 50 probes per family):\n");
    println!(
        "{:>8} {:>18} {:>14}",
        "#queries", "workload probes", "random probes"
    );
    let report = |pl: &PayLess, issued: usize| {
        println!(
            "{:>8} {:>18.3} {:>14.3}",
            issued,
            mean_error(pl, &workload_probes),
            mean_error(pl, &random_probes)
        );
    };
    report(&pl, 0);
    let mut rng = StdRng::seed_from_u64(7);
    let mut issued = 0usize;
    for _ in 0..q {
        for (t, template) in templates.iter().enumerate() {
            let params = workload.sample_params(t, &mut rng);
            pl.execute_template(template, &params).unwrap();
            issued += 1;
        }
        if issued % 25 < templates.len() {
            report(&pl, issued);
        }
    }
    println!(
        "\nTotal paid: {} transactions.",
        market.bill().transactions()
    );
    match backend {
        StatsBackend::MultiDim => println!(
            "MultiDim (ISOMER-style): error on workload-shaped regions falls\n\
             as feedback accumulates; error on never-observed random regions\n\
             persists — the statistic learns exactly what the workload\n\
             exercises."
        ),
        StatsBackend::Isomer => println!(
            "Isomer (retained constraints + iterative fitting): like MultiDim\n\
             but durably consistent with recent history; compare its curve\n\
             with MultiDim's to see what constraint retention buys."
        ),
        StatsBackend::PerDimension => println!(
            "PerDimension (independence back-out): *degrades* under this\n\
             workload — bind-join probes observe correlated\n\
             (country, station) combinations, and backing those joints out\n\
             to independent marginals poisons the histograms. This is the\n\
             failure mode that motivates the paper's use of a\n\
             feedback-consistent multidimensional statistic (ISOMER)."
        ),
    }
}
