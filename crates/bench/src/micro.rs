//! Self-contained micro-timing utilities shared by the bench binaries
//! (`microbench`, `hotpath`): no external bench framework, just warmed-up
//! batched sampling plus the `PAYLESS_JSON` JSONL dump convention.

use std::time::{Duration, Instant};

use payless_json::{Json, ToJson};

/// Time `f`, returning per-iteration nanoseconds: min, median, mean.
///
/// Warm-up and batch-size calibration: the batch grows until it takes at
/// least ~1 ms, so `Instant` overhead is amortized away; then batches run
/// until ~50 ms of samples are collected.
pub fn measure(mut f: impl FnMut()) -> (f64, f64, f64) {
    let mut batch = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        if start.elapsed() >= Duration::from_millis(1) || batch >= 1 << 20 {
            break;
        }
        batch *= 2;
    }
    let budget = Duration::from_millis(50);
    let begin = Instant::now();
    let mut samples = Vec::new();
    while begin.elapsed() < budget || samples.len() < 5 {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        if samples.len() >= 1000 {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    (min, median, mean)
}

/// Format nanoseconds with a human unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Collects benchmark rows, prints them aligned, and emits one JSONL line
/// (`{"figure": <name>, "runs": [...], <extras>}`) when `PAYLESS_JSON` is
/// set — same convention as the `fig*` binaries.
pub struct Runner {
    figure: String,
    results: Vec<(String, f64, f64, f64)>,
    extras: Vec<(String, f64)>,
    /// Extra numeric fields attached to individual runs (run name, key,
    /// value) — e.g. `threads_used` — serialized inside the run object.
    run_extras: Vec<(String, String, f64)>,
}

impl Runner {
    /// Start a runner for one figure (one JSONL line).
    pub fn new(figure: &str) -> Runner {
        println!(
            "{:<44} {:>10} {:>10} {:>10}",
            "benchmark", "min", "median", "mean"
        );
        Runner {
            figure: figure.to_string(),
            results: Vec::new(),
            extras: Vec::new(),
            run_extras: Vec::new(),
        }
    }

    /// Measure one case and record the row.
    pub fn bench(&mut self, name: &str, f: impl FnMut()) {
        let (min, median, mean) = measure(f);
        println!(
            "{:<44} {:>10} {:>10} {:>10}",
            name,
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        self.results.push((name.to_string(), min, median, mean));
    }

    /// Names of every recorded case, in bench order.
    pub fn run_names(&self) -> Vec<String> {
        self.results.iter().map(|(n, _, _, _)| n.clone()).collect()
    }

    /// Median nanoseconds of a recorded case (for derived metrics).
    pub fn median_of(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|(n, _, _, _)| n == name)
            .map(|(_, _, median, _)| *median)
    }

    /// Record a derived scalar (e.g. a speedup ratio): printed and added as
    /// a top-level field of the JSONL line.
    pub fn note(&mut self, key: &str, value: f64) {
        println!("{key:<44} {value:>10.2}");
        self.extras.push((key.to_string(), value));
    }

    /// All recorded notes (for derived gates like the speedup warnings).
    pub fn notes(&self) -> &[(String, f64)] {
        &self.extras
    }

    /// Attach an extra numeric field to a previously recorded run — it is
    /// serialized inside that run's JSON object (e.g. `threads_used`).
    pub fn run_field(&mut self, run: &str, key: &str, value: f64) {
        self.run_extras
            .push((run.to_string(), key.to_string(), value));
    }

    /// Print/emit and consume the runner.
    pub fn finish(self) {
        let Ok(dest) = std::env::var("PAYLESS_JSON") else {
            return;
        };
        let runs: Vec<Json> = self
            .results
            .iter()
            .map(|(name, min, median, mean)| {
                let mut fields = vec![
                    ("name".to_string(), name.to_json()),
                    ("min_nanos".to_string(), min.to_json()),
                    ("median_nanos".to_string(), median.to_json()),
                    ("mean_nanos".to_string(), mean.to_json()),
                ];
                for (run, key, value) in &self.run_extras {
                    if run == name {
                        fields.push((key.clone(), value.to_json()));
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        let mut fields = vec![
            ("figure".to_string(), self.figure.to_json()),
            ("runs".to_string(), runs.to_json()),
        ];
        for (k, v) in &self.extras {
            fields.push((k.clone(), v.to_json()));
        }
        let line = Json::Obj(fields).to_string_compact();
        if dest == "-" {
            println!("{line}");
        } else {
            use std::io::Write;
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&dest)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{line}");
                }
                Err(e) => eprintln!("PAYLESS_JSON: cannot open {dest}: {e}"),
            }
        }
    }
}
