//! The dynamic-programming plan search (Algorithm 2 of the paper).
//!
//! Two engines share the cost machinery:
//!
//! * [`SearchStrategy::LeftDeep`] — PayLess proper. Zero-price relations are
//!   joined first in one leftmost prefix (Theorem 2); only left-deep
//!   extensions are enumerated (Theorem 1); join-disconnected subsets are
//!   composed from their components' best plans (Theorem 3).
//! * [`SearchStrategy::Bushy`] — the exhaustive engine: every subset split,
//!   bushy shapes included. Used for the paper's "Disable All" ablation and
//!   (with [`CostModel::Calls`]) for the "Minimizing Calls" baseline.

use std::sync::Arc;

use payless_par::{par_map, par_map_range, planned_workers};
use payless_semantic::{Consistency, RewriteConfig, SemanticStore};
use payless_sql::AnalyzedQuery;
use payless_stats::StatsRegistry;
use payless_types::{PaylessError, Result};

use crate::cost::{Cost, CostCtx, CostModel, MarketMeta, PlanCounters};
use crate::plan::{AccessMethod, BindPair, PlanNode};

/// Which plan space to search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Left-deep with Theorems 1–3 (PayLess).
    LeftDeep,
    /// Exhaustive bushy enumeration (baselines / ablations).
    Bushy,
}

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Semantic query rewriting on?
    pub sqr: bool,
    /// Plan-space strategy.
    pub strategy: SearchStrategy,
    /// Objective.
    pub model: CostModel,
    /// Algorithm 1 knobs.
    pub rewrite: RewriteConfig,
    /// Store-freshness policy.
    pub consistency: Consistency,
    /// Theorem 2 ablation: join zero-price relations first. Only affects
    /// the left-deep engine.
    pub zero_price_first: bool,
    /// Theorem 3 ablation: compose join-disconnected subsets from their
    /// components. Only affects the left-deep engine.
    pub partition_pruning: bool,
    /// Produce per-operator estimate annotations ([`Optimized::ops`]) for
    /// `EXPLAIN ANALYZE`. Off by default: the annotation walk re-costs the
    /// chosen plan, which is wasted work when nobody introspects (it runs
    /// on a fresh context, so search counters are never perturbed either
    /// way).
    pub introspect: bool,
}

impl OptimizerConfig {
    /// Full PayLess: SQR + Theorems 1–3, minimizing transactions.
    pub fn payless() -> Self {
        OptimizerConfig {
            sqr: true,
            strategy: SearchStrategy::LeftDeep,
            model: CostModel::Transactions,
            rewrite: RewriteConfig::default(),
            consistency: Consistency::Weak,
            zero_price_first: true,
            partition_pruning: true,
            introspect: false,
        }
    }

    /// "PayLess w/o SQR" (Figure 10): theorems on, rewriting off.
    pub fn payless_no_sqr() -> Self {
        OptimizerConfig {
            sqr: false,
            ..Self::payless()
        }
    }

    /// "Disable All" (Figure 14): rewriting off and full bushy enumeration.
    pub fn disable_all() -> Self {
        OptimizerConfig {
            sqr: false,
            strategy: SearchStrategy::Bushy,
            ..Self::payless()
        }
    }

    /// The "Minimizing Calls" baseline of Florescu et al.: bushy plans,
    /// objective = RESTful calls, no rewriting.
    pub fn min_calls() -> Self {
        OptimizerConfig {
            sqr: false,
            strategy: SearchStrategy::Bushy,
            model: CostModel::Calls,
            ..Self::payless()
        }
    }
}

/// The optimizer's result.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The chosen plan.
    pub plan: PlanNode,
    /// Its estimated cost.
    pub cost: Cost,
    /// Search-effort counters (Figures 14–15).
    pub counters: PlanCounters,
    /// Per-operator estimate annotations in pre-order, with zeroed actuals
    /// for the executor to fill in. Empty unless
    /// [`OptimizerConfig::introspect`] is set.
    pub ops: Vec<payless_telemetry::OperatorTrace>,
}

/// Optimize an analyzed query.
///
/// The caller must short-circuit [`AnalyzedQuery::unsatisfiable`] queries —
/// they need no plan at all.
pub fn optimize(
    query: &AnalyzedQuery,
    stats: &StatsRegistry,
    store: &SemanticStore,
    meta: &dyn MarketMeta,
    cfg: &OptimizerConfig,
    now: u64,
) -> Result<Optimized> {
    if query.unsatisfiable {
        return Err(PaylessError::Infeasible(
            "query is unsatisfiable; no plan needed".into(),
        ));
    }
    if query.tables.is_empty() {
        return Err(PaylessError::Unsupported("query with no tables".into()));
    }
    let ctx = CostCtx::new(
        query,
        stats,
        store,
        meta,
        cfg.consistency,
        now,
        cfg.sqr,
        cfg.rewrite.clone(),
        cfg.model,
    )?;
    let mut out = match cfg.strategy {
        SearchStrategy::LeftDeep => left_deep(&ctx, cfg),
        SearchStrategy::Bushy => bushy(&ctx),
    }?;
    if cfg.introspect {
        // A fresh context, so re-costing the winner cannot disturb the
        // search counters the ablation figures (and their tests) compare.
        let actx = CostCtx::new(
            query,
            stats,
            store,
            meta,
            cfg.consistency,
            now,
            cfg.sqr,
            cfg.rewrite.clone(),
            cfg.model,
        )?;
        out.ops = crate::introspect::annotate(&actx, cfg, &out.plan);
    }
    Ok(out)
}

/// One step of a left-deep spine.
#[derive(Debug, Clone)]
enum Step {
    Fetch(usize),
    Bind(usize, Vec<BindPair>),
}

/// A persistent (shared-tail) list of steps, newest first. The 2^m DP
/// entries mostly share spine prefixes, so extending a spine is one `Arc`
/// allocation instead of cloning the whole step vector per candidate — and
/// the cheap clones are what make handing entries to worker threads free.
#[derive(Debug)]
struct StepNode {
    step: Step,
    prev: StepChain,
}

type StepChain = Option<Arc<StepNode>>;

fn chain_push(prev: &StepChain, step: Step) -> StepChain {
    Some(Arc::new(StepNode {
        step,
        prev: prev.clone(),
    }))
}

/// Flatten a chain back into build order (oldest step first).
fn chain_steps(chain: &StepChain) -> Vec<Step> {
    let mut out = Vec::new();
    let mut cur = chain;
    while let Some(node) = cur {
        out.push(node.step.clone());
        cur = &node.prev;
    }
    out.reverse();
    out
}

#[derive(Debug, Clone)]
struct LdEntry {
    cost: Cost,
    steps: StepChain,
}

/// Smallest number of subset masks worth sending to one worker thread.
const LD_MASK_CHUNK: usize = 8;

fn left_deep(ctx: &CostCtx<'_>, cfg: &OptimizerConfig) -> Result<Optimized> {
    let n = ctx.query.tables.len();
    // Theorem 2: zero-price relations form the leftmost prefix (the
    // `zero_price_first` flag exists for ablation benchmarks).
    let zero: Vec<usize> = if cfg.zero_price_first {
        (0..n).filter(|&t| ctx.zero_price(t)).collect()
    } else {
        Vec::new()
    };
    ctx.count_theorem2_hoisted(zero.len() as u64);
    let market: Vec<usize> = (0..n).filter(|t| !zero.contains(t)).collect();
    let m = market.len();

    // Pre-memoize per-table fetch costs (one SemanticRewrite per table, as
    // in Algorithm 2's size-1 loop). Sequential on purpose: each rewrite
    // already fans out internally, and nesting scopes would oversubscribe.
    let fetch_costs: Vec<Option<Cost>> = market
        .iter()
        .map(|&t| {
            ctx.count_plan();
            ctx.fetch_cost(t)
        })
        .collect();

    let mut best: Vec<Option<LdEntry>> = vec![None; 1usize << m];
    best[0] = Some(LdEntry {
        cost: Cost::ZERO,
        steps: None,
    });

    // Wavefront by subset size: a mask of k bits only reads strictly
    // smaller masks (its one-table-removed predecessors and Theorem 3's
    // component masks), so within a level every mask is independent and the
    // level can be scored in parallel against the frozen lower levels.
    // Each mask's candidate loop keeps the sequential iteration order with
    // strictly-better updates, and write-back runs in ascending mask order,
    // so the chosen plan is byte-identical to a single-threaded run.
    let mut levels: Vec<Vec<usize>> = vec![Vec::new(); m + 1];
    for mask in 1usize..(1 << m) {
        levels[mask.count_ones() as usize].push(mask);
    }
    for level in &levels {
        if level.is_empty() {
            continue;
        }
        ctx.note_threads(planned_workers(level.len(), LD_MASK_CHUNK));
        let entries = par_map(level, LD_MASK_CHUNK, |_, &mask| {
            ld_entry(ctx, cfg, &zero, &market, &fetch_costs, &best, mask)
        });
        for (&mask, entry) in level.iter().zip(entries) {
            best[mask] = entry;
        }
    }

    let full = (1usize << m) - 1;
    let entry = best[full].take().ok_or_else(|| {
        PaylessError::Infeasible("some bound attribute can never be supplied".into())
    })?;
    let plan = materialize(ctx, &zero, &chain_steps(&entry.steps))?;
    Ok(Optimized {
        plan,
        cost: entry.cost,
        counters: ctx.counters(),
        ops: Vec::new(),
    })
}

/// Score one subset mask against the already-solved smaller subsets.
/// Pure except for the (order-independent, atomic) search counters, so the
/// wavefront can evaluate masks of one level on any thread in any order.
fn ld_entry(
    ctx: &CostCtx<'_>,
    cfg: &OptimizerConfig,
    zero: &[usize],
    market: &[usize],
    fetch_costs: &[Option<Cost>],
    best: &[Option<LdEntry>],
    mask: usize,
) -> Option<LdEntry> {
    let m = market.len();
    let subset: Vec<usize> = (0..m).filter(|i| mask & (1 << i) != 0).collect();

    // Theorem 3: compose join-disconnected components.
    if cfg.partition_pruning && subset.len() > 1 {
        if let Some(groups) = disconnected_groups(ctx, zero, market, &subset) {
            ctx.count_plan();
            ctx.count_theorem3_composed();
            let mut cost = Cost::ZERO;
            let mut steps: Vec<Step> = Vec::new();
            for g in &groups {
                let gmask: usize = g.iter().map(|i| 1usize << i).sum();
                let e = best[gmask].as_ref()?;
                cost = cost.plus(e.cost);
                steps.extend(chain_steps(&e.steps));
            }
            let chain = steps.into_iter().fold(None, |acc, s| chain_push(&acc, s));
            return Some(LdEntry { cost, steps: chain });
        }
    }

    // Cross-product avoidance: when the subset (with the zero-price
    // prefix as glue) is join-connected, a build order whose every
    // prefix stays connected exists (spanning-tree order), so
    // extensions that would force a Cartesian product can be skipped
    // without losing the optimum — and without materializing the giant
    // intermediates those plans imply.
    let mut set_tables: Vec<usize> = zero.to_vec();
    set_tables.extend(subset.iter().map(|&i| market[i]));
    let connected = tables_connected(ctx, &set_tables);

    let mut entry: Option<LdEntry> = None;
    for &i in &subset {
        let rest = mask & !(1usize << i);
        let Some(left) = best[rest].as_ref() else {
            continue;
        };
        let t = market[i];
        // Tables available on the left for bindings: the zero prefix
        // plus the rest of the subset.
        let mut left_tables = zero.to_vec();
        left_tables.extend((0..m).filter(|j| rest & (1 << j) != 0).map(|j| market[j]));
        if connected && !left_tables.is_empty() && !has_edge(ctx, &[t], &left_tables) {
            continue;
        }

        // Option A: direct fetch (the "regular join" of Algorithm 2).
        if let Some(fc) = fetch_costs[i] {
            ctx.count_plan();
            let cost = left.cost.plus(fc);
            if entry.as_ref().is_none_or(|e| cost.better_than(&e.cost)) {
                entry = Some(LdEntry {
                    cost,
                    steps: chain_push(&left.steps, Step::Fetch(t)),
                });
            }
        }
        // Option B: bind joins from the left side, one candidate per
        // binding-column combination.
        let options = ctx.bind_options(t, &left_tables);
        if !options.is_empty() {
            let lrows = ctx.est_join_rows(&left_tables);
            for binds in options {
                ctx.count_plan();
                let cost = left.cost.plus(ctx.bind_cost(t, &binds, lrows));
                if entry.as_ref().is_none_or(|e| cost.better_than(&e.cost)) {
                    entry = Some(LdEntry {
                        cost,
                        steps: chain_push(&left.steps, Step::Bind(t, binds)),
                    });
                }
            }
        }
    }
    entry
}

/// Build the plan tree: zero-price prefix first, then the steps, left-deep.
fn materialize(ctx: &CostCtx<'_>, zero: &[usize], steps: &[Step]) -> Result<PlanNode> {
    let mut node: Option<PlanNode> = None;
    for &t in zero {
        let method = if ctx.query.tables[t].location == payless_sql::TableLocation::Local {
            AccessMethod::Local
        } else {
            AccessMethod::Fetch // fully covered: rewriting finds nothing to fetch
        };
        let leaf = PlanNode::access(t, method);
        node = Some(match node {
            None => leaf,
            Some(acc) => PlanNode::join(acc, leaf),
        });
    }
    for step in steps {
        node = Some(match step {
            Step::Fetch(t) => {
                let leaf = PlanNode::access(*t, AccessMethod::Fetch);
                match node {
                    None => leaf,
                    Some(acc) => PlanNode::join(acc, leaf),
                }
            }
            Step::Bind(t, binds) => {
                let left = node.ok_or_else(|| {
                    PaylessError::Internal("bind join with empty left side".into())
                })?;
                PlanNode::bind_join(left, *t, binds.clone())
            }
        });
    }
    node.ok_or_else(|| PaylessError::Internal("empty plan".into()))
}

/// Theorem 3's partition test: split `subset` (indices into `market`) into
/// groups that cannot join with each other, where connectivity may run
/// through the zero-price prefix. Returns `None` when the subset is a single
/// group.
fn disconnected_groups(
    ctx: &CostCtx<'_>,
    zero: &[usize],
    market: &[usize],
    subset: &[usize],
) -> Option<Vec<Vec<usize>>> {
    // Union-find over table ids within zero ∪ subset-tables.
    let mut members: Vec<usize> = zero.to_vec();
    members.extend(subset.iter().map(|&i| market[i]));
    let mut parent: Vec<usize> = (0..members.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let index_of = |t: usize| members.iter().position(|&x| x == t);
    for e in &ctx.query.joins {
        if let (Some(a), Some(b)) = (index_of(e.left.0), index_of(e.right.0)) {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
    }
    // Group subset indices by component root.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for &i in subset {
        let pos = index_of(market[i]).expect("member");
        let root = find(&mut parent, pos);
        match groups.iter_mut().find(|(r, _)| *r == root) {
            Some((_, g)) => g.push(i),
            None => groups.push((root, vec![i])),
        }
    }
    if groups.len() <= 1 {
        return None;
    }
    Some(groups.into_iter().map(|(_, g)| g).collect())
}

/// Any equi-join edge between the two table sets?
fn has_edge(ctx: &CostCtx<'_>, a: &[usize], b: &[usize]) -> bool {
    ctx.query.joins.iter().any(|e| {
        (a.contains(&e.left.0) && b.contains(&e.right.0))
            || (a.contains(&e.right.0) && b.contains(&e.left.0))
    })
}

/// Is the induced join graph over `tables` connected?
fn tables_connected(ctx: &CostCtx<'_>, tables: &[usize]) -> bool {
    if tables.len() <= 1 {
        return true;
    }
    let mut parent: Vec<usize> = (0..tables.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for e in &ctx.query.joins {
        let a = tables.iter().position(|&t| t == e.left.0);
        let b = tables.iter().position(|&t| t == e.right.0);
        if let (Some(a), Some(b)) = (a, b) {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
    }
    let root = find(&mut parent, 0);
    (1..tables.len()).all(|i| find(&mut parent, i) == root)
}

/// How a bushy subset's best plan is built — a decision table entry rather
/// than a materialized `PlanNode`, so candidate evaluation never clones
/// whole subtrees. The winning tree is rebuilt once at the end.
#[derive(Debug, Clone)]
enum BushyChoice {
    /// Access one table directly.
    Leaf(usize, AccessMethod),
    /// Local join of the best plans of two sub-masks.
    Join(usize, usize),
    /// Bind join: left sub-mask's best plan feeding bindings into a table.
    Bind(usize, usize, Vec<BindPair>),
}

#[derive(Debug, Clone)]
struct BushyEntry {
    cost: Cost,
    choice: BushyChoice,
}

/// Smallest number of bushy masks worth sending to one worker thread (each
/// mask enumerates up to 2^|mask| splits, so chunks are small).
const BUSHY_MASK_CHUNK: usize = 4;

fn bushy(ctx: &CostCtx<'_>) -> Result<Optimized> {
    let n = ctx.query.tables.len();
    let mut best: Vec<Option<BushyEntry>> = vec![None; 1usize << n];
    // Connectivity memo per mask (for Cartesian-product avoidance: every
    // cut of a connected join graph has a crossing edge, so edge-less
    // splits of connected masks are never needed). Independent per mask.
    let connected: Vec<bool> = par_map_range(1usize << n, 512, |mask| {
        tables_connected(ctx, &tables_of(mask, n))
    });

    for t in 0..n {
        ctx.count_plan();
        let method = if ctx.query.tables[t].location == payless_sql::TableLocation::Local {
            AccessMethod::Local
        } else {
            AccessMethod::Fetch
        };
        if let Some(cost) = ctx.fetch_cost(t) {
            best[1 << t] = Some(BushyEntry {
                cost,
                choice: BushyChoice::Leaf(t, method),
            });
        }
    }

    // Same wavefront argument as the left-deep engine: a mask's splits are
    // all strictly smaller masks, so levels parallelize and each mask keeps
    // the sequential descending-split order internally.
    let mut levels: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for mask in 1usize..(1 << n) {
        if mask.count_ones() >= 2 {
            levels[mask.count_ones() as usize].push(mask);
        }
    }
    for level in &levels {
        if level.is_empty() {
            continue;
        }
        ctx.note_threads(planned_workers(level.len(), BUSHY_MASK_CHUNK));
        let entries = par_map(level, BUSHY_MASK_CHUNK, |_, &mask| {
            bushy_entry(ctx, &connected, &best, n, mask)
        });
        for (&mask, entry) in level.iter().zip(entries) {
            best[mask] = entry;
        }
    }

    let full = (1usize << n) - 1;
    let entry = best[full].clone().ok_or_else(|| {
        PaylessError::Infeasible("some bound attribute can never be supplied".into())
    })?;
    Ok(Optimized {
        plan: materialize_bushy(&best, full)?,
        cost: entry.cost,
        counters: ctx.counters(),
        ops: Vec::new(),
    })
}

/// Tables of a mask, ascending.
fn tables_of(mask: usize, n: usize) -> Vec<usize> {
    (0..n).filter(|i| mask & (1 << i) != 0).collect()
}

/// Score one bushy mask against the already-solved smaller masks.
fn bushy_entry(
    ctx: &CostCtx<'_>,
    connected: &[bool],
    best: &[Option<BushyEntry>],
    n: usize,
    mask: usize,
) -> Option<BushyEntry> {
    let mut entry: Option<BushyEntry> = None;
    // Enumerate proper non-empty splits (left = sub, right = rest).
    let mut sub = (mask - 1) & mask;
    while sub != 0 {
        let rest = mask & !sub;
        let crossing = has_edge(ctx, &tables_of(sub, n), &tables_of(rest, n));
        if (crossing || !connected[mask]) && best[sub].is_some() && best[rest].is_some() {
            let (l, r) = (best[sub].as_ref().unwrap(), best[rest].as_ref().unwrap());
            // Local join of the two sides.
            ctx.count_plan();
            let cost = l.cost.plus(r.cost);
            if entry.as_ref().is_none_or(|e| cost.better_than(&e.cost)) {
                entry = Some(BushyEntry {
                    cost,
                    choice: BushyChoice::Join(sub, rest),
                });
            }
        }
        // Bind join: right side must be a single table.
        if rest.count_ones() == 1 {
            if let Some(l) = &best[sub] {
                let t = rest.trailing_zeros() as usize;
                let left_tables = tables_of(sub, n);
                let options = ctx.bind_options(t, &left_tables);
                if !options.is_empty() {
                    let lrows = ctx.est_join_rows(&left_tables);
                    for binds in options {
                        ctx.count_plan();
                        let cost = l.cost.plus(ctx.bind_cost(t, &binds, lrows));
                        if entry.as_ref().is_none_or(|e| cost.better_than(&e.cost)) {
                            entry = Some(BushyEntry {
                                cost,
                                choice: BushyChoice::Bind(sub, t, binds),
                            });
                        }
                    }
                }
            }
        }
        sub = (sub - 1) & mask;
    }
    entry
}

/// Rebuild the winning bushy tree from the decision table.
fn materialize_bushy(best: &[Option<BushyEntry>], mask: usize) -> Result<PlanNode> {
    let entry = best[mask]
        .as_ref()
        .ok_or_else(|| PaylessError::Internal("bushy decision table has a hole".into()))?;
    match &entry.choice {
        BushyChoice::Leaf(t, method) => Ok(PlanNode::access(*t, *method)),
        BushyChoice::Join(sub, rest) => Ok(PlanNode::join(
            materialize_bushy(best, *sub)?,
            materialize_bushy(best, *rest)?,
        )),
        BushyChoice::Bind(sub, t, binds) => Ok(PlanNode::bind_join(
            materialize_bushy(best, *sub)?,
            *t,
            binds.clone(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payless_geometry::QuerySpace;
    use payless_sql::{analyze, parse, Catalog, MapCatalog, TableLocation};
    use payless_types::{Column, Domain, Schema, Value};
    use std::collections::HashMap;

    /// Figure 1's WHW setting: Station (3,962 rows; 788 US stations) and
    /// Weather (one row per station per day).
    struct Fixture {
        catalog: MapCatalog,
        stats: StatsRegistry,
        store: SemanticStore,
        meta: HashMap<String, u64>,
    }

    fn whw_fixture() -> Fixture {
        let countries = Domain::categorical(["United States", "Canada"]);
        let cities: Vec<String> = (0..100).map(|i| format!("City{i}")).collect();
        let station = Schema::new(
            "Station",
            vec![
                Column::free("Country", countries.clone()),
                Column::free("StationID", Domain::int(1, 4000)),
                Column::free("City", Domain::categorical(cities)),
            ],
        );
        let weather = Schema::new(
            "Weather",
            vec![
                Column::free("Country", countries),
                Column::free("StationID", Domain::int(1, 4000)),
                Column::free("Date", Domain::int(20140601, 20140630)),
                Column::output("Temperature", Domain::int(-60, 60)),
            ],
        );
        let catalog = MapCatalog::new()
            .with(station.clone(), TableLocation::Market)
            .with(weather.clone(), TableLocation::Market);
        let mut stats = StatsRegistry::new();
        stats.register(&station, 3962);
        stats.register(&weather, 3962 * 30);
        let mut store = SemanticStore::new();
        store.register(QuerySpace::of(&station));
        store.register(QuerySpace::of(&weather));
        let mut meta = HashMap::new();
        meta.insert("Station".to_string(), 100u64);
        meta.insert("Weather".to_string(), 100u64);
        Fixture {
            catalog,
            stats,
            store,
            meta,
        }
    }

    fn q1(f: &Fixture) -> AnalyzedQuery {
        let stmt = parse(
            "SELECT Temperature FROM Station, Weather \
             WHERE City = 'City7' AND Country = 'United States' AND \
             Date >= 20140601 AND Date <= 20140630 AND \
             Station.StationID = Weather.StationID",
        )
        .unwrap();
        analyze(&stmt, &f.catalog).unwrap()
    }

    #[test]
    fn figure1_bind_join_wins_when_stations_are_many() {
        // 3962 stations over 2 countries, ~1981 in the US, ~20 per city:
        // fetching all US June weather is ~594 transactions, bind-joining
        // ~20 stations x 30 days is ~20. PayLess must pick plan P2.
        let f = whw_fixture();
        let q = q1(&f);
        let out = optimize(
            &q,
            &f.stats,
            &f.store,
            &f.meta,
            &OptimizerConfig::payless(),
            0,
        )
        .unwrap();
        let weather = q.table_index("Weather").unwrap();
        assert!(
            matches!(&out.plan, PlanNode::BindJoin { table, .. } if *table == weather),
            "expected bind join on Weather, got {}",
            out.plan
        );
        assert!(out.plan.is_left_deep());
        assert!(out.cost.primary < 100.0, "cost {:?}", out.cost);
    }

    #[test]
    fn introspection_annotates_every_operator_in_preorder() {
        let f = whw_fixture();
        let q = q1(&f);
        let base = optimize(
            &q,
            &f.stats,
            &f.store,
            &f.meta,
            &OptimizerConfig::payless(),
            0,
        )
        .unwrap();
        assert!(base.ops.is_empty(), "annotations are opt-in");
        let cfg = OptimizerConfig {
            introspect: true,
            ..OptimizerConfig::payless()
        };
        let out = optimize(&q, &f.stats, &f.store, &f.meta, &cfg, 0).unwrap();
        // Introspection must not change the search outcome or its effort.
        assert_eq!(out.plan, base.plan);
        assert_eq!(out.cost.primary.to_bits(), base.cost.primary.to_bits());
        assert_eq!(
            out.counters.plans_considered,
            base.counters.plans_considered
        );
        assert_eq!(
            out.counters.boxes_enumerated,
            base.counters.boxes_enumerated
        );

        assert_eq!(out.ops.len(), out.plan.node_count());
        for (i, op) in out.ops.iter().enumerate() {
            assert_eq!(op.id, i, "ids are the pre-order index");
        }
        let root = &out.ops[0];
        assert!(root.parent.is_none());
        assert!(root.label.contains("bind-join"), "{}", root.label);
        assert!(root.est.pages > 0.0);
        assert_eq!(root.est.uncovered_fraction, Some(1.0), "empty store");
        for op in &out.ops[1..] {
            assert!(op.parent.expect("non-root has parent") < op.id);
        }
        // The per-operator page estimates decompose the plan's cost.
        let sum: f64 = out.ops.iter().map(|o| o.est.pages).sum();
        assert!(
            (sum - out.cost.primary).abs() < 1e-6,
            "{sum} vs {:?}",
            out.cost
        );
    }

    #[test]
    fn figure1_fetch_wins_when_stations_are_few() {
        // Shrink the world: 20 stations total. Downloading US June weather
        // costs ~ceil(10*30/100) = 3-ish transactions; a bind join would pay
        // one call per city station. Fetch should win (the paper's P1 case).
        let countries = Domain::categorical(["United States", "Canada"]);
        let station = Schema::new(
            "Station",
            vec![
                Column::free("Country", countries.clone()),
                Column::free("StationID", Domain::int(1, 20)),
                Column::free("City", Domain::categorical(["Seattle", "Boston"])),
            ],
        );
        let weather = Schema::new(
            "Weather",
            vec![
                Column::free("Country", countries),
                Column::free("StationID", Domain::int(1, 20)),
                Column::free("Date", Domain::int(20140601, 20140630)),
                Column::output("Temperature", Domain::int(-60, 60)),
            ],
        );
        let catalog = MapCatalog::new()
            .with(station.clone(), TableLocation::Market)
            .with(weather.clone(), TableLocation::Market);
        let mut stats = StatsRegistry::new();
        stats.register(&station, 20);
        stats.register(&weather, 600);
        let mut store = SemanticStore::new();
        store.register(QuerySpace::of(&station));
        store.register(QuerySpace::of(&weather));
        let mut meta = HashMap::new();
        meta.insert("Station".to_string(), 100u64);
        meta.insert("Weather".to_string(), 100u64);

        let stmt = parse(
            "SELECT Temperature FROM Station, Weather \
             WHERE City = 'Seattle' AND Country = 'United States' AND \
             Station.StationID = Weather.StationID",
        )
        .unwrap();
        let q = analyze(&stmt, &catalog).unwrap();
        let out = optimize(&q, &stats, &store, &meta, &OptimizerConfig::payless(), 0).unwrap();
        // Weather must be fetched directly (plan P1): no bind join anywhere.
        match &out.plan {
            PlanNode::Join { left, right } => {
                assert!(matches!(**left, PlanNode::Access { .. }));
                assert!(matches!(**right, PlanNode::Access { .. }));
            }
            other => panic!("expected plain join plan, got {other}"),
        }
    }

    /// The Theorem-1 example: U(xᶠ,yᶠ), R(yᵇ,zᶠ), S(tᶠ,wᶠ), T(wᵇ,zᶠ).
    fn bound_fixture() -> (
        MapCatalog,
        StatsRegistry,
        SemanticStore,
        HashMap<String, u64>,
    ) {
        let u = Schema::new(
            "U",
            vec![
                Column::free("x", Domain::int(0, 99)),
                Column::free("y", Domain::int(0, 99)),
            ],
        );
        let r = Schema::new(
            "R",
            vec![
                Column::bound("y", Domain::int(0, 99)),
                Column::free("z", Domain::int(0, 99)),
            ],
        );
        let s = Schema::new(
            "S",
            vec![
                Column::free("t", Domain::int(0, 99)),
                Column::free("w", Domain::int(0, 99)),
            ],
        );
        let t = Schema::new(
            "T",
            vec![
                Column::bound("w", Domain::int(0, 99)),
                Column::free("z", Domain::int(0, 99)),
            ],
        );
        let catalog = MapCatalog::new()
            .with(u.clone(), TableLocation::Market)
            .with(r.clone(), TableLocation::Market)
            .with(s.clone(), TableLocation::Market)
            .with(t.clone(), TableLocation::Market);
        let mut stats = StatsRegistry::new();
        for schema in [&u, &r, &s, &t] {
            stats.register(schema, 1000);
        }
        let mut store = SemanticStore::new();
        for schema in [&u, &r, &s, &t] {
            store.register(QuerySpace::of(schema));
        }
        let mut meta = HashMap::new();
        for name in ["U", "R", "S", "T"] {
            meta.insert(name.to_string(), 100u64);
        }
        (catalog, stats, store, meta)
    }

    #[test]
    fn bound_attributes_force_bind_joins() {
        let (catalog, stats, store, meta) = bound_fixture();
        let stmt = parse(
            "SELECT * FROM U, R, S, T \
             WHERE U.y = R.y AND S.w = T.w AND R.z = T.z",
        )
        .unwrap();
        let q = analyze(&stmt, &catalog).unwrap();
        let out = optimize(&q, &stats, &store, &meta, &OptimizerConfig::payless(), 0).unwrap();
        assert!(out.plan.is_left_deep());
        assert_eq!(out.plan.leaf_count(), 4);
        // R and T can only be reached through bind joins.
        let plan_str = out.plan.to_string();
        assert!(plan_str.contains("⋈→"), "plan: {plan_str}");
    }

    #[test]
    fn infeasible_when_bound_attribute_unreachable() {
        let (catalog, stats, store, meta) = bound_fixture();
        // Query R alone: its bound attribute y is never supplied.
        let stmt = parse("SELECT * FROM R WHERE z >= 5 AND z <= 10").unwrap();
        let q = analyze(&stmt, &catalog).unwrap();
        let err = optimize(&q, &stats, &store, &meta, &OptimizerConfig::payless(), 0);
        assert!(matches!(err, Err(PaylessError::Infeasible(_))));
    }

    #[test]
    fn bound_attribute_with_explicit_value_is_fetchable() {
        let (catalog, stats, store, meta) = bound_fixture();
        let stmt = parse("SELECT * FROM R WHERE y = 7").unwrap();
        let q = analyze(&stmt, &catalog).unwrap();
        let out = optimize(&q, &stats, &store, &meta, &OptimizerConfig::payless(), 0).unwrap();
        assert_eq!(out.plan, PlanNode::access(0, AccessMethod::Fetch));
    }

    #[test]
    fn theorem_toggles_are_lossless_and_monotone() {
        // Chain query with two covered (zero-price) tables: disabling
        // Theorem 2 and/or Theorem 3 must not change the optimal cost, and
        // must not shrink the number of candidates considered.
        let f = whw_fixture();
        let mut store = f.store.clone();
        let sspace = store.space("Station").unwrap().clone();
        store.record("Station", sspace.full_region(), 0);
        let q = q1(&f);
        let variants = [
            OptimizerConfig::payless(),
            OptimizerConfig {
                zero_price_first: false,
                ..OptimizerConfig::payless()
            },
            OptimizerConfig {
                partition_pruning: false,
                ..OptimizerConfig::payless()
            },
            OptimizerConfig {
                zero_price_first: false,
                partition_pruning: false,
                ..OptimizerConfig::payless()
            },
        ];
        let outs: Vec<_> = variants
            .iter()
            .map(|cfg| optimize(&q, &f.stats, &store, &f.meta, cfg, 1).unwrap())
            .collect();
        for o in &outs {
            assert!(
                (o.cost.primary - outs[0].cost.primary).abs() < 1e-6,
                "cost changed under ablation: {} vs {}",
                o.cost.primary,
                outs[0].cost.primary
            );
        }
        // Full PayLess considers the fewest candidates.
        for o in &outs[1..] {
            assert!(outs[0].counters.plans_considered <= o.counters.plans_considered);
        }
    }

    #[test]
    fn theorem3_reduces_candidates_vs_bushy() {
        let (catalog, stats, store, meta) = bound_fixture();
        // U-R connected; S-T connected; the two pairs are disconnected.
        let stmt = parse("SELECT * FROM U, R, S, T WHERE U.y = R.y AND S.w = T.w").unwrap();
        let q = analyze(&stmt, &catalog).unwrap();
        let ld = optimize(
            &q,
            &stats,
            &store,
            &meta,
            &OptimizerConfig::payless_no_sqr(),
            0,
        )
        .unwrap();
        let bu = optimize(
            &q,
            &stats,
            &store,
            &meta,
            &OptimizerConfig::disable_all(),
            0,
        )
        .unwrap();
        assert!(
            ld.counters.plans_considered < bu.counters.plans_considered,
            "left-deep {} !< bushy {}",
            ld.counters.plans_considered,
            bu.counters.plans_considered
        );
        // And the reduced search space does not lose the optimum.
        assert!(ld.cost.primary <= bu.cost.primary + 1e-9);
    }

    #[test]
    fn zero_price_tables_lead_the_plan() {
        let f = whw_fixture();
        let mut store = f.store.clone();
        // Cover Station's whole space: it becomes zero-price.
        let station_space = store.space("Station").unwrap().clone();
        store.record("Station", station_space.full_region(), 0);
        let q = q1(&f);
        let out = optimize(
            &q,
            &f.stats,
            &store,
            &f.meta,
            &OptimizerConfig::payless(),
            1,
        )
        .unwrap();
        let tables = out.plan.tables();
        assert_eq!(tables[0], q.table_index("Station").unwrap());
    }

    #[test]
    fn min_calls_prefers_single_fetch_over_bind_join() {
        // The paper's Section 1 observation: a calls-minimizing optimizer
        // picks P1 (2 calls) over P2 (1 + #stations calls) even though P2 is
        // far cheaper in transactions.
        let f = whw_fixture();
        let q = q1(&f);
        let mc = optimize(
            &q,
            &f.stats,
            &f.store,
            &f.meta,
            &OptimizerConfig::min_calls(),
            0,
        )
        .unwrap();
        let weather = q.table_index("Weather").unwrap();
        fn has_bind(p: &PlanNode, t: usize) -> bool {
            match p {
                PlanNode::Access { .. } => false,
                PlanNode::Join { left, right } => has_bind(left, t) || has_bind(right, t),
                PlanNode::BindJoin { left, table, .. } => *table == t || has_bind(left, t),
            }
        }
        assert!(!has_bind(&mc.plan, weather), "MinCalls chose a bind join");
        // While PayLess does bind-join and pays less (estimated).
        let pl = optimize(
            &q,
            &f.stats,
            &f.store,
            &f.meta,
            &OptimizerConfig::payless_no_sqr(),
            0,
        )
        .unwrap();
        assert!(pl.cost.primary < mc_transactions(&f, &q, &mc.plan) + 1e-9);
    }

    /// Estimate a plan's transaction cost (for cross-model comparisons).
    fn mc_transactions(f: &Fixture, q: &AnalyzedQuery, plan: &PlanNode) -> f64 {
        let ctx = CostCtx::new(
            q,
            &f.stats,
            &f.store,
            &f.meta,
            Consistency::Weak,
            0,
            false,
            RewriteConfig::default(),
            CostModel::Transactions,
        )
        .unwrap();
        fn walk(ctx: &CostCtx<'_>, p: &PlanNode) -> f64 {
            match p {
                PlanNode::Access { table, .. } => ctx
                    .fetch_cost(*table)
                    .map(|c| c.primary)
                    .unwrap_or(f64::INFINITY),
                PlanNode::Join { left, right } => walk(ctx, left) + walk(ctx, right),
                PlanNode::BindJoin { left, table, binds } => {
                    let lt = left.tables();
                    let lrows = ctx.est_join_rows(&lt);
                    walk(ctx, left) + ctx.bind_cost(*table, binds, lrows).primary
                }
            }
        }
        walk(&ctx, plan)
    }

    #[test]
    fn unsatisfiable_query_is_rejected() {
        let f = whw_fixture();
        let stmt = parse("SELECT * FROM Station WHERE City = 'City1' AND City = 'City2'").unwrap();
        let q = analyze(&stmt, &f.catalog).unwrap();
        assert!(q.unsatisfiable);
        assert!(matches!(
            optimize(
                &q,
                &f.stats,
                &f.store,
                &f.meta,
                &OptimizerConfig::payless(),
                0
            ),
            Err(PaylessError::Infeasible(_))
        ));
    }

    #[test]
    fn sqr_lowers_estimated_cost_after_coverage() {
        let f = whw_fixture();
        let q = q1(&f);
        let before = optimize(
            &q,
            &f.stats,
            &f.store,
            &f.meta,
            &OptimizerConfig::payless(),
            0,
        )
        .unwrap();
        // Cover all of Weather: the whole query should now cost ~0.
        let mut store = f.store.clone();
        let wspace = store.space("Weather").unwrap().clone();
        store.record("Weather", wspace.full_region(), 0);
        let sspace = store.space("Station").unwrap().clone();
        store.record("Station", sspace.full_region(), 0);
        let after = optimize(
            &q,
            &f.stats,
            &store,
            &f.meta,
            &OptimizerConfig::payless(),
            1,
        )
        .unwrap();
        assert!(after.cost.primary <= 1e-9);
        assert!(before.cost.primary > 0.0);
    }

    #[test]
    fn catalog_is_object_safe_for_optimizer_flow() {
        // Regression guard: the whole flow works through trait objects.
        let f = whw_fixture();
        let cat: &dyn Catalog = &f.catalog;
        let stmt = parse("SELECT * FROM Station WHERE Country = 'Canada'").unwrap();
        let q = analyze(&stmt, cat).unwrap();
        let out = optimize(
            &q,
            &f.stats,
            &f.store,
            &f.meta,
            &OptimizerConfig::payless(),
            0,
        )
        .unwrap();
        assert_eq!(out.plan.leaf_count(), 1);
        assert_eq!(
            q.tables[0].access.on(0),
            Some(&payless_sql::AccessConstraint::One(
                payless_types::Constraint::Eq(Value::str("Canada"))
            ))
        );
    }

    /// An n-table chain query (C0 ⋈ C1 ⋈ ... on b = a) with trained
    /// per-table histograms, big enough that the DP wavefront chunks.
    fn chain_fixture(
        n: usize,
    ) -> (
        AnalyzedQuery,
        StatsRegistry,
        SemanticStore,
        HashMap<String, u64>,
    ) {
        let mut catalog = MapCatalog::new();
        let mut stats = StatsRegistry::new();
        let mut store = SemanticStore::new();
        let mut meta = HashMap::new();
        for i in 0..n {
            let schema = Schema::new(
                format!("C{i}"),
                vec![
                    Column::free("a", Domain::int(0, 999)),
                    Column::free("b", Domain::int(0, 999)),
                ],
            );
            catalog = catalog.with(schema.clone(), TableLocation::Market);
            stats.register(&schema, 10_000);
            for k in 0..24i64 {
                let lo0 = (k * 53) % 900;
                let lo1 = (k * 97) % 900;
                stats.feedback(
                    &schema.table,
                    &payless_geometry::region![(lo0, lo0 + 24), (lo1, lo1 + 24)],
                    40,
                );
            }
            store.register(QuerySpace::of(&schema));
            meta.insert(schema.table.to_string(), 100u64);
        }
        let tables: Vec<String> = (0..n).map(|i| format!("C{i}")).collect();
        let joins: Vec<String> = (0..n - 1)
            .map(|i| format!("C{i}.b = C{}.a", i + 1))
            .collect();
        let sql = format!(
            "SELECT * FROM {} WHERE {}",
            tables.join(", "),
            joins.join(" AND ")
        );
        let q = analyze(&parse(&sql).unwrap(), &catalog).unwrap();
        (q, stats, store, meta)
    }

    /// The wavefront parallelization must be invisible: the same plan string
    /// and bit-identical costs at every thread count, for both engines.
    #[test]
    fn parallel_dp_matches_single_threaded() {
        let (q, stats, store, meta) = chain_fixture(6);
        for cfg in [
            OptimizerConfig::payless_no_sqr(),
            OptimizerConfig::disable_all(),
        ] {
            let seq = payless_par::with_max_threads(1, || {
                optimize(&q, &stats, &store, &meta, &cfg, 0).unwrap()
            });
            for threads in [2usize, 4] {
                let par = payless_par::with_max_threads(threads, || {
                    optimize(&q, &stats, &store, &meta, &cfg, 0).unwrap()
                });
                assert_eq!(
                    par.plan.to_string(),
                    seq.plan.to_string(),
                    "{threads} threads"
                );
                assert_eq!(par.cost.primary.to_bits(), seq.cost.primary.to_bits());
                assert_eq!(par.cost.secondary.to_bits(), seq.cost.secondary.to_bits());
            }
        }
    }
}
