//! Unit tests for the cost machinery (`CostCtx`): feasibility rules, bind
//! options, region expansion, and the Cost ordering.

use std::collections::HashMap;

use payless_geometry::QuerySpace;
use payless_semantic::{Consistency, RewriteConfig, SemanticStore};
use payless_sql::{analyze, parse, MapCatalog, TableLocation};
use payless_stats::StatsRegistry;
use payless_types::{Column, Domain, Schema};

use crate::cost::{required_regions, Cost, CostCtx, CostModel};

struct Rig {
    catalog: MapCatalog,
    stats: StatsRegistry,
    store: SemanticStore,
    meta: HashMap<String, u64>,
}

fn rig() -> Rig {
    let a = Schema::new(
        "A",
        vec![
            Column::free("k", Domain::int(0, 99)),
            Column::free("c", Domain::categorical(["x", "y", "z"])),
        ],
    );
    let b = Schema::new(
        "B",
        vec![
            Column::bound("k", Domain::int(0, 99)),
            Column::free("v", Domain::int(0, 999)),
        ],
    );
    let l = Schema::new("L", vec![Column::free("k", Domain::int(0, 99))]);
    let mut catalog = MapCatalog::new();
    let mut stats = StatsRegistry::new();
    let mut store = SemanticStore::new();
    let mut meta = HashMap::new();
    for (s, loc) in [
        (&a, TableLocation::Market),
        (&b, TableLocation::Market),
        (&l, TableLocation::Local),
    ] {
        catalog.add(s.clone(), loc);
        stats.register(s, 1000);
        store.register(QuerySpace::of(s));
        meta.insert(s.table.to_string(), 100u64);
    }
    Rig {
        catalog,
        stats,
        store,
        meta,
    }
}

fn ctx<'a>(r: &'a Rig, q: &'a payless_sql::AnalyzedQuery, sqr: bool) -> CostCtx<'a> {
    CostCtx::new(
        q,
        &r.stats,
        &r.store,
        &r.meta,
        Consistency::Weak,
        0,
        sqr,
        RewriteConfig::default(),
        CostModel::Transactions,
    )
    .unwrap()
}

#[test]
fn cost_ordering_lexicographic() {
    let a = Cost {
        primary: 1.0,
        secondary: 100.0,
    };
    let b = Cost {
        primary: 2.0,
        secondary: 1.0,
    };
    assert!(a.better_than(&b));
    assert!(!b.better_than(&a));
    let c = Cost {
        primary: 1.0,
        secondary: 50.0,
    };
    assert!(c.better_than(&a));
    assert!(!a.better_than(&c));
    // Epsilon: float noise on primary does not flip a secondary win.
    let d = Cost {
        primary: 1.0 + 1e-12,
        secondary: 50.0,
    };
    assert!(d.better_than(&a));
    assert_eq!(Cost::ZERO.plus(a).primary, 1.0);
}

#[test]
fn local_tables_are_zero_price_and_fetchable() {
    let r = rig();
    let q = analyze(
        &parse("SELECT * FROM L WHERE k >= 5 AND k <= 10").unwrap(),
        &r.catalog,
    )
    .unwrap();
    let c = ctx(&r, &q, true);
    assert!(c.zero_price(0));
    assert!(c.fetch_feasible(0));
    assert_eq!(c.fetch_cost(0), Some(Cost::ZERO));
}

#[test]
fn bound_table_infeasible_without_binding() {
    let r = rig();
    let q = analyze(
        &parse("SELECT * FROM B WHERE v >= 1 AND v <= 10").unwrap(),
        &r.catalog,
    )
    .unwrap();
    let c = ctx(&r, &q, true);
    assert!(!c.fetch_feasible(0));
    assert_eq!(c.fetch_cost(0), None);
    assert!(c.bind_options(0, &[]).is_empty());
}

#[test]
fn bound_table_feasible_with_range() {
    let r = rig();
    let q = analyze(
        &parse("SELECT * FROM B WHERE k >= 5 AND k <= 20").unwrap(),
        &r.catalog,
    )
    .unwrap();
    let c = ctx(&r, &q, true);
    assert!(c.fetch_feasible(0));
    let cost = c.fetch_cost(0).unwrap();
    // 16% of 1000 tuples = 160 -> 2 transactions at page 100.
    assert_eq!(cost.primary, 2.0);
}

#[test]
fn bind_options_cover_mandatory_and_subsets() {
    let r = rig();
    let q = analyze(
        &parse("SELECT * FROM A, B WHERE A.k = B.k AND B.v >= 0 AND B.v <= 99").unwrap(),
        &r.catalog,
    )
    .unwrap();
    let c = ctx(&r, &q, true);
    let b_tid = q.table_index("B").unwrap();
    let a_tid = q.table_index("A").unwrap();
    let options = c.bind_options(b_tid, &[a_tid]);
    // k is mandatory-and-unconstrained: every option must include it, and
    // with no optional columns there is exactly one option.
    assert_eq!(options.len(), 1);
    assert_eq!(options[0].len(), 1);
    assert_eq!(options[0][0].right_col, 0);
    // No options when the left side lacks the join column's table.
    assert!(c.bind_options(b_tid, &[]).is_empty());
}

#[test]
fn bind_options_enumerate_optional_subsets() {
    // Two optional binding columns -> 3 non-empty subsets.
    let r = rig();
    let q = analyze(
        &parse("SELECT * FROM L, A WHERE L.k = A.k").unwrap(),
        &r.catalog,
    )
    .unwrap();
    let c = ctx(&r, &q, true);
    let a_tid = q.table_index("A").unwrap();
    let l_tid = q.table_index("L").unwrap();
    let options = c.bind_options(a_tid, &[l_tid]);
    // One optional column (k on A) -> exactly one non-empty subset.
    assert_eq!(options.len(), 1);
}

#[test]
fn zero_price_after_full_coverage() {
    let mut r = rig();
    let space = r.store.space("A").unwrap().clone();
    r.store.record("A", space.full_region(), 0);
    let q = analyze(&parse("SELECT * FROM A").unwrap(), &r.catalog).unwrap();
    let c = ctx(&r, &q, true);
    assert!(c.zero_price(0));
    // …but not with SQR disabled.
    let c2 = ctx(&r, &q, false);
    assert!(!c2.zero_price(0));
}

#[test]
fn required_regions_expand_disjunctions() {
    let r = rig();
    let q = analyze(
        &parse("SELECT * FROM A WHERE (c = 'x' OR c = 'z') AND k >= 0 AND k <= 49").unwrap(),
        &r.catalog,
    )
    .unwrap();
    let space = r.stats.table("A").unwrap().space();
    let regions = required_regions(space, &q.tables[0].access).unwrap();
    assert_eq!(regions.len(), 2);
    for region in &regions {
        assert_eq!(region.dim(0), payless_geometry::Interval::new(0, 49));
        assert_eq!(region.dim(1).width(), 1);
    }
}

#[test]
fn estimates_follow_uniformity_before_feedback() {
    let r = rig();
    let q = analyze(
        &parse("SELECT * FROM A WHERE k >= 0 AND k <= 9").unwrap(),
        &r.catalog,
    )
    .unwrap();
    let c = ctx(&r, &q, true);
    // 10% of the k-domain, all categories: 100 of 1000 tuples.
    assert!((c.table_rows(0) - 100.0).abs() < 1e-6);
    // Distinct k values in the region: min(10, 100) = 10.
    assert!((c.col_distinct(0, 0) - 10.0).abs() < 1e-6);
    // Distinct categories: min(3, 100) = 3.
    assert!((c.col_distinct(0, 1) - 3.0).abs() < 1e-6);
}

#[test]
fn join_rows_use_edge_selectivity() {
    let r = rig();
    let q = analyze(
        &parse("SELECT * FROM L, A WHERE L.k = A.k").unwrap(),
        &r.catalog,
    )
    .unwrap();
    let c = ctx(&r, &q, true);
    let rows = c.est_join_rows(&[0, 1]);
    // 1000 x 1000 / max(100 distinct, 100 distinct) = 10_000.
    assert!((rows - 10_000.0).abs() < 1e-6);
    // Without the edge (single tables), it is just the cardinalities.
    assert!((c.est_join_rows(&[0]) - 1000.0).abs() < 1e-6);
    assert!((c.est_join_rows(&[]) - 1.0).abs() < 1e-6);
}

#[test]
fn bind_cost_zero_when_region_fully_covered() {
    let mut r = rig();
    let space = r.store.space("A").unwrap().clone();
    r.store.record("A", space.full_region(), 0);
    let q = analyze(
        &parse("SELECT * FROM L, A WHERE L.k = A.k").unwrap(),
        &r.catalog,
    )
    .unwrap();
    let c = ctx(&r, &q, true);
    let a_tid = q.table_index("A").unwrap();
    let l_tid = q.table_index("L").unwrap();
    let binds = c.bind_options(a_tid, &[l_tid]).remove(0);
    let cost = c.bind_cost(a_tid, &binds, 1000.0);
    assert_eq!(cost.primary, 0.0);
}

#[test]
fn calls_model_counts_calls_not_transactions() {
    let r = rig();
    let q = analyze(
        &parse("SELECT * FROM A WHERE (c = 'x' OR c = 'y')").unwrap(),
        &r.catalog,
    )
    .unwrap();
    let c = CostCtx::new(
        &q,
        &r.stats,
        &r.store,
        &r.meta,
        Consistency::Weak,
        0,
        false,
        RewriteConfig::default(),
        CostModel::Calls,
    )
    .unwrap();
    let cost = c.fetch_cost(0).unwrap();
    // Two disjuncts -> two calls, regardless of record volume.
    assert_eq!(cost.primary, 2.0);
}
