//! PayLess's query optimizer (Section 4 of the paper).
//!
//! A bottom-up, cost-based dynamic-programming optimizer whose objective is
//! **money**: the estimated number of data-market transactions a plan incurs.
//! Three theorems shrink its search space without losing the optimum:
//!
//! * **Theorem 1** — only left-deep plans need enumeration (any plan can be
//!   rotated left-deep without increasing its price);
//! * **Theorem 2** — *zero-price* relations (local tables, and market tables
//!   whose required region the semantic store already covers) are joined
//!   first, in one leftmost prefix;
//! * **Theorem 3** — a subset of relations that splits into join-disconnected
//!   components is best planned per component and glued with (costless)
//!   Cartesian products.
//!
//! Access paths per relation: a **fetch** (RESTful range/point calls for the
//! required region, semantically rewritten against the store), or a **bind
//! join** (one call per distinct binding value flowing from the plan's left
//! side). For comparison with prior work the crate also ships a **bushy**
//! DP engine (used when the theorems are disabled, and by the
//! "Minimizing Calls" baseline of Florescu et al., which optimizes the number
//! of RESTful calls instead of transactions) and the **Download All**
//! baseline.

#![warn(missing_docs)]

pub mod baselines;
pub mod cost;
pub mod dp;
mod introspect;
pub mod plan;

#[cfg(test)]
mod tests_cost;

pub use baselines::{download_all_cost, min_calls_optimize};
pub use cost::{CostCtx, CostModel, EstBreakdown, MarketMeta, PlanCounters};
pub use dp::{optimize, Optimized, OptimizerConfig, SearchStrategy};
pub use plan::{AccessMethod, BindPair, PlanNode};
