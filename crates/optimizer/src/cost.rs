//! Cost estimation: the money a plan is expected to cost.
//!
//! The primary cost is the paper's metric — estimated data-market
//! transactions (Eq. (1)) — with estimated retrieved records as a
//! deterministic tiebreak. The same machinery also evaluates the
//! "Minimizing Calls" model of the Florescu-et-al. baseline by swapping the
//! primary to RESTful-call count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use payless_geometry::Region;
use payless_semantic::rewrite::est_transactions;
use payless_semantic::{rewrite, rewrite_cached, Consistency, RewriteConfig, SemanticStore};
use payless_sql::{AccessConstraint, AnalyzedQuery, TableLocation};
use payless_stats::StatsRegistry;
use payless_types::{Constraint, PaylessError, Result};

use crate::plan::BindPair;

/// What the optimizer minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// Data-market transactions (PayLess).
    Transactions,
    /// Number of RESTful calls (the prior-work baseline).
    Calls,
}

/// Page-size metadata the optimizer needs about the market.
pub trait MarketMeta {
    /// Tuples per transaction for `table`, if it is a market table.
    fn page_size(&self, table: &str) -> Option<u64>;
}

impl MarketMeta for payless_market::DataMarket {
    fn page_size(&self, table: &str) -> Option<u64> {
        payless_market::DataMarket::page_size(self, table)
    }
}

impl MarketMeta for HashMap<String, u64> {
    fn page_size(&self, table: &str) -> Option<u64> {
        self.get(table).copied()
    }
}

/// Search-effort counters (Figures 14 and 15).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCounters {
    /// Candidate (sub)plans costed during the search.
    pub plans_considered: u64,
    /// Bounding boxes enumerated by Algorithm 1 before pruning.
    pub boxes_enumerated: u64,
    /// Bounding boxes surviving both pruning rules.
    pub boxes_kept: u64,
    /// Zero-price relations hoisted into the leftmost prefix (Theorem 2),
    /// and so removed from the DP enumeration entirely.
    pub theorem2_hoisted: u64,
    /// Subproblems composed from join-disconnected components (Theorem 3)
    /// instead of being enumerated as full left-deep extensions.
    pub theorem3_composed: u64,
    /// Worker threads the parallel plan search actually used (the high-water
    /// mark across all parallel sections; 1 for a single-threaded run).
    pub threads_used: u64,
}

impl std::ops::AddAssign for PlanCounters {
    fn add_assign(&mut self, o: Self) {
        self.plans_considered += o.plans_considered;
        self.boxes_enumerated += o.boxes_enumerated;
        self.boxes_kept += o.boxes_kept;
        self.theorem2_hoisted += o.theorem2_hoisted;
        self.theorem3_composed += o.theorem3_composed;
        // A high-water mark, not a sum: combining two searches reports the
        // widest fan-out either of them reached.
        self.threads_used = self.threads_used.max(o.threads_used);
    }
}

/// [`PlanCounters`] as lock-free atomics so cost estimation can run from the
/// DP's scoped worker threads. All fields are order-independent sums (or a
/// max), so relaxed ordering cannot change the totals.
#[derive(Debug, Default)]
struct AtomicPlanCounters {
    plans_considered: AtomicU64,
    boxes_enumerated: AtomicU64,
    boxes_kept: AtomicU64,
    theorem2_hoisted: AtomicU64,
    theorem3_composed: AtomicU64,
    threads_used: AtomicU64,
}

impl AtomicPlanCounters {
    fn snapshot(&self) -> PlanCounters {
        PlanCounters {
            plans_considered: self.plans_considered.load(Ordering::Relaxed),
            boxes_enumerated: self.boxes_enumerated.load(Ordering::Relaxed),
            boxes_kept: self.boxes_kept.load(Ordering::Relaxed),
            theorem2_hoisted: self.theorem2_hoisted.load(Ordering::Relaxed),
            theorem3_composed: self.theorem3_composed.load(Ordering::Relaxed),
            threads_used: self.threads_used.load(Ordering::Relaxed).max(1),
        }
    }
}

/// A plan cost: primary objective plus a records tiebreak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Transactions or calls, depending on the model.
    pub primary: f64,
    /// Estimated retrieved records (tiebreak).
    pub secondary: f64,
}

impl Cost {
    /// The free plan.
    pub const ZERO: Cost = Cost {
        primary: 0.0,
        secondary: 0.0,
    };

    /// Component-wise sum.
    pub fn plus(self, o: Cost) -> Cost {
        Cost {
            primary: self.primary + o.primary,
            secondary: self.secondary + o.secondary,
        }
    }

    /// Strictly better: smaller primary, or equal primary and smaller
    /// secondary (with an epsilon so float noise cannot flip decisions).
    pub fn better_than(&self, o: &Cost) -> bool {
        const EPS: f64 = 1e-9;
        if self.primary < o.primary - EPS {
            return true;
        }
        if self.primary > o.primary + EPS {
            return false;
        }
        self.secondary < o.secondary - EPS
    }
}

/// A per-operator cost estimate in physical units, independent of the cost
/// model's packing into [`Cost`]: billable transactions (pages), market
/// calls, and retrieved records. Used by `EXPLAIN` introspection, where the
/// tree must always show pages/calls regardless of the optimization
/// objective.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EstBreakdown {
    /// Estimated billable transactions (pages).
    pub transactions: f64,
    /// Estimated market calls.
    pub calls: f64,
    /// Estimated records retrieved.
    pub records: f64,
}

/// Everything cost estimation needs, prepared once per query.
pub struct CostCtx<'a> {
    /// The analyzed query.
    pub query: &'a AnalyzedQuery,
    stats: &'a StatsRegistry,
    store: &'a SemanticStore,
    consistency: Consistency,
    now: u64,
    /// Semantic query rewriting enabled?
    pub sqr: bool,
    rewrite_cfg: RewriteConfig,
    /// The cost model in force.
    pub model: CostModel,
    pages: Vec<u64>,
    /// Required regions per table (one per `AnyOf` alternative combination;
    /// empty for unconstrained... never: at least the full region).
    regions: Vec<Vec<Region>>,
    counters: AtomicPlanCounters,
    /// Per-table cache of the uncovered fraction of the required regions
    /// (the SQR adjustment in `bind_cost`); computing it involves region
    /// subtraction against every stored view, so it must not run once per
    /// DP candidate. `OnceLock` so concurrent DP workers can share the
    /// cache: the value is deterministic, so a racy double-compute is
    /// harmless — first writer wins, everyone reads the same number.
    uncovered_frac: Vec<OnceLock<f64>>,
}

/// Cap on `AnyOf` alternative combinations per table.
const MAX_DISJUNCTS: usize = 64;

impl<'a> CostCtx<'a> {
    /// Prepare a context. Every referenced table must be registered in
    /// `stats` (which also carries its query space).
    #[allow(clippy::too_many_arguments)] // one-shot constructor mirroring Algorithm 2's inputs
    pub fn new(
        query: &'a AnalyzedQuery,
        stats: &'a StatsRegistry,
        store: &'a SemanticStore,
        meta: &dyn MarketMeta,
        consistency: Consistency,
        now: u64,
        sqr: bool,
        rewrite_cfg: RewriteConfig,
        model: CostModel,
    ) -> Result<Self> {
        let mut pages = Vec::with_capacity(query.tables.len());
        let mut regions = Vec::with_capacity(query.tables.len());
        for t in &query.tables {
            let page = match t.location {
                TableLocation::Local => 1,
                TableLocation::Market => meta.page_size(&t.name).ok_or_else(|| {
                    PaylessError::Internal(format!("no page size for market table `{}`", t.name))
                })?,
            };
            pages.push(page);
            let ts = stats.table(&t.name).ok_or_else(|| {
                PaylessError::Internal(format!("table `{}` missing from statistics", t.name))
            })?;
            regions.push(required_regions(ts.space(), &t.access)?);
        }
        let n = query.tables.len();
        Ok(CostCtx {
            query,
            stats,
            store,
            consistency,
            now,
            sqr,
            rewrite_cfg,
            model,
            pages,
            regions,
            counters: AtomicPlanCounters::default(),
            uncovered_frac: std::iter::repeat_with(OnceLock::new).take(n).collect(),
        })
    }

    /// Required regions of table `tid`.
    pub fn regions_of(&self, tid: usize) -> &[Region] {
        &self.regions[tid]
    }

    /// Page size for table `tid`.
    pub fn page(&self, tid: usize) -> u64 {
        self.pages[tid]
    }

    /// Count one candidate plan.
    pub fn count_plan(&self) {
        self.counters
            .plans_considered
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Count relations the Theorem 2 prefix removed from the enumeration.
    pub fn count_theorem2_hoisted(&self, n: u64) {
        self.counters
            .theorem2_hoisted
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Count one subproblem composed via Theorem 3.
    pub fn count_theorem3_composed(&self) {
        self.counters
            .theorem3_composed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Report the width of a parallel section (high-water mark).
    pub fn note_threads(&self, n: usize) {
        self.counters
            .threads_used
            .fetch_max(n as u64, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> PlanCounters {
        self.counters.snapshot()
    }

    /// Usable stored views of table `tid` under the context's consistency.
    pub fn views_of(&self, tid: usize) -> Vec<Arc<Region>> {
        if !self.sqr {
            return Vec::new();
        }
        self.store
            .views(&self.query.tables[tid].name, self.consistency, self.now)
    }

    /// Usable stored views of table `tid` overlapping `region`, served from
    /// the store's R-tree. Non-overlapping views cannot affect a region's
    /// rewrite or remainder, so this is what the per-region cost paths use.
    pub fn views_over(&self, tid: usize, region: &Region) -> Vec<Arc<Region>> {
        if !self.sqr {
            return Vec::new();
        }
        self.store.views_overlapping(
            &self.query.tables[tid].name,
            region,
            self.consistency,
            self.now,
        )
    }

    /// Overlapping views plus (when the store's remainder cache can answer)
    /// the precomputed remainder pieces of `region` over table `tid`.
    fn probe_rewrite(
        &self,
        tid: usize,
        region: &Region,
    ) -> (Vec<Arc<Region>>, Option<Vec<Region>>) {
        if !self.sqr {
            return (Vec::new(), None);
        }
        self.store.probe_rewrite(
            &self.query.tables[tid].name,
            region,
            self.consistency,
            self.now,
        )
    }

    /// Estimated tuples of table `tid` within its required regions.
    pub fn table_rows(&self, tid: usize) -> f64 {
        let ts = self
            .stats
            .table(&self.query.tables[tid].name)
            .expect("validated in new()");
        self.regions[tid].iter().map(|r| ts.estimate(r)).sum()
    }

    /// Estimated distinct values of column `col` of table `tid` within its
    /// required regions.
    pub fn col_distinct(&self, tid: usize, col: usize) -> f64 {
        let t = &self.query.tables[tid];
        let ts = self.stats.table(&t.name).expect("validated in new()");
        let rows = self.table_rows(tid);
        match ts.space().dim_of_col(col) {
            Some(d) => {
                let width: f64 = self.regions[tid]
                    .iter()
                    .map(|r| r.dim(d).width() as f64)
                    .sum();
                width.min(rows).max(0.0)
            }
            None => {
                let dom = t.schema.columns[col].domain.size() as f64;
                dom.min(rows).max(0.0)
            }
        }
    }

    /// Estimated join-result rows of a set of tables, using per-edge
    /// `1/max(d_left, d_right)` selectivities.
    pub fn est_join_rows(&self, tables: &[usize]) -> f64 {
        if tables.is_empty() {
            return 1.0;
        }
        let mut rows: f64 = tables.iter().map(|&t| self.table_rows(t)).product();
        for e in &self.query.joins {
            if tables.contains(&e.left.0) && tables.contains(&e.right.0) {
                let dl = self.col_distinct(e.left.0, e.left.1).max(1.0);
                let dr = self.col_distinct(e.right.0, e.right.1).max(1.0);
                rows /= dl.max(dr);
            }
        }
        rows.max(0.0)
    }

    /// `true` when accessing `tid` costs nothing: a local table, or (with
    /// SQR) a market table whose required regions the store fully covers
    /// (Theorem 2's zero-price relations).
    pub fn zero_price(&self, tid: usize) -> bool {
        let t = &self.query.tables[tid];
        if t.location == TableLocation::Local {
            return true;
        }
        if !self.sqr {
            return false;
        }
        // `covers` answers from the store's remainder cache when it can,
        // falling back to the subtraction sweep only under tight staleness
        // windows.
        self.regions[tid].iter().all(|r| {
            self.store
                .covers(&self.query.tables[tid].name, r, self.consistency, self.now)
        })
    }

    /// `true` when table `tid` can be fetched directly: every mandatory
    /// (bound) attribute is constrained in all of its required regions.
    pub fn fetch_feasible(&self, tid: usize) -> bool {
        let t = &self.query.tables[tid];
        if t.location == TableLocation::Local {
            return true;
        }
        let ts = self.stats.table(&t.name).expect("validated in new()");
        let space = ts.space();
        for col in t.schema.mandatory_bindings() {
            let d = space.dim_of_col(col).expect("bound columns have dims");
            let full = space.dims()[d].full();
            for r in &self.regions[tid] {
                let iv = r.dim(d);
                if iv == full && full.width() > 1 {
                    return false;
                }
            }
        }
        true
    }

    /// Cost of fetching `tid`'s required regions (semantic rewriting applied
    /// when enabled). `None` when a direct fetch is infeasible.
    pub fn fetch_cost(&self, tid: usize) -> Option<Cost> {
        self.fetch_breakdown(tid)
            .map(|b| self.pack(b.transactions, b.calls, b.records))
    }

    /// The raw per-operator estimate behind [`CostCtx::fetch_cost`], kept in
    /// physical units (transactions / calls / records) regardless of the
    /// cost model, for `EXPLAIN` introspection.
    pub fn fetch_breakdown(&self, tid: usize) -> Option<EstBreakdown> {
        let t = &self.query.tables[tid];
        if t.location == TableLocation::Local {
            return Some(EstBreakdown::default());
        }
        if !self.fetch_feasible(tid) {
            return None;
        }
        let ts = self.stats.table(&t.name).expect("validated in new()");
        let page = self.pages[tid];
        let mut tx = 0.0;
        let mut calls = 0.0;
        let mut records = 0.0;
        for region in &self.regions[tid] {
            if self.sqr {
                let (views, pieces) = self.probe_rewrite(tid, region);
                let rw = match &pieces {
                    Some(p) => rewrite_cached(ts, page, region, p, &self.rewrite_cfg),
                    None => rewrite(ts, page, region, &views, &self.rewrite_cfg),
                };
                self.counters
                    .boxes_enumerated
                    .fetch_add(rw.boxes_enumerated, Ordering::Relaxed);
                self.counters
                    .boxes_kept
                    .fetch_add(rw.boxes_kept, Ordering::Relaxed);
                tx += rw.est_transactions;
                calls += rw.remainders.len() as f64;
                records += rw.remainders.iter().map(|r| ts.estimate(r)).sum::<f64>();
            } else {
                let est = ts.estimate(region);
                tx += est_transactions(est, page);
                calls += 1.0;
                records += est;
            }
        }
        Some(EstBreakdown {
            transactions: tx,
            calls,
            records,
        })
    }

    /// The bind pairs available for `tid` given `left_tables` on the left,
    /// with feasibility checked (every mandatory attribute either constrained
    /// or bound). `None` when no binding applies or feasibility fails.
    pub fn bind_pairs(&self, tid: usize, left_tables: &[usize]) -> Option<Vec<BindPair>> {
        let t = &self.query.tables[tid];
        if t.location == TableLocation::Local {
            return None; // local tables never need market bindings
        }
        let ts = self.stats.table(&t.name).expect("validated in new()");
        let space = ts.space();
        let mut binds: Vec<BindPair> = Vec::new();
        for e in &self.query.joins {
            let (this_end, other_end) = if e.left.0 == tid {
                (e.left, e.right)
            } else if e.right.0 == tid {
                (e.right, e.left)
            } else {
                continue;
            };
            if !left_tables.contains(&other_end.0) {
                continue;
            }
            if space.dim_of_col(this_end.1).is_none() {
                continue; // output-only column: cannot bind at the market
            }
            if binds.iter().any(|b| b.right_col == this_end.1) {
                continue;
            }
            binds.push(BindPair {
                left: other_end,
                right_col: this_end.1,
            });
        }
        if binds.is_empty() {
            return None;
        }
        // Mandatory attributes must be constrained or bound.
        for col in t.schema.mandatory_bindings() {
            let d = space.dim_of_col(col).expect("bound columns have dims");
            let full = space.dims()[d].full();
            let constrained = self.regions[tid]
                .iter()
                .all(|r| r.dim(d) != full || full.width() == 1);
            if !constrained && !binds.iter().any(|b| b.right_col == col) {
                return None;
            }
        }
        Some(binds)
    }

    /// All useful binding-column combinations for `tid` given `left_tables`:
    /// every subset of the available bind pairs that still covers the
    /// mandatory attributes. Binding more columns makes each probe more
    /// selective but multiplies the number of probes, so neither extreme
    /// dominates — the DP costs each option (the paper's per-call "binding
    /// choices").
    pub fn bind_options(&self, tid: usize, left_tables: &[usize]) -> Vec<Vec<BindPair>> {
        let Some(all) = self.bind_pairs(tid, left_tables) else {
            return Vec::new();
        };
        let t = &self.query.tables[tid];
        let ts = self.stats.table(&t.name).expect("validated in new()");
        let space = ts.space();
        // Columns that MUST be bound (mandatory and not constrained).
        let mut required: Vec<BindPair> = Vec::new();
        let mut optional: Vec<BindPair> = Vec::new();
        for b in all {
            let col = b.right_col;
            let is_required = t.schema.columns[col].binding.mandatory() && {
                let d = space.dim_of_col(col).expect("bound columns have dims");
                let full = space.dims()[d].full();
                !self.regions[tid]
                    .iter()
                    .all(|r| r.dim(d) != full || full.width() == 1)
            };
            if is_required {
                required.push(b);
            } else {
                optional.push(b);
            }
        }
        // Enumerate subsets of the optional columns (capped to keep the DP
        // polynomial; beyond the cap, take all-or-nothing).
        const MAX_OPTIONAL: usize = 4;
        let mut options = Vec::new();
        if optional.len() > MAX_OPTIONAL {
            let mut with_all = required.clone();
            with_all.extend(optional.iter().copied());
            options.push(with_all);
            if !required.is_empty() {
                options.push(required);
            }
        } else {
            for mask in 0..(1usize << optional.len()) {
                let mut combo = required.clone();
                for (i, b) in optional.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        combo.push(*b);
                    }
                }
                if !combo.is_empty() {
                    options.push(combo);
                }
            }
        }
        options
    }

    /// Cost of bind-joining `tid` with binding values flowing from a left
    /// side estimated at `left_rows` rows over `left_tables`.
    pub fn bind_cost(&self, tid: usize, binds: &[BindPair], left_rows: f64) -> Cost {
        let b = self.bind_breakdown(tid, binds, left_rows);
        self.pack(b.transactions, b.calls, b.records)
    }

    /// The raw per-operator estimate behind [`CostCtx::bind_cost`], in
    /// physical units for `EXPLAIN` introspection.
    pub fn bind_breakdown(&self, tid: usize, binds: &[BindPair], left_rows: f64) -> EstBreakdown {
        let page = self.pages[tid];
        // Distinct binding combinations the left side emits.
        let d_left: f64 = binds
            .iter()
            .map(|b| self.col_distinct(b.left.0, b.left.1).max(1.0))
            .product();
        let calls = left_rows
            .min(d_left)
            .ceil()
            .max(if left_rows > 0.0 { 1.0 } else { 0.0 });
        // Of those, how many can match tuples of tid's region.
        let d_right: f64 = binds
            .iter()
            .map(|b| self.col_distinct(tid, b.right_col).max(1.0))
            .product();
        let paying = calls.min(d_right);
        let total_rows = self.table_rows(tid);
        let mut matched = if d_right > 0.0 {
            (total_rows * paying / d_right).min(total_rows)
        } else {
            0.0
        };
        // Semantic rewriting: probes into covered parts of the region are
        // free. Scale the expected retrieval by the uncovered fraction.
        if self.sqr && matched > 0.0 {
            matched *= self.uncovered_fraction(tid, total_rows);
        }
        let per_call = if paying > 0.0 { matched / paying } else { 0.0 };
        let tx = if matched <= 0.0 {
            0.0
        } else if per_call < 1.0 {
            // Sparse bindings: only ~`matched` probes return anything, one
            // transaction each.
            paying.min(matched.ceil())
        } else {
            paying * est_transactions(per_call, page)
        };
        EstBreakdown {
            transactions: tx,
            calls,
            records: matched,
        }
    }

    /// Fraction of `tid`'s required regions the store does *not* cover —
    /// the SQR-coverage assumption behind the operator's estimate. `1.0`
    /// when SQR is off or nothing usable is stored.
    pub fn est_uncovered_fraction(&self, tid: usize) -> f64 {
        if !self.sqr {
            return 1.0;
        }
        self.uncovered_fraction(tid, self.table_rows(tid))
    }

    /// Fraction of `tid`'s required regions not covered by stored views
    /// (1.0 when nothing is stored), cached per table.
    fn uncovered_fraction(&self, tid: usize, total_rows: f64) -> f64 {
        *self.uncovered_frac[tid].get_or_init(|| {
            if total_rows <= 0.0 {
                return 1.0;
            }
            let ts = self
                .stats
                .table(&self.query.tables[tid].name)
                .expect("validated in new()");
            let mut any_views = false;
            let mut uncovered = 0.0;
            for r in &self.regions[tid] {
                let views = self.views_over(tid, r);
                any_views |= !views.is_empty();
                uncovered += r
                    .subtract_all(&views)
                    .iter()
                    .map(|piece| ts.estimate(piece))
                    .sum::<f64>();
            }
            if !any_views {
                return 1.0;
            }
            (uncovered / total_rows).clamp(0.0, 1.0)
        })
    }

    fn pack(&self, tx: f64, calls: f64, records: f64) -> Cost {
        match self.model {
            CostModel::Transactions => Cost {
                primary: tx,
                secondary: records,
            },
            // The calls-minimizing baseline is *indifferent* to retrieved
            // volume — that blindness is exactly the paper's critique of
            // prior work. No volume tiebreak: among equal-call plans the
            // first enumerated (the regular-join shape) wins.
            CostModel::Calls => Cost {
                primary: calls,
                secondary: 0.0,
            },
        }
    }
}

/// Expand a table's access constraints into required regions (one per
/// combination of `AnyOf` alternatives).
pub fn required_regions(
    space: &payless_geometry::QuerySpace,
    access: &payless_sql::TableAccess,
) -> Result<Vec<Region>> {
    let mut combos: Vec<Vec<(usize, Constraint)>> = vec![Vec::new()];
    for (col, ac) in &access.constraints {
        match ac {
            AccessConstraint::One(c) => {
                for combo in &mut combos {
                    combo.push((*col, c.clone()));
                }
            }
            AccessConstraint::AnyOf(values) => {
                let mut next = Vec::with_capacity(combos.len() * values.len());
                for combo in &combos {
                    for v in values {
                        let mut c = combo.clone();
                        let constraint = match v {
                            payless_types::Value::Int(x) => Constraint::range(*x, *x),
                            other => Constraint::Eq(other.clone()),
                        };
                        c.push((*col, constraint));
                        next.push(c);
                    }
                }
                combos = next;
                if combos.len() > MAX_DISJUNCTS {
                    return Err(PaylessError::Unsupported(format!(
                        "more than {MAX_DISJUNCTS} disjunctive alternatives on one table"
                    )));
                }
            }
        }
    }
    let mut regions = Vec::with_capacity(combos.len());
    for combo in combos {
        if let Some(r) = space.region_of(&combo) {
            regions.push(r);
        }
    }
    if regions.is_empty() {
        // All alternatives empty: the analyzer normally catches this, but an
        // empty region list would make downstream code divide by zero; treat
        // as the (never-matching) full region with zero estimate handled by
        // unsatisfiability upstream.
        return Err(PaylessError::Internal(
            "no valid required region for table access".into(),
        ));
    }
    Ok(regions)
}
