//! The paper's comparison systems.
//!
//! * **Minimizing Calls** — the limited-access-pattern optimizer of Florescu
//!   et al. (SIGMOD'99): bushy plans, bind joins, objective = number of
//!   RESTful calls. [`min_calls_optimize`] is a thin wrapper over the shared
//!   DP engine with [`CostModel::Calls`].
//! * **Download All** — download every referenced market table wholesale,
//!   then answer all queries locally. [`download_all_cost`] computes the
//!   upfront price; actual downloading is performed by the execution crate.

use payless_semantic::SemanticStore;
use payless_sql::AnalyzedQuery;
use payless_stats::StatsRegistry;
use payless_types::{transactions, Result, Transactions};

use crate::cost::{CostModel, MarketMeta};
use crate::dp::{optimize, Optimized, OptimizerConfig};

/// Optimize with the calls-minimizing baseline model.
pub fn min_calls_optimize(
    query: &AnalyzedQuery,
    stats: &StatsRegistry,
    store: &SemanticStore,
    meta: &dyn MarketMeta,
    now: u64,
) -> Result<Optimized> {
    let cfg = OptimizerConfig::min_calls();
    debug_assert_eq!(cfg.model, CostModel::Calls);
    optimize(query, stats, store, meta, &cfg, now)
}

/// Transactions needed to download a whole table of `cardinality` rows at
/// `page_size` tuples per transaction.
///
/// When the table's binding pattern has mandatory bound attributes it cannot
/// be downloaded in one call; the downloader enumerates the bound domain
/// (one call per value), which costs at least the same number of
/// transactions and possibly more due to per-call rounding. The pessimistic
/// per-value rounding is the caller's concern (the executor reports actuals);
/// this helper returns the ideal single-scan price the paper uses.
pub fn download_all_cost(cardinality: u64, page_size: u64) -> Transactions {
    transactions(cardinality, page_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_cost_matches_eq1() {
        assert_eq!(download_all_cost(19_549_140, 100), 195_492);
        assert_eq!(download_all_cost(3962, 100), 40);
        assert_eq!(download_all_cost(0, 100), 0);
    }
}
