//! Physical plan representation.
//!
//! Plans are binary trees. PayLess's own optimizer emits left-deep spines
//! (Theorem 1), but the representation is general so that the bushy baseline
//! plans (Figure 4a shapes) execute through the same interpreter.

use std::fmt;

/// How a leaf relation is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMethod {
    /// The table lives in the buyer's local DBMS: free.
    Local,
    /// Fetch the table's required region(s) from the market with range/point
    /// RESTful calls, semantically rewritten against the store at execution
    /// time.
    Fetch,
}

/// One binding of a bind join: the left-side column supplying values and the
/// bound column on the right table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BindPair {
    /// `(table index, column index)` on the plan's left side.
    pub left: (usize, usize),
    /// Column index on the bound (right) table.
    pub right_col: usize,
}

/// A plan node. Table indices refer to the analyzed query's `FROM` order.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Leaf access.
    Access {
        /// Table index.
        table: usize,
        /// Access method.
        method: AccessMethod,
    },
    /// Local join of two subplans (hash equi-join on every join edge between
    /// the two sides; Cartesian product when no edge connects them — which
    /// is free in transactions, per Theorem 3).
    Join {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
    },
    /// Bind join: the left subplan's rows supply binding values; `table` is
    /// accessed once per distinct binding combination.
    BindJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// The bound table.
        table: usize,
        /// The binding columns (at least one).
        binds: Vec<BindPair>,
    },
}

impl PlanNode {
    /// Leaf accessing `table` with `method`.
    pub fn access(table: usize, method: AccessMethod) -> PlanNode {
        PlanNode::Access { table, method }
    }

    /// Local join.
    pub fn join(left: PlanNode, right: PlanNode) -> PlanNode {
        PlanNode::Join {
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Bind join.
    pub fn bind_join(left: PlanNode, table: usize, binds: Vec<BindPair>) -> PlanNode {
        debug_assert!(!binds.is_empty());
        PlanNode::BindJoin {
            left: Box::new(left),
            table,
            binds,
        }
    }

    /// Table indices in this subtree, in leaf order (left to right).
    pub fn tables(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<usize>) {
        match self {
            PlanNode::Access { table, .. } => out.push(*table),
            PlanNode::Join { left, right } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
            PlanNode::BindJoin { left, table, .. } => {
                left.collect_tables(out);
                out.push(*table);
            }
        }
    }

    /// `true` when every join in the tree has a leaf (or bind-joined table)
    /// as its right child — the left-deep shape of Theorem 1.
    pub fn is_left_deep(&self) -> bool {
        match self {
            PlanNode::Access { .. } => true,
            PlanNode::Join { left, right } => {
                matches!(**right, PlanNode::Access { .. }) && left.is_left_deep()
            }
            PlanNode::BindJoin { left, .. } => left.is_left_deep(),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            PlanNode::Access { .. } => 1,
            PlanNode::Join { left, right } => left.leaf_count() + right.leaf_count(),
            PlanNode::BindJoin { left, .. } => left.leaf_count() + 1,
        }
    }

    /// Number of operator nodes in the subtree. A bind join is **one**
    /// operator (its probes are the operator's own market calls, not a
    /// child), so introspection attributes probe spend to the bind join
    /// itself.
    pub fn node_count(&self) -> usize {
        match self {
            PlanNode::Access { .. } => 1,
            PlanNode::Join { left, right } => 1 + left.node_count() + right.node_count(),
            PlanNode::BindJoin { left, .. } => 1 + left.node_count(),
        }
    }

    /// Render with table names resolved through `names`.
    pub fn render(&self, names: &dyn Fn(usize) -> String) -> String {
        match self {
            PlanNode::Access { table, method } => match method {
                AccessMethod::Local => format!("{}ˡ", names(*table)),
                AccessMethod::Fetch => names(*table),
            },
            PlanNode::Join { left, right } => {
                format!("({} ⋈ {})", left.render(names), right.render(names))
            }
            PlanNode::BindJoin { left, table, .. } => {
                format!("({} ⋈→ {})", left.render(names), names(*table))
            }
        }
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(&|t| format!("T{t}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(t: usize) -> PlanNode {
        PlanNode::access(t, AccessMethod::Fetch)
    }

    #[test]
    fn tables_in_leaf_order() {
        let p = PlanNode::join(
            PlanNode::bind_join(
                leaf(2),
                0,
                vec![BindPair {
                    left: (2, 1),
                    right_col: 0,
                }],
            ),
            leaf(1),
        );
        assert_eq!(p.tables(), vec![2, 0, 1]);
        assert_eq!(p.leaf_count(), 3);
    }

    #[test]
    fn left_deep_recognition() {
        // ((0 ⋈ 1) ⋈ 2) is left-deep.
        let ld = PlanNode::join(PlanNode::join(leaf(0), leaf(1)), leaf(2));
        assert!(ld.is_left_deep());
        // (0 ⋈ (1 ⋈ 2)) is not.
        let bushy = PlanNode::join(leaf(0), PlanNode::join(leaf(1), leaf(2)));
        assert!(!bushy.is_left_deep());
        // Bind joins extend the spine.
        let bj = PlanNode::bind_join(
            ld,
            3,
            vec![BindPair {
                left: (2, 0),
                right_col: 1,
            }],
        );
        assert!(bj.is_left_deep());
    }

    #[test]
    fn display_renders_shapes() {
        let p = PlanNode::join(
            PlanNode::access(0, AccessMethod::Local),
            PlanNode::access(1, AccessMethod::Fetch),
        );
        assert_eq!(p.to_string(), "(T0ˡ ⋈ T1)");
        let b = PlanNode::bind_join(
            p,
            2,
            vec![BindPair {
                left: (1, 0),
                right_col: 0,
            }],
        );
        assert_eq!(b.to_string(), "((T0ˡ ⋈ T1) ⋈→ T2)");
    }
}
